//! Vectorized fingerprinting kernels with runtime dispatch.
//!
//! The bulk fingerprint path (corpus ingest, the `full` check path,
//! keystroke-session compaction) is pure fingerprinting time: every
//! paragraph is normalised, Karp–Rabin-hashed per n-gram and winnowed.
//! This module vectorizes the two inner loops:
//!
//! - **Lane-parallel Karp–Rabin** ([`ngram_hashes_bulk`]): instead of the
//!   serial one-position-at-a-time roll, the kernel keeps `L` consecutive
//!   hashes in one vector register and advances all of them by `L`
//!   positions per step using the identity
//!   `h[p+L] = h[p]·B^L + Σ_j (c[p+n+j] − B^n·c[p+j])·B^{L−1−j}`
//!   (all mod 2³², `j = 0..L`). Every multiplier `B^k (mod 2³²)` is
//!   precomputed once per call, so one step is `L` shifted loads and
//!   `2L+1` lane-wise wrapping multiplies producing `L` finished hashes.
//!   Wrapping mod-2³² arithmetic is what makes this vectorize cleanly:
//!   u32 lanes wrap exactly like the scalar `wrapping_mul`/`wrapping_add`
//!   reference, so no lane ever needs a carry or a reduction step.
//! - **Sliding-window minimum** ([`window_min_emit`]): robust winnowing
//!   selects the rightmost minimal hash of every window of `w` hashes.
//!   The kernel packs each hash and its position into one ordering key
//!   (`hash · 2³² + (2³² − 1 − position)`), computes block-wise
//!   suffix/prefix minima (van Herk–Gil-Werman two-pass) and emits a
//!   selection whenever the windowed minimum key changes. Minimising the
//!   packed key is *exactly* the robust-winnowing selection rule: a
//!   smaller hash always wins, and among equal hashes the larger
//!   position (smaller complement) wins — the rightmost tie-break.
//!
//! # Dispatch
//!
//! [`active_kernel`] picks the widest available implementation at
//! runtime: AVX2 (8 hash lanes) or SSE4.1 (4 lanes) on x86-64 via
//! `is_x86_feature_detected!`, NEON (4 lanes) on aarch64, and the
//! portable scalar path everywhere else. The scalar path is always
//! compiled and serves as the property-test oracle; setting the
//! `BF_FORCE_SCALAR=1` environment variable (or calling [`force_scalar`])
//! pins dispatch to it at runtime so CI can exercise both paths in one
//! binary.
//!
//! ASCII inputs take a `u8` fast lane that piggybacks on the
//! [`normalize`](crate::normalize) fast path: the normalised text of an
//! ASCII paragraph is itself ASCII, so the kernel widens raw bytes into
//! u32 lanes in-register instead of decoding UTF-8 char-by-char.
//! Non-ASCII text is decoded once into a reusable `u32` scratch buffer
//! and takes the same vector kernels.
//!
//! This module is the one place in the crate that uses `unsafe` (the
//! `std::arch` intrinsics); every unsafe block is feature-gated by the
//! runtime dispatch above and the surrounding slice arithmetic is
//! bounds-checked in debug builds.

use crate::hash::BASE;
use crate::ngram::NgramHash;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Which fingerprint kernel implementation is executing.
///
/// Reported through `FingerprintModeStats` and the fingerprint bench so
/// operators can see whether a deployment is actually running the
/// vectorized path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// Portable scalar reference path (always available; the oracle).
    Scalar,
    /// x86-64 SSE4.1: 4 hash lanes.
    Sse41,
    /// x86-64 AVX2: 8 hash lanes + vectorized window minimum.
    Avx2,
    /// aarch64 NEON: 4 hash lanes.
    Neon,
}

impl KernelKind {
    /// Stable lowercase name (`"scalar"`, `"sse4.1"`, `"avx2"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Sse41 => "sse4.1",
            KernelKind::Avx2 => "avx2",
            KernelKind::Neon => "neon",
        }
    }

    /// Whether this kernel uses SIMD instructions at all.
    pub fn is_simd(self) -> bool {
        self != KernelKind::Scalar
    }
}

impl Default for KernelKind {
    /// The scalar reference path — the conservative default for stats
    /// structs built before any fingerprinting ran.
    fn default() -> Self {
        KernelKind::Scalar
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

static DETECTED: OnceLock<KernelKind> = OnceLock::new();
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// The widest kernel the host CPU supports, ignoring overrides.
pub fn detected_kernel() -> KernelKind {
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelKind::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return KernelKind::Sse41;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return KernelKind::Neon;
            }
        }
        KernelKind::Scalar
    })
}

/// Whether the scalar override is active (either `BF_FORCE_SCALAR=1` in
/// the environment at first use, or a [`force_scalar`] call).
fn scalar_forced() -> bool {
    static ENV_FORCED: OnceLock<bool> = OnceLock::new();
    FORCE_SCALAR.load(Ordering::Relaxed)
        || *ENV_FORCED.get_or_init(|| {
            std::env::var("BF_FORCE_SCALAR")
                .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        })
}

/// Pins dispatch to the scalar kernel (`true`) or restores runtime
/// detection (`false`).
///
/// Used by benches and CI to measure scalar-vs-SIMD in one process; the
/// `BF_FORCE_SCALAR=1` environment variable has the same effect without
/// code changes. Note `force_scalar(false)` does not undo the
/// environment override.
pub fn force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// The kernel the next bulk fingerprint call will run.
pub fn active_kernel() -> KernelKind {
    if scalar_forced() {
        KernelKind::Scalar
    } else {
        detected_kernel()
    }
}

/// Below this many n-gram hashes the vector kernels are not worth their
/// setup cost and the scalar path runs regardless of dispatch.
const MIN_SIMD_HASHES: usize = 32;

/// Below this many hashes the windowed-minimum pass stays on the
/// monotone-deque scalar path.
const MIN_SIMD_WINNOW: usize = 64;

// --- Bulk Karp–Rabin hashing ---------------------------------------------

/// Computes the Karp–Rabin hash of every n-gram of normalised `text`
/// into `out` (`out[p]` is the hash of the n-gram starting at normalised
/// character `p`), using the active kernel.
///
/// `chars` is a reusable scratch buffer for the non-ASCII decode; both
/// vectors are cleared and refilled, so steady-state calls do not
/// allocate. Produces exactly the hash values of
/// [`ngram_hashes`](crate::ngram::ngram_hashes) (the scalar oracle), in
/// the same order.
///
/// # Panics
///
/// Panics if `ngram_len` is zero.
pub fn ngram_hashes_bulk(text: &str, ngram_len: usize, chars: &mut Vec<u32>, out: &mut Vec<u32>) {
    assert!(ngram_len > 0, "ngram_len must be positive");
    out.clear();
    if text.is_ascii() {
        hashes_dispatch_u8(text.as_bytes(), ngram_len, out);
    } else {
        chars.clear();
        chars.extend(text.chars().map(|c| c as u32));
        hashes_dispatch_u32(chars, ngram_len, out);
    }
}

/// SIMD fast lane of the ASCII normalisation path: classifies,
/// lowercases and left-packs a prefix of `bytes` (appending normalised
/// characters to `text` and their byte offsets to `offsets`), returning
/// how many input bytes were consumed. Returns `0` when no vector
/// normaliser is available (scalar hosts, forced-scalar dispatch, or
/// inputs too short to be worth it) — the caller's scalar loop then
/// handles the remainder.
///
/// The caller guarantees `bytes` is ASCII and has reserved
/// `bytes.len()` spare capacity in both buffers (the kernel writes whole
/// vectors past the logical end and advances the length by the number of
/// kept characters).
pub(crate) fn normalize_ascii_prefix(
    bytes: &[u8],
    text: &mut String,
    offsets: &mut Vec<u32>,
) -> usize {
    if bytes.len() < MIN_SIMD_HASHES {
        return 0;
    }
    #[cfg(target_arch = "x86_64")]
    if active_kernel() == KernelKind::Avx2 {
        return x86::normalize_ascii_avx2(bytes, text, offsets);
    }
    let _ = (text, offsets);
    0
}

/// Precomputed powers of [`BASE`] shared by every lane kernel.
struct Powers {
    /// `BASE^L`: advances a hash by `L` positions.
    base_l: u32,
    /// `lo[j] = BASE^(L-1-j)`: multiplier of the j-th incoming character.
    lo: [u32; 8],
    /// `hi[j] = BASE^(n+L-1-j)`: multiplier of the j-th outgoing character.
    hi: [u32; 8],
}

impl Powers {
    fn new(n: usize, lanes: usize) -> Self {
        debug_assert!(lanes <= 8);
        // powers[k] = BASE^k mod 2³²; n is arbitrary so the table is built
        // by plain accumulation (n + L wrapping multiplies, once per call).
        let max = n + lanes;
        let mut powers = vec![1u32; max + 1];
        let mut acc = 1u32;
        for p in powers.iter_mut().skip(1) {
            acc = acc.wrapping_mul(BASE);
            *p = acc;
        }
        let mut lo = [0u32; 8];
        let mut hi = [0u32; 8];
        for (j, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate().take(lanes) {
            *l = powers[lanes - 1 - j];
            *h = powers[n + lanes - 1 - j];
        }
        Self {
            base_l: powers[lanes],
            lo,
            hi,
        }
    }
}

/// Primes `out[0..count]` with scalar rolling hashes starting from
/// character `start` (used to seed the vector lanes and finish tails).
fn scalar_fill<T: Copy + Into<u32>>(
    chars: &[T],
    n: usize,
    range: std::ops::Range<usize>,
    out: &mut [u32],
) {
    for p in range {
        let mut h = 0u32;
        for &c in &chars[p..p + n] {
            h = h.wrapping_mul(BASE).wrapping_add(c.into());
        }
        out[p] = h;
    }
}

/// Portable scalar bulk hashing: one rolling hash, no UTF-8 decode.
fn scalar_hashes<T: Copy + Into<u32>>(chars: &[T], n: usize, out: &mut Vec<u32>) {
    let Some(m) = chars.len().checked_sub(n - 1).filter(|&m| m > 0) else {
        return;
    };
    let high = {
        let mut acc = 1u32;
        for _ in 0..n - 1 {
            acc = acc.wrapping_mul(BASE);
        }
        acc
    };
    let mut h = 0u32;
    for &c in &chars[..n] {
        h = h.wrapping_mul(BASE).wrapping_add(c.into());
    }
    out.push(h);
    for p in 1..m {
        let outgoing: u32 = chars[p - 1].into();
        let incoming: u32 = chars[p + n - 1].into();
        h = h
            .wrapping_sub(outgoing.wrapping_mul(high))
            .wrapping_mul(BASE)
            .wrapping_add(incoming);
        out.push(h);
    }
}

fn hashes_dispatch_u8(chars: &[u8], n: usize, out: &mut Vec<u32>) {
    let m = chars.len().saturating_sub(n - 1);
    if m < MIN_SIMD_HASHES {
        return scalar_hashes(chars, n, out);
    }
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => x86::hashes_u8_avx2(chars, n, m, out),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Sse41 => x86::hashes_u8_sse41(chars, n, m, out),
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon => neon::hashes_u8_neon(chars, n, m, out),
        _ => scalar_hashes(chars, n, out),
    }
}

fn hashes_dispatch_u32(chars: &[u32], n: usize, out: &mut Vec<u32>) {
    let m = chars.len().saturating_sub(n - 1);
    if m < MIN_SIMD_HASHES {
        return scalar_hashes(chars, n, out);
    }
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => x86::hashes_u32_avx2(chars, n, m, out),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Sse41 => x86::hashes_u32_sse41(chars, n, m, out),
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon => neon::hashes_u32_neon(chars, n, m, out),
        _ => scalar_hashes(chars, n, out),
    }
}

// --- Sliding-window minimum (winnowing selection) -------------------------

/// Reusable buffers for the block-wise two-pass window minimum.
#[derive(Debug, Clone, Default)]
pub struct WindowMinScratch {
    /// Per-block suffix minima of the packed ordering keys (the only
    /// materialised pass intermediate: keys are packed on the fly in
    /// both passes, and the prefix minimum is carried in registers).
    /// The combine pass then overwrites it in place with the windowed
    /// minima.
    sfx: Vec<u64>,
    /// Monotone-deque index scratch for the scalar fallback.
    pub(crate) deque: Vec<usize>,
}

/// Packs a hash and its position into one ordering key whose minimum is
/// the robust-winnowing selection: smaller hash first, rightmost position
/// on ties (larger position ⇒ smaller complement ⇒ smaller key).
#[inline]
fn pack_key(hash: u32, position: usize) -> u64 {
    ((hash as u64) << 32) | (u32::MAX - position as u32) as u64
}

/// Decodes a packed key back to `(hash, position)`.
#[inline]
fn unpack_key(key: u64) -> (u32, usize) {
    ((key >> 32) as u32, (u32::MAX - (key as u32)) as usize)
}

/// Sign bias for stored keys: flipping the top bit maps unsigned `u64`
/// order onto signed `i64` order, the only 64-bit comparison x86 SIMD
/// offers (`cmpgt_epi64`). Every key held in [`WindowMinScratch`] buffers
/// is biased; [`unpack_biased`] undoes it at emission time.
const KEY_SIGN: u64 = 1 << 63;

/// Identity element of the biased-key minimum: the largest biased key in
/// signed order.
const KEY_IDENT: u64 = i64::MAX as u64;

/// Packs straight into the biased domain.
#[inline]
fn pack_key_biased(hash: u32, position: usize) -> u64 {
    pack_key(hash, position) ^ KEY_SIGN
}

/// Decodes a biased key back to `(hash, position)`.
#[inline]
fn unpack_biased(key: u64) -> (u32, usize) {
    unpack_key(key ^ KEY_SIGN)
}

/// Minimum of two biased keys (signed comparison ⇔ unsigned key order).
#[inline]
fn bmin(a: u64, b: u64) -> u64 {
    if (a as i64) <= (b as i64) {
        a
    } else {
        b
    }
}

/// Selects the winnowed subset of `hashes` (the hash at index `i` is the
/// n-gram at position `base + i`) into `selected`, using windows of
/// `window` consecutive hashes and robust rightmost-tie-break semantics —
/// byte-identical to [`winnow_into`](crate::winnow::winnow_into) over the
/// same values and positions.
///
/// Dispatches between the monotone-deque scalar path (small inputs, or
/// scalar kernel) and the block-wise two-pass minimum (large inputs on a
/// SIMD kernel). `selected` is cleared and refilled; `scratch` buffers
/// are reused across calls.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn window_min_emit(
    hashes: &[u32],
    base: usize,
    window: usize,
    scratch: &mut WindowMinScratch,
    selected: &mut Vec<NgramHash>,
) {
    assert!(window > 0, "window must be positive");
    selected.clear();
    let m = hashes.len();
    if m == 0 {
        return;
    }
    if m <= window {
        // Degenerate: one window covering everything; rightmost minimum.
        let mut best = 0usize;
        for (i, &h) in hashes.iter().enumerate() {
            if h <= hashes[best] {
                best = i;
            }
        }
        selected.push(NgramHash {
            hash: hashes[best],
            position: base + best,
        });
        return;
    }
    let use_simd = m >= MIN_SIMD_WINNOW
        && window >= 2
        && m < u32::MAX as usize
        && base + m <= u32::MAX as usize
        && active_kernel().is_simd();
    if use_simd {
        window_min_two_pass(hashes, base, window, scratch, selected);
    } else {
        window_min_deque(hashes, base, window, scratch, selected);
    }
}

/// Monotone-deque sliding minimum (the scalar reference, identical to the
/// classic `winnow_into` scan but over raw hash values + base offset).
fn window_min_deque(
    hashes: &[u32],
    base: usize,
    window: usize,
    scratch: &mut WindowMinScratch,
    selected: &mut Vec<NgramHash>,
) {
    let deque = &mut scratch.deque;
    deque.clear();
    let mut head = 0usize;
    let mut last_pos = usize::MAX;
    for i in 0..hashes.len() {
        while deque.len() > head {
            let back = deque[deque.len() - 1];
            if hashes[back] >= hashes[i] {
                deque.pop();
            } else {
                break;
            }
        }
        deque.push(i);
        if i + 1 >= window {
            let window_start = i + 1 - window;
            while deque[head] < window_start {
                head += 1;
            }
            let min_index = deque[head];
            if last_pos != min_index {
                last_pos = min_index;
                selected.push(NgramHash {
                    hash: hashes[min_index],
                    position: base + min_index,
                });
            }
        }
    }
}

/// Block-wise two-pass window minimum over packed keys.
///
/// Positions are split into blocks of `window`. A backward pass computes
/// per-block suffix minima into the only materialised buffer; a fused
/// forward pass carries the per-block *prefix* minimum in a register,
/// combines `min(sfx[i−w+1], pfx[i])` per window — the two operands
/// exactly tile the window because `i − (i−w+1) = w−1 < w` spans at most
/// two adjacent blocks — and emits whenever the windowed minimum key
/// changes (keys are position-unique, so "key changed" is precisely
/// "selected position changed", matching the deque's
/// consecutive-position dedup).
///
/// Both passes pack keys from the raw hashes on the fly: re-packing is a
/// couple of ALU ops per element, far cheaper than streaming separate
/// `keys` and `pfx` u64 arrays through the cache would be.
fn window_min_two_pass(
    hashes: &[u32],
    base: usize,
    window: usize,
    scratch: &mut WindowMinScratch,
    selected: &mut Vec<NgramHash>,
) {
    let m = hashes.len();
    let w = window;
    // The suffix pass overwrites every slot, so the buffer is only
    // resized, never zero-filled: steady-state calls touch each cache
    // line once instead of paying a memset first.
    let sfx = &mut scratch.sfx;
    if sfx.len() < m {
        sfx.resize(m, KEY_IDENT);
    } else {
        sfx.truncate(m);
    }
    #[cfg(target_arch = "x86_64")]
    if active_kernel() == KernelKind::Avx2 {
        x86::suffix_min_avx2(hashes, sfx, w);
        x86::combine_emit_avx2(hashes, sfx, w, base, selected);
        return;
    }
    suffix_min_scalar(hashes, sfx, w);
    combine_emit_scalar(hashes, sfx, w, base, selected);
}

/// Backward per-block suffix minima (portable).
fn suffix_min_scalar(hashes: &[u32], sfx: &mut [u64], w: usize) {
    let m = hashes.len();
    let mut block_start = (m - 1) / w * w;
    loop {
        let block_end = (block_start + w).min(m);
        let mut run = KEY_IDENT;
        for i in (block_start..block_end).rev() {
            run = bmin(run, pack_key_biased(hashes[i], i));
            sfx[i] = run;
        }
        if block_start == 0 {
            break;
        }
        block_start -= w;
    }
}

/// Fused forward pass (portable): per-block prefix minimum carried in a
/// register, combined with the suffix buffer, emitting on change.
///
/// The block boundary is a countdown, not `i % w` — a hardware divide
/// per element would dwarf the minimum itself. The first full window's
/// unconditional emission falls out of seeding the previous selection
/// with the identity key: no window of `w ≥ 2` keys can select
/// `KEY_IDENT` (= hash `u32::MAX` at position 0), because any window
/// containing position 0 also contains position 1, whose key is smaller
/// whenever both hashes are `u32::MAX`.
fn combine_emit_scalar(
    hashes: &[u32],
    sfx: &[u64],
    w: usize,
    base: usize,
    selected: &mut Vec<NgramHash>,
) {
    let mut run = KEY_IDENT;
    let mut prev = KEY_IDENT;
    let mut left = w;
    for (i, &h) in hashes.iter().enumerate() {
        if left == 0 {
            run = KEY_IDENT;
            left = w;
        }
        left -= 1;
        run = bmin(run, pack_key_biased(h, i));
        if i + 1 >= w {
            let combined = bmin(sfx[i + 1 - w], run);
            if combined != prev {
                prev = combined;
                let (hash, pos) = unpack_biased(combined);
                selected.push(NgramHash {
                    hash,
                    position: base + pos,
                });
            }
        }
    }
}

// --- x86-64 kernels -------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    //! AVX2 / SSE4.1 lane kernels. Every function is gated by the runtime
    //! dispatch in the parent module; the `unsafe` here is the `std::arch`
    //! intrinsic contract (the target feature is known present) plus raw
    //! pointer loads whose bounds are established by the loop structure
    //! and asserted in debug builds.

    use super::{
        bmin, pack_key_biased, scalar_fill, scalar_hashes, unpack_biased, NgramHash, Powers,
        KEY_IDENT,
    };
    use std::arch::x86_64::*;

    /// Generates the lane-parallel bulk hash kernels: `$name` hashing
    /// `$elem` characters with `$lanes` u32 lanes under `$feature`.
    macro_rules! bulk_hash_kernel {
        ($name:ident, $elem:ty, $lanes:literal, $feature:literal,
         $vec:ty, $load:expr, $set1:expr, $loadv:expr, $storev:expr,
         $mul:expr, $add:expr, $sub:expr) => {
            pub(super) fn $name(chars: &[$elem], n: usize, m: usize, out: &mut Vec<u32>) {
                const L: usize = $lanes;
                // The vector loop needs a full lane seed plus one whole
                // step of lookahead; anything shorter runs scalar.
                if m < 2 * L {
                    return scalar_hashes(chars, n, out);
                }
                out.resize(m, 0);
                scalar_fill(chars, n, 0..L, out);
                // SAFETY: the target feature was runtime-detected by
                // `active_kernel` before dispatching here.
                unsafe { $name::<L>(chars, n, m, out) };
                // Tail positions not covered by full vector steps.
                let done = L + (m - L) / L * L;
                scalar_fill(chars, n, done..m, out);

                #[target_feature(enable = $feature)]
                unsafe fn $name<const L2: usize>(
                    chars: &[$elem],
                    n: usize,
                    m: usize,
                    out: &mut [u32],
                ) {
                    let powers = Powers::new(n, L2);
                    let base_l = $set1(powers.base_l as i32);
                    let mut lo = [$set1(0); L2];
                    let mut hi = [$set1(0); L2];
                    for j in 0..L2 {
                        lo[j] = $set1(powers.lo[j] as i32);
                        hi[j] = $set1(powers.hi[j] as i32);
                    }
                    let mut p0 = 0usize;
                    // Producing out[p0+L .. p0+2L] reads characters up to
                    // p0 + n + 2L - 2 = (p0 + 2L - 1) + n - 1 <= len - 1,
                    // i.e. requires p0 + 2L - 1 <= m - 1.
                    while p0 + 2 * L2 <= m {
                        debug_assert!(p0 + n + 2 * L2 - 2 < chars.len());
                        let h: $vec = $loadv(out.as_ptr().add(p0));
                        let mut d = $set1(0);
                        for j in 0..L2 {
                            let incoming: $vec = $load(chars.as_ptr().add(p0 + n + j));
                            let outgoing: $vec = $load(chars.as_ptr().add(p0 + j));
                            d = $add(d, $mul(incoming, lo[j]));
                            d = $sub(d, $mul(outgoing, hi[j]));
                        }
                        let next = $add($mul(h, base_l), d);
                        $storev(out.as_mut_ptr().add(p0 + L2), next);
                        p0 += L2;
                    }
                }
            }
        };
    }

    /// Widening 8-byte load: 8 ASCII chars to 8 u32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_u8x8_avx2(ptr: *const u8) -> __m256i {
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(ptr as *const __m128i))
    }

    /// Widening 4-byte load: 4 ASCII chars to 4 u32 lanes.
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn load_u8x4_sse41(ptr: *const u8) -> __m128i {
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128((ptr as *const i32).read_unaligned()))
    }

    bulk_hash_kernel!(
        hashes_u8_avx2,
        u8,
        8,
        "avx2",
        __m256i,
        |p: *const u8| load_u8x8_avx2(p),
        |v: i32| _mm256_set1_epi32(v),
        |p: *const u32| _mm256_loadu_si256(p as *const __m256i),
        |p: *mut u32, v: __m256i| _mm256_storeu_si256(p as *mut __m256i, v),
        |a, b| _mm256_mullo_epi32(a, b),
        |a, b| _mm256_add_epi32(a, b),
        |a, b| _mm256_sub_epi32(a, b)
    );

    bulk_hash_kernel!(
        hashes_u32_avx2,
        u32,
        8,
        "avx2",
        __m256i,
        |p: *const u32| _mm256_loadu_si256(p as *const __m256i),
        |v: i32| _mm256_set1_epi32(v),
        |p: *const u32| _mm256_loadu_si256(p as *const __m256i),
        |p: *mut u32, v: __m256i| _mm256_storeu_si256(p as *mut __m256i, v),
        |a, b| _mm256_mullo_epi32(a, b),
        |a, b| _mm256_add_epi32(a, b),
        |a, b| _mm256_sub_epi32(a, b)
    );

    bulk_hash_kernel!(
        hashes_u8_sse41,
        u8,
        4,
        "sse4.1",
        __m128i,
        |p: *const u8| load_u8x4_sse41(p),
        |v: i32| _mm_set1_epi32(v),
        |p: *const u32| _mm_loadu_si128(p as *const __m128i),
        |p: *mut u32, v: __m128i| _mm_storeu_si128(p as *mut __m128i, v),
        |a, b| _mm_mullo_epi32(a, b),
        |a, b| _mm_add_epi32(a, b),
        |a, b| _mm_sub_epi32(a, b)
    );

    bulk_hash_kernel!(
        hashes_u32_sse41,
        u32,
        4,
        "sse4.1",
        __m128i,
        |p: *const u32| _mm_loadu_si128(p as *const __m128i),
        |v: i32| _mm_set1_epi32(v),
        |p: *const u32| _mm_loadu_si128(p as *const __m128i),
        |p: *mut u32, v: __m128i| _mm_storeu_si128(p as *mut __m128i, v),
        |a, b| _mm_mullo_epi32(a, b),
        |a, b| _mm_add_epi32(a, b),
        |a, b| _mm_sub_epi32(a, b)
    );

    /// Left-pack permutations: `NORM_PERM[mask]` maps the `k`-th set bit
    /// of `mask` to lane `k` under `vpermd`, compressing kept lanes to
    /// the front of the vector.
    static NORM_PERM: [[u32; 8]; 256] = {
        let mut lut = [[0u32; 8]; 256];
        let mut mask = 0usize;
        while mask < 256 {
            let mut out = 0usize;
            let mut lane = 0usize;
            while lane < 8 {
                if mask & (1 << lane) != 0 {
                    lut[mask][out] = lane as u32;
                    out += 1;
                }
                lane += 1;
            }
            mask += 1;
        }
        lut
    };

    /// AVX2 ASCII normalisation: 8 bytes per step are widened to u32
    /// lanes, classified (`[a-z0-9]` after setting the lowercase bit —
    /// the bit is a no-op on digits), left-packed through [`NORM_PERM`]
    /// and narrowed back to bytes. Offsets ride the same permutation on
    /// an iota vector. Returns the number of input bytes consumed (a
    /// multiple of 8; the caller's scalar loop finishes the tail).
    pub(super) fn normalize_ascii_avx2(
        bytes: &[u8],
        text: &mut String,
        offsets: &mut Vec<u32>,
    ) -> usize {
        #[target_feature(enable = "avx2")]
        unsafe fn inner(bytes: &[u8], text: &mut Vec<u8>, offsets: &mut Vec<u32>) -> usize {
            let n = bytes.len();
            text.reserve(n + 8);
            offsets.reserve(n + 8);
            let tstart = text.len();
            let ostart = offsets.len();
            let tptr = text.as_mut_ptr();
            let optr = offsets.as_mut_ptr();
            let mut tlen = tstart;
            let mut olen = ostart;
            let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
            let lower_bit = _mm256_set1_epi32(0x20);
            let ch_a = _mm256_set1_epi32('a' as i32);
            let c26 = _mm256_set1_epi32(26);
            let ch_0 = _mm256_set1_epi32('0' as i32);
            let c10 = _mm256_set1_epi32(10);
            let minus1 = _mm256_set1_epi32(-1);
            // Per 128-bit half: gather byte 0 of each u32 lane.
            #[rustfmt::skip]
            let narrow = _mm256_setr_epi8(
                0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
            );
            let mut i = 0usize;
            while i + 8 <= n {
                let w =
                    _mm256_cvtepu8_epi32(_mm_loadl_epi64(bytes.as_ptr().add(i) as *const __m128i));
                let lower = _mm256_or_si256(w, lower_bit);
                // Letter: lower - 'a' in [0, 26). Digit: b - '0' in [0, 10).
                // All lane values are < 256, so signed compares are exact.
                let lt = _mm256_sub_epi32(lower, ch_a);
                let letter =
                    _mm256_and_si256(_mm256_cmpgt_epi32(lt, minus1), _mm256_cmpgt_epi32(c26, lt));
                let dt = _mm256_sub_epi32(w, ch_0);
                let digit =
                    _mm256_and_si256(_mm256_cmpgt_epi32(dt, minus1), _mm256_cmpgt_epi32(c10, dt));
                let keep = _mm256_or_si256(letter, digit);
                let mask = _mm256_movemask_ps(_mm256_castsi256_ps(keep)) as usize;
                let kept = mask.count_ones() as usize;
                let perm = _mm256_loadu_si256(NORM_PERM[mask].as_ptr() as *const __m256i);
                let offs = _mm256_add_epi32(iota, _mm256_set1_epi32(i as i32));
                _mm256_storeu_si256(
                    optr.add(olen) as *mut __m256i,
                    _mm256_permutevar8x32_epi32(offs, perm),
                );
                olen += kept;
                let packed = _mm256_shuffle_epi8(_mm256_permutevar8x32_epi32(lower, perm), narrow);
                let lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(packed)) as u32 as u64;
                let hi = _mm_cvtsi128_si32(_mm256_extracti128_si256(packed, 1)) as u32 as u64;
                (tptr.add(tlen) as *mut u64).write_unaligned((hi << 32) | lo);
                tlen += kept;
                i += 8;
            }
            text.set_len(tlen);
            offsets.set_len(olen);
            i
        }

        // SAFETY: AVX2 presence was runtime-detected before dispatch; the
        // bytes appended to the String are lowercase ASCII alphanumerics,
        // so it stays valid UTF-8.
        unsafe { inner(bytes, text.as_mut_vec(), offsets) }
    }

    /// Minimum of two biased-key vectors: the keys carry the sign bias,
    /// so the signed `cmpgt` *is* the unsigned key comparison.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn min64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b))
    }

    /// The complemented-position key halves for the four positions
    /// starting at `i`. Loops keep this vector live and step it by ±4
    /// per chunk — rebuilding it each chunk would cost a GPR→vector
    /// broadcast per iteration.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pc_at(i: usize) -> __m256i {
        _mm256_sub_epi64(
            _mm256_set1_epi64x(u32::MAX as i64 - i as i64),
            _mm256_setr_epi64x(0, 1, 2, 3),
        )
    }

    /// Packs the biased ordering keys of four consecutive positions
    /// starting at `i` straight from the raw hashes: xoring the hash's
    /// top bit *before* the zero-extending widen lands the sign bias at
    /// bit 63 of the u64 key, and the caller-maintained complemented
    /// position (`pc`, = [`pc_at`]`(i)`) occupies the low half. Cheaper
    /// than materialising a key array: four ALU ops replace a 32-byte
    /// store + reload per chunk.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pack4(hashes: &[u32], i: usize, pc: __m256i) -> __m256i {
        debug_assert!(i + 4 <= hashes.len());
        let x = _mm_loadu_si128(hashes.as_ptr().add(i) as *const __m128i);
        let hx = _mm_xor_si128(x, _mm_set1_epi32(i32::MIN));
        _mm256_or_si256(_mm256_slli_epi64(_mm256_cvtepu32_epi64(hx), 32), pc)
    }

    /// Within-chunk suffix scan: `s[k] = min(v[k..4])` via two shift/min
    /// steps with the identity shifted into the vacated lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn suffix_scan(v: __m256i, ident: __m256i) -> __m256i {
        let t = min64(
            v,
            _mm256_blend_epi32(
                _mm256_permute4x64_epi64(v, 0b11_11_10_01),
                ident,
                0b1100_0000,
            ),
        );
        min64(
            t,
            _mm256_blend_epi32(
                _mm256_permute4x64_epi64(t, 0b11_10_11_10),
                ident,
                0b1111_0000,
            ),
        )
    }

    /// Within-chunk prefix scan: `s[k] = min(v[0..=k])` — the mirror of
    /// [`suffix_scan`].
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn prefix_scan(v: __m256i, ident: __m256i) -> __m256i {
        let t = min64(
            v,
            _mm256_blend_epi32(
                _mm256_permute4x64_epi64(v, 0b10_01_00_00),
                ident,
                0b0000_0011,
            ),
        );
        min64(
            t,
            _mm256_blend_epi32(
                _mm256_permute4x64_epi64(t, 0b01_00_00_00),
                ident,
                0b0000_1111,
            ),
        )
    }

    /// Per-block suffix minima: within each 4-key chunk a two-step
    /// shift/min folds higher lanes into lower ones, then the running
    /// block minimum is folded in and re-broadcast. That carry is the
    /// chunk loop's only cross-iteration dependency (≈8 cycles of
    /// min + permute latency per 4 keys), so two independent blocks are
    /// processed interleaved: their carry chains overlap and the pass
    /// runs at port throughput instead of chain latency.
    pub(super) fn suffix_min_avx2(hashes: &[u32], sfx: &mut [u64], w: usize) {
        #[target_feature(enable = "avx2")]
        unsafe fn single(hashes: &[u32], sfx: &mut [u64], start: usize, end: usize) {
            let ident = _mm256_set1_epi64x(i64::MAX);
            let chunks = (end - start) / 4;
            // Scalar remainder at the top of the block seeds the carry.
            let mut run = KEY_IDENT;
            for i in (start + chunks * 4..end).rev() {
                run = bmin(run, pack_key_biased(hashes[i], i));
                sfx[i] = run;
            }
            let mut carry = _mm256_set1_epi64x(run as i64);
            if chunks > 0 {
                let four = _mm256_set1_epi64x(4);
                let mut pc = pc_at(start + (chunks - 1) * 4);
                for c in (0..chunks).rev() {
                    let ci = start + c * 4;
                    let s = min64(suffix_scan(pack4(hashes, ci, pc), ident), carry);
                    _mm256_storeu_si256(sfx.as_mut_ptr().add(ci) as *mut __m256i, s);
                    carry = _mm256_permute4x64_epi64(s, 0b00_00_00_00);
                    pc = _mm256_add_epi64(pc, four);
                }
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn pair(hashes: &[u32], sfx: &mut [u64], sa: usize, w: usize) {
            let ident = _mm256_set1_epi64x(i64::MAX);
            let sb = sa + w;
            let chunks = w / 4;
            let mut run_a = KEY_IDENT;
            let mut run_b = KEY_IDENT;
            for off in (chunks * 4..w).rev() {
                run_a = bmin(run_a, pack_key_biased(hashes[sa + off], sa + off));
                sfx[sa + off] = run_a;
                run_b = bmin(run_b, pack_key_biased(hashes[sb + off], sb + off));
                sfx[sb + off] = run_b;
            }
            let mut carry_a = _mm256_set1_epi64x(run_a as i64);
            let mut carry_b = _mm256_set1_epi64x(run_b as i64);
            if chunks > 0 {
                let four = _mm256_set1_epi64x(4);
                let mut pc_a = pc_at(sa + (chunks - 1) * 4);
                let mut pc_b = pc_at(sb + (chunks - 1) * 4);
                for c in (0..chunks).rev() {
                    let ca = sa + c * 4;
                    let cb = sb + c * 4;
                    let s_a = min64(suffix_scan(pack4(hashes, ca, pc_a), ident), carry_a);
                    let s_b = min64(suffix_scan(pack4(hashes, cb, pc_b), ident), carry_b);
                    _mm256_storeu_si256(sfx.as_mut_ptr().add(ca) as *mut __m256i, s_a);
                    _mm256_storeu_si256(sfx.as_mut_ptr().add(cb) as *mut __m256i, s_b);
                    carry_a = _mm256_permute4x64_epi64(s_a, 0b00_00_00_00);
                    carry_b = _mm256_permute4x64_epi64(s_b, 0b00_00_00_00);
                    pc_a = _mm256_add_epi64(pc_a, four);
                    pc_b = _mm256_add_epi64(pc_b, four);
                }
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn inner(hashes: &[u32], sfx: &mut [u64], w: usize) {
            let m = hashes.len();
            // The last block (possibly partial) runs alone, then enough
            // singles to leave an even number of full blocks below, then
            // interleaved pairs down to block 0.
            let mut bs = (m - 1) / w * w;
            single(hashes, sfx, bs, m);
            if (bs / w) % 2 == 1 {
                bs -= w;
                single(hashes, sfx, bs, bs + w);
            }
            while bs >= 2 * w {
                bs -= 2 * w;
                pair(hashes, sfx, bs, w);
            }
        }

        // SAFETY: AVX2 presence was runtime-detected before dispatch.
        unsafe { inner(hashes, sfx, w) }
    }

    /// Forward pass + emission. For every window the block prefix
    /// minimum is built in-register (within-chunk scan plus the block
    /// carry) and combined with the suffix buffer; the combined minima
    /// are written *in place* over `sfx` — slot `i+1−w` is read and
    /// rewritten by exactly the window ending at `i`, so the overwrite
    /// is safe in any processing order. Freeing the pass from in-order
    /// emission lets two independent blocks interleave, hiding the
    /// carry-chain latency exactly as in [`suffix_min_avx2`]. A final
    /// linear scan emits a selection wherever consecutive windowed
    /// minima differ (expected density `2/(w+1)`, so most 4-wide chunks
    /// take the all-equal fast path).
    ///
    /// Block 0 is a scalar warm-up — only its last position completes a
    /// window — and the first full window always emits.
    pub(super) fn combine_emit_avx2(
        hashes: &[u32],
        sfx: &mut [u64],
        w: usize,
        base: usize,
        selected: &mut Vec<NgramHash>,
    ) {
        #[target_feature(enable = "avx2")]
        unsafe fn single(hashes: &[u32], sfx: &mut [u64], w: usize, start: usize, end: usize) {
            let ident = _mm256_set1_epi64x(i64::MAX);
            let chunks = (end - start) / 4;
            let mut carry = ident;
            let mut ci = start;
            if chunks > 0 {
                let four = _mm256_set1_epi64x(4);
                let mut pc = pc_at(start);
                for _ in 0..chunks {
                    let s = min64(prefix_scan(pack4(hashes, ci, pc), ident), carry);
                    carry = _mm256_permute4x64_epi64(s, 0b11_11_11_11);
                    let j = ci + 1 - w;
                    let c = min64(s, _mm256_loadu_si256(sfx.as_ptr().add(j) as *const __m256i));
                    _mm256_storeu_si256(sfx.as_mut_ptr().add(j) as *mut __m256i, c);
                    pc = _mm256_sub_epi64(pc, four);
                    ci += 4;
                }
            }
            let mut run = _mm256_extract_epi64(carry, 0) as u64;
            for i in ci..end {
                run = bmin(run, pack_key_biased(hashes[i], i));
                sfx[i + 1 - w] = bmin(sfx[i + 1 - w], run);
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn pair(hashes: &[u32], sfx: &mut [u64], sa: usize, w: usize) {
            let ident = _mm256_set1_epi64x(i64::MAX);
            let sb = sa + w;
            let chunks = w / 4;
            let mut carry_a = ident;
            let mut carry_b = ident;
            if chunks > 0 {
                let four = _mm256_set1_epi64x(4);
                let mut pc_a = pc_at(sa);
                let mut pc_b = pc_at(sb);
                for c in 0..chunks {
                    let ca = sa + c * 4;
                    let cb = sb + c * 4;
                    let s_a = min64(prefix_scan(pack4(hashes, ca, pc_a), ident), carry_a);
                    let s_b = min64(prefix_scan(pack4(hashes, cb, pc_b), ident), carry_b);
                    carry_a = _mm256_permute4x64_epi64(s_a, 0b11_11_11_11);
                    carry_b = _mm256_permute4x64_epi64(s_b, 0b11_11_11_11);
                    let ja = ca + 1 - w;
                    let jb = cb + 1 - w;
                    let c_a = min64(
                        s_a,
                        _mm256_loadu_si256(sfx.as_ptr().add(ja) as *const __m256i),
                    );
                    let c_b = min64(
                        s_b,
                        _mm256_loadu_si256(sfx.as_ptr().add(jb) as *const __m256i),
                    );
                    _mm256_storeu_si256(sfx.as_mut_ptr().add(ja) as *mut __m256i, c_a);
                    _mm256_storeu_si256(sfx.as_mut_ptr().add(jb) as *mut __m256i, c_b);
                    pc_a = _mm256_sub_epi64(pc_a, four);
                    pc_b = _mm256_sub_epi64(pc_b, four);
                }
            }
            let mut run_a = _mm256_extract_epi64(carry_a, 0) as u64;
            let mut run_b = _mm256_extract_epi64(carry_b, 0) as u64;
            for off in chunks * 4..w {
                let ia = sa + off;
                let ib = sb + off;
                run_a = bmin(run_a, pack_key_biased(hashes[ia], ia));
                sfx[ia + 1 - w] = bmin(sfx[ia + 1 - w], run_a);
                run_b = bmin(run_b, pack_key_biased(hashes[ib], ib));
                sfx[ib + 1 - w] = bmin(sfx[ib + 1 - w], run_b);
            }
        }

        /// Emission scan over the windowed minima `c` (`c[j]` = minimum
        /// of the window ending at `j+w−1`): the first window always
        /// emits, every later one iff its minimum key differs from its
        /// predecessor's. (A branch-free left-packing variant measured
        /// consistently slower here: real-text change density is low
        /// enough that the per-chunk branch predicts well.)
        #[target_feature(enable = "avx2")]
        unsafe fn emit_changes(c: &[u64], base: usize, selected: &mut Vec<NgramHash>) {
            let (hash, pos) = unpack_biased(c[0]);
            selected.push(NgramHash {
                hash,
                position: base + pos,
            });
            let len = c.len();
            let mut j = 1;
            while j + 4 <= len {
                let v = _mm256_loadu_si256(c.as_ptr().add(j) as *const __m256i);
                let u = _mm256_loadu_si256(c.as_ptr().add(j - 1) as *const __m256i);
                if _mm256_movemask_epi8(_mm256_cmpeq_epi64(v, u)) != -1 {
                    for k in j..j + 4 {
                        if c[k] != c[k - 1] {
                            let (hash, pos) = unpack_biased(c[k]);
                            selected.push(NgramHash {
                                hash,
                                position: base + pos,
                            });
                        }
                    }
                }
                j += 4;
            }
            while j < len {
                if c[j] != c[j - 1] {
                    let (hash, pos) = unpack_biased(c[j]);
                    selected.push(NgramHash {
                        hash,
                        position: base + pos,
                    });
                }
                j += 1;
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn inner(
            hashes: &[u32],
            sfx: &mut [u64],
            w: usize,
            base: usize,
            selected: &mut Vec<NgramHash>,
        ) {
            let m = hashes.len();
            // Block 0 warm-up: the only window it completes ends at w−1.
            let mut run = KEY_IDENT;
            for (i, &h) in hashes.iter().enumerate().take(w) {
                run = bmin(run, pack_key_biased(h, i));
            }
            sfx[0] = bmin(sfx[0], run);
            // Pairs of full blocks, then the stragglers (the last block
            // may be partial).
            let mut bs = w;
            while bs + 2 * w <= m {
                pair(hashes, sfx, bs, w);
                bs += 2 * w;
            }
            while bs < m {
                let be = (bs + w).min(m);
                single(hashes, sfx, w, bs, be);
                bs = be;
            }
            emit_changes(&sfx[..m - w + 1], base, selected);
        }

        // SAFETY: AVX2 presence was runtime-detected before dispatch.
        unsafe { inner(hashes, sfx, w, base, selected) }
    }
}

// --- aarch64 kernels ------------------------------------------------------

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    //! NEON lane kernels: 4 u32 hash lanes. The windowed-minimum combine
    //! pass stays scalar on aarch64 (NEON has no 64-bit integer min);
    //! the hash kernel is where the bulk of the win lives.

    use super::{scalar_fill, scalar_hashes, Powers};
    use std::arch::aarch64::*;

    macro_rules! neon_hash_kernel {
        ($name:ident, $elem:ty, $load:expr) => {
            pub(super) fn $name(chars: &[$elem], n: usize, m: usize, out: &mut Vec<u32>) {
                const L: usize = 4;
                if m < 2 * L {
                    return scalar_hashes(chars, n, out);
                }
                out.resize(m, 0);
                scalar_fill(chars, n, 0..L, out);
                // SAFETY: NEON presence was runtime-detected by
                // `active_kernel` before dispatching here.
                unsafe { inner(chars, n, m, out) };
                let done = L + (m - L) / L * L;
                scalar_fill(chars, n, done..m, out);

                #[target_feature(enable = "neon")]
                unsafe fn inner(chars: &[$elem], n: usize, m: usize, out: &mut [u32]) {
                    const L: usize = 4;
                    let powers = Powers::new(n, L);
                    let base_l = vdupq_n_u32(powers.base_l);
                    let mut p0 = 0usize;
                    while p0 + 2 * L <= m {
                        debug_assert!(p0 + n + 2 * L - 2 < chars.len());
                        let h = vld1q_u32(out.as_ptr().add(p0));
                        let mut d = vdupq_n_u32(0);
                        for j in 0..L {
                            let incoming = $load(chars.as_ptr().add(p0 + n + j));
                            let outgoing = $load(chars.as_ptr().add(p0 + j));
                            d = vaddq_u32(d, vmulq_u32(incoming, vdupq_n_u32(powers.lo[j])));
                            d = vsubq_u32(d, vmulq_u32(outgoing, vdupq_n_u32(powers.hi[j])));
                        }
                        let next = vaddq_u32(vmulq_u32(h, base_l), d);
                        vst1q_u32(out.as_mut_ptr().add(p0 + L), next);
                        p0 += L;
                    }
                }
            }
        };
    }

    /// Widening 4-byte load: 4 ASCII chars to 4 u32 lanes.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn load_u8x4(ptr: *const u8) -> uint32x4_t {
        let bytes = vld1_u8([*ptr, *ptr.add(1), *ptr.add(2), *ptr.add(3), 0, 0, 0, 0].as_ptr());
        vmovl_u16(vget_low_u16(vmovl_u8(bytes)))
    }

    neon_hash_kernel!(hashes_u8_neon, u8, |p: *const u8| load_u8x4(p));
    neon_hash_kernel!(hashes_u32_neon, u32, |p: *const u32| vld1q_u32(p));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::ngram_hashes;
    use crate::winnow::winnow_into;

    fn oracle_hashes(text: &str, n: usize) -> Vec<u32> {
        ngram_hashes(text, n).into_iter().map(|h| h.hash).collect()
    }

    fn bulk(text: &str, n: usize) -> Vec<u32> {
        let mut chars = Vec::new();
        let mut out = Vec::new();
        ngram_hashes_bulk(text, n, &mut chars, &mut out);
        out
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(KernelKind::Scalar.name(), "scalar");
        assert_eq!(KernelKind::Avx2.name(), "avx2");
        assert!(!KernelKind::Scalar.is_simd());
        assert!(KernelKind::Neon.is_simd());
        assert_eq!(KernelKind::Sse41.to_string(), "sse4.1");
    }

    /// Serializes tests that toggle the global scalar override. All
    /// kernels produce identical results, so concurrent toggles cannot
    /// corrupt outputs — but assertions about which kernel is active
    /// would race without this.
    fn force_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap()
    }

    #[test]
    fn force_scalar_overrides_dispatch() {
        let _guard = force_lock();
        force_scalar(true);
        assert_eq!(active_kernel(), KernelKind::Scalar);
        force_scalar(false);
        if std::env::var("BF_FORCE_SCALAR").is_err() {
            assert_eq!(active_kernel(), detected_kernel());
        }
    }

    #[test]
    fn bulk_matches_oracle_on_ascii() {
        let text: String = "the quick brown fox jumps over the lazy dog "
            .chars()
            .cycle()
            .take(1000)
            .collect();
        for n in [1, 2, 3, 7, 15, 16, 31, 64] {
            assert_eq!(bulk(&text, n), oracle_hashes(&text, n), "n={n}");
        }
    }

    #[test]
    fn bulk_matches_oracle_on_unicode() {
        let text: String = "ζeta συστηματα ünïcode München twentyfoursevenλ "
            .chars()
            .cycle()
            .take(700)
            .collect();
        for n in [1, 4, 15, 33] {
            assert_eq!(bulk(&text, n), oracle_hashes(&text, n), "n={n}");
        }
    }

    #[test]
    fn bulk_matches_oracle_at_simd_block_edges() {
        // Straddle every alignment of the 8-lane step and its scalar tail.
        let base = "abcdefghijklmnopqrstuvwxyz0123456789";
        for len in 0..200usize {
            let text: String = base.chars().cycle().take(len).collect();
            for n in [1, 5, 15] {
                assert_eq!(bulk(&text, n), oracle_hashes(&text, n), "len={len} n={n}");
            }
        }
    }

    #[test]
    fn degenerate_sizes_hash_to_nothing() {
        assert!(bulk("", 3).is_empty());
        assert!(bulk("ab", 3).is_empty());
        assert_eq!(bulk("abc", 3).len(), 1);
    }

    #[test]
    fn forced_scalar_bulk_is_identical() {
        let _guard = force_lock();
        let text: String = "lorem ipsum dolor sit amet consectetur adipiscing elit "
            .chars()
            .cycle()
            .take(2000)
            .collect();
        let native = bulk(&text, 15);
        force_scalar(true);
        let scalar = bulk(&text, 15);
        force_scalar(false);
        assert_eq!(native, scalar);
    }

    fn oracle_winnow(hashes: &[u32], base: usize, w: usize) -> Vec<NgramHash> {
        let tagged: Vec<NgramHash> = hashes
            .iter()
            .enumerate()
            .map(|(i, &hash)| NgramHash {
                hash,
                position: base + i,
            })
            .collect();
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        winnow_into(&tagged, w, &mut scratch, &mut out);
        out
    }

    fn kernel_winnow(hashes: &[u32], base: usize, w: usize) -> Vec<NgramHash> {
        let mut scratch = WindowMinScratch::default();
        let mut out = Vec::new();
        window_min_emit(hashes, base, w, &mut scratch, &mut out);
        out
    }

    fn pseudo_random(len: usize, modulus: u32, seed: u64) -> Vec<u32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as u32) % modulus
            })
            .collect()
    }

    #[test]
    fn window_min_matches_deque_oracle() {
        for &len in &[0usize, 1, 2, 5, 63, 64, 65, 127, 200, 1000] {
            // Low-modulus values force heavy ties; high exercise the
            // general case.
            for &modulus in &[3u32, 17, u32::MAX] {
                let values = pseudo_random(len, modulus, len as u64 + modulus as u64);
                for &w in &[1usize, 2, 3, 9, 30, 64, 200] {
                    assert_eq!(
                        kernel_winnow(&values, 7, w),
                        oracle_winnow(&values, 7, w),
                        "len={len} modulus={modulus} w={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_min_forced_scalar_matches() {
        let _guard = force_lock();
        let values = pseudo_random(500, 11, 99);
        let native = kernel_winnow(&values, 0, 9);
        force_scalar(true);
        let scalar = kernel_winnow(&values, 0, 9);
        force_scalar(false);
        assert_eq!(native, scalar);
    }

    #[test]
    fn pack_key_orders_rightmost_ties_first() {
        // Equal hashes: the later position packs to the smaller key.
        assert!(pack_key(7, 5) < pack_key(7, 4));
        // Smaller hash always wins regardless of position.
        assert!(pack_key(6, 0) < pack_key(7, 1000));
        assert_eq!(unpack_key(pack_key(42, 17)), (42, 17));
    }
}
