//! Text fingerprinting for imprecise data flow tracking.
//!
//! This crate implements the fingerprinting pipeline described in §4.1 of
//! *BrowserFlow: Imprecise Data Flow Tracking to Prevent Accidental Data
//! Disclosure* (Middleware 2016), which itself extends the winnowing
//! algorithm of Schleimer, Wilkerson and Aiken (SIGMOD 2003):
//!
//! 1. **Normalisation** ([`normalize`]): punctuation, whitespace and
//!    character case are removed, e.g. `"Hello World!"` becomes
//!    `"helloworld"`. A mapping back to byte offsets in the original text
//!    is retained so that matches can be attributed to source passages.
//! 2. **n-gram hashing** ([`ngram`]): a 32-bit Karp–Rabin rolling hash is
//!    computed for every n-gram of the normalised text.
//! 3. **Winnowing** ([`winnow`]): overlapping windows of `w` consecutive
//!    hashes are formed and the minimum hash of each window is selected
//!    (rightmost occurrence on ties — "robust winnowing").
//! 4. The selected hashes form the segment's [`Fingerprint`].
//!
//! The guarantee inherited from winnowing: if two normalised texts share a
//! substring of at least `w + n - 1` characters, their fingerprints share
//! at least one hash.
//!
//! # Example
//!
//! ```rust
//! use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = FingerprintConfig::builder().ngram_len(6).window(3).build()?;
//! let fp = Fingerprinter::new(config);
//!
//! let a = fp.fingerprint("The quick brown fox jumps over the lazy dog.");
//! let b = fp.fingerprint("THE QUICK BROWN FOX jumps over the lazy dog!!!");
//! // Normalisation makes the fingerprints identical.
//! assert_eq!(a.containment_in(&b), 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// `unsafe` is denied everywhere except the `kernel` module, whose
// `std::arch` SIMD intrinsics require it; each site is feature-gated by
// runtime dispatch and documented.
#![deny(unsafe_code)]

mod config;
mod fingerprint;
pub mod hash;
pub mod incremental;
pub mod kernel;
pub mod ngram;
pub mod normalize;
mod scratch;
pub mod segment;
pub mod winnow;

pub use config::{ConfigError, FingerprintConfig, FingerprintConfigBuilder};
pub use fingerprint::{Fingerprint, SelectedHash};
pub use incremental::{FingerprintDelta, IncrementalFingerprinter, TextEdit};
pub use kernel::{active_kernel, detected_kernel, force_scalar, KernelKind};
pub use normalize::NormalizedText;
pub use scratch::FingerprintScratch;

/// Computes [`Fingerprint`]s of text segments under a fixed
/// [`FingerprintConfig`].
///
/// A `Fingerprinter` is cheap to clone and is the main entry point of this
/// crate: construct one per deployment-wide configuration and reuse it for
/// every paragraph and document.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::Fingerprinter;
///
/// let fp = Fingerprinter::default();
/// let print = fp.fingerprint("a paragraph of sensitive interview notes, long enough to fingerprint");
/// assert!(!print.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fingerprinter {
    config: FingerprintConfig,
}

impl Fingerprinter {
    /// Creates a fingerprinter with the given configuration.
    pub fn new(config: FingerprintConfig) -> Self {
        Self { config }
    }

    /// Returns the configuration this fingerprinter uses.
    pub fn config(&self) -> &FingerprintConfig {
        &self.config
    }

    /// Computes the fingerprint of `text`.
    ///
    /// Texts whose normalised form is shorter than the configured n-gram
    /// length produce an *empty* fingerprint; the paper accepts this as a
    /// systematic source of false negatives for very short paragraphs
    /// (§4.4, §6.1).
    ///
    /// Pipeline buffers come from a per-thread scratch (see
    /// [`FingerprintScratch`]), so repeated calls on one thread reach the
    /// same steady-state allocation profile as
    /// [`Fingerprinter::fingerprint_with`]: only the returned
    /// [`Fingerprint`] is allocated.
    pub fn fingerprint(&self, text: &str) -> Fingerprint {
        SHARED_SCRATCH.with(|cell| self.fingerprint_with(text, &mut cell.borrow_mut()))
    }

    /// Computes the fingerprint of already-normalised text.
    ///
    /// Useful when the caller needs the [`NormalizedText`] for other
    /// purposes (e.g. span attribution) and wants to avoid normalising
    /// twice. Runs the same kernel-dispatched bulk pipeline as
    /// [`Fingerprinter::fingerprint_with`], on the per-thread scratch.
    pub fn fingerprint_normalized(&self, normalized: &NormalizedText) -> Fingerprint {
        SHARED_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.select_normalized(
                normalized,
                &mut scratch.chars,
                &mut scratch.hash_values,
                &mut scratch.window_min,
                &mut scratch.selected,
            )
        })
    }

    /// Computes the fingerprint of `text` reusing the buffers in `scratch`.
    ///
    /// Identical output to [`Fingerprinter::fingerprint`], but after the
    /// scratch buffers reach steady-state capacity the only allocation per
    /// call is the returned [`Fingerprint`] itself — the normalised text,
    /// offset maps, bulk hash buffer and window-minimum scratch are all
    /// reused. The hash and winnow stages run on the runtime-dispatched
    /// SIMD kernel (see [`kernel`]); [`active_kernel`] reports which one.
    pub fn fingerprint_with(&self, text: &str, scratch: &mut FingerprintScratch) -> Fingerprint {
        normalize::normalize_into(text, &mut scratch.normalized);
        self.select_normalized(
            &scratch.normalized,
            &mut scratch.chars,
            &mut scratch.hash_values,
            &mut scratch.window_min,
            &mut scratch.selected,
        )
    }

    /// Hash + winnow + span attribution over already-normalised text, with
    /// every buffer supplied by the caller.
    fn select_normalized(
        &self,
        normalized: &NormalizedText,
        chars: &mut Vec<u32>,
        hash_values: &mut Vec<u32>,
        window_min: &mut winnow::WindowMinScratch,
        selected: &mut Vec<ngram::NgramHash>,
    ) -> Fingerprint {
        let n = self.config.ngram_len();
        kernel::ngram_hashes_bulk(normalized.text(), n, chars, hash_values);
        winnow::winnow_hashes_into(hash_values, 0, self.config.window(), window_min, selected);
        let entries = selected
            .iter()
            .map(|sel| {
                let span = normalized.span_of_ngram(sel.position, n);
                SelectedHash::new(sel.hash, sel.position, span)
            })
            .collect();
        Fingerprint::from_entries(entries)
    }
}

std::thread_local! {
    /// Per-thread pipeline buffers backing the allocating entry points
    /// ([`Fingerprinter::fingerprint`] and
    /// [`Fingerprinter::fingerprint_normalized`]): the bulk hash and
    /// window-minimum buffers grow to paragraph size once and are then
    /// reused by every check on the thread.
    static SHARED_SCRATCH: std::cell::RefCell<FingerprintScratch> =
        std::cell::RefCell::new(FingerprintScratch::new());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp6_3() -> Fingerprinter {
        Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(3)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn identical_text_identical_fingerprint() {
        let fp = fp6_3();
        let a = fp.fingerprint("some reasonably long piece of text for testing");
        let b = fp.fingerprint("some reasonably long piece of text for testing");
        assert_eq!(a, b);
    }

    #[test]
    fn normalisation_invariance() {
        let fp = fp6_3();
        let a = fp.fingerprint("Hello, World! This Is A Test Sentence.");
        let b = fp.fingerprint("helloworldthisisatestsentence");
        assert_eq!(a.hash_set(), b.hash_set());
    }

    #[test]
    fn short_text_yields_empty_fingerprint() {
        let fp = fp6_3();
        assert!(fp.fingerprint("tiny").is_empty());
        assert!(fp.fingerprint("").is_empty());
        // Exactly one n-gram is enough to produce one hash.
        assert_eq!(fp.fingerprint("sixsix").len(), 1);
    }

    #[test]
    fn disjoint_text_low_overlap() {
        let fp = fp6_3();
        let a = fp.fingerprint("alpha bravo charlie delta echo foxtrot golf");
        let b = fp.fingerprint("zulu yankee xray whiskey victor uniform tango");
        assert_eq!(a.intersection_size(&b), 0);
    }

    #[test]
    fn paper_example_pipeline() {
        // §4.1 walks "Hello World!" -> "helloworld" -> five 6-grams ->
        // windows of 3 -> two selected hashes. We can't match the paper's
        // example hash values but the structural counts must hold.
        let normalized = normalize::normalize("Hello World!");
        assert_eq!(normalized.text(), "helloworld");
        let hashes = ngram::ngram_hashes(normalized.text(), 6);
        assert_eq!(hashes.len(), 5);
        let picked = winnow::winnow(&hashes, 3);
        // 3 windows, each contributes at most one distinct position.
        assert!((1..=3).contains(&picked.len()));
    }

    #[test]
    fn fingerprint_spans_point_into_original_text() {
        let fp = fp6_3();
        let text = "The Quick, Brown Fox! Jumps over the lazy dog again and again.";
        let print = fp.fingerprint(text);
        for entry in print.iter() {
            let span = entry.span();
            assert!(span.start < span.end);
            assert!(span.end <= text.len());
            // The span must cover at least ngram_len normalised characters,
            // i.e. at least 6 original bytes here (ASCII).
            assert!(span.end - span.start >= 6);
        }
    }
}
