//! n-gram hash sequences (step S2 of the fingerprinting pipeline).

use crate::hash::RollingHash;

/// A hash of one n-gram, tagged with the normalised character index at
/// which the n-gram starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NgramHash {
    /// 32-bit Karp–Rabin hash of the n-gram.
    pub hash: u32,
    /// Index (in normalised characters) of the n-gram's first character.
    pub position: usize,
}

/// Computes the Karp–Rabin hash of every n-gram of `text`.
///
/// `text` is expected to be *normalised* text (see
/// [`crate::normalize::normalize`]); positions are indices into its
/// characters. Returns an empty vector when the text is shorter than
/// `ngram_len`.
///
/// # Panics
///
/// Panics if `ngram_len` is zero.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::ngram::ngram_hashes;
///
/// let hashes = ngram_hashes("helloworld", 6);
/// // "hellow", "ellowo", "llowor", "loworl", "oworld"
/// assert_eq!(hashes.len(), 5);
/// assert_eq!(hashes[0].position, 0);
/// assert_eq!(hashes[4].position, 4);
/// ```
pub fn ngram_hashes(text: &str, ngram_len: usize) -> Vec<NgramHash> {
    let mut out = Vec::with_capacity(text.len().saturating_sub(ngram_len.saturating_sub(1)));
    ngram_hashes_into(text, ngram_len, &mut out);
    out
}

/// Computes the Karp–Rabin hash of every n-gram of `text` into `out`,
/// reusing its buffer.
///
/// Behaves exactly like [`ngram_hashes`] but clears and refills an existing
/// vector instead of allocating a fresh one. The sliding window is tracked
/// with a pair of `char` iterators (lead and trail, `ngram_len` characters
/// apart) rather than a ring buffer, so the call performs no allocation at
/// all.
///
/// # Panics
///
/// Panics if `ngram_len` is zero.
pub fn ngram_hashes_into(text: &str, ngram_len: usize, out: &mut Vec<NgramHash>) {
    assert!(ngram_len > 0, "ngram_len must be positive");
    out.clear();
    let mut rolling = RollingHash::new(ngram_len);
    let mut lead = text.chars();
    for _ in 0..ngram_len {
        match lead.next() {
            Some(c) => rolling.push(c),
            // Text shorter than one n-gram hashes to nothing.
            None => return,
        }
    }
    out.push(NgramHash {
        hash: rolling.value(),
        position: 0,
    });
    let mut trail = text.chars();
    for (offset, incoming) in lead.enumerate() {
        let outgoing = trail.next().expect("trail lags lead by ngram_len chars");
        rolling.roll(outgoing, incoming);
        out.push(NgramHash {
            hash: rolling.value(),
            position: offset + 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_ngram;

    #[test]
    fn count_is_len_minus_n_plus_one() {
        assert_eq!(ngram_hashes("abcdef", 3).len(), 4);
        assert_eq!(ngram_hashes("abcdef", 6).len(), 1);
        assert_eq!(ngram_hashes("abcdef", 7).len(), 0);
        assert_eq!(ngram_hashes("", 3).len(), 0);
    }

    #[test]
    fn positions_are_sequential() {
        let hashes = ngram_hashes("abcdefgh", 3);
        for (i, h) in hashes.iter().enumerate() {
            assert_eq!(h.position, i);
        }
    }

    #[test]
    fn hashes_match_reference_implementation() {
        let text = "imprecisedataflowtracking";
        let chars: Vec<char> = text.chars().collect();
        for (i, h) in ngram_hashes(text, 7).iter().enumerate() {
            assert_eq!(h.hash, hash_ngram(&chars[i..i + 7]));
        }
    }

    #[test]
    fn into_variant_reuses_buffer() {
        let mut out = Vec::new();
        ngram_hashes_into("abcdefgh", 3, &mut out);
        assert_eq!(out, ngram_hashes("abcdefgh", 3));
        ngram_hashes_into("xy", 3, &mut out);
        assert!(out.is_empty());
        ngram_hashes_into("hello", 2, &mut out);
        assert_eq!(out, ngram_hashes("hello", 2));
    }

    #[test]
    fn repeated_ngrams_share_hashes() {
        // "abcabc" -> "abc" appears at positions 0 and 3.
        let hashes = ngram_hashes("abcabc", 3);
        assert_eq!(hashes[0].hash, hashes[3].hash);
    }
}
