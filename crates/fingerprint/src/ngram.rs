//! n-gram hash sequences (step S2 of the fingerprinting pipeline).

use crate::hash::RollingHash;

/// A hash of one n-gram, tagged with the normalised character index at
/// which the n-gram starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NgramHash {
    /// 32-bit Karp–Rabin hash of the n-gram.
    pub hash: u32,
    /// Index (in normalised characters) of the n-gram's first character.
    pub position: usize,
}

/// Computes the Karp–Rabin hash of every n-gram of `text`.
///
/// `text` is expected to be *normalised* text (see
/// [`crate::normalize::normalize`]); positions are indices into its
/// characters. Returns an empty vector when the text is shorter than
/// `ngram_len`.
///
/// # Panics
///
/// Panics if `ngram_len` is zero.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::ngram::ngram_hashes;
///
/// let hashes = ngram_hashes("helloworld", 6);
/// // "hellow", "ellowo", "llowor", "loworl", "oworld"
/// assert_eq!(hashes.len(), 5);
/// assert_eq!(hashes[0].position, 0);
/// assert_eq!(hashes[4].position, 4);
/// ```
pub fn ngram_hashes(text: &str, ngram_len: usize) -> Vec<NgramHash> {
    assert!(ngram_len > 0, "ngram_len must be positive");
    // Stream the characters through a ring buffer of the current n-gram
    // instead of materialising a Vec<char> of the whole text — corpora in
    // the megabyte range are fingerprinted in one call.
    let mut out = Vec::with_capacity(text.len().saturating_sub(ngram_len - 1));
    let mut rolling = RollingHash::new(ngram_len);
    let mut window: std::collections::VecDeque<char> =
        std::collections::VecDeque::with_capacity(ngram_len);
    let mut position = 0usize;
    for c in text.chars() {
        if window.len() < ngram_len {
            window.push_back(c);
            rolling.push(c);
            if window.len() == ngram_len {
                out.push(NgramHash {
                    hash: rolling.value(),
                    position: 0,
                });
            }
        } else {
            let outgoing = window.pop_front().expect("window is full");
            window.push_back(c);
            rolling.roll(outgoing, c);
            position += 1;
            out.push(NgramHash {
                hash: rolling.value(),
                position,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_ngram;

    #[test]
    fn count_is_len_minus_n_plus_one() {
        assert_eq!(ngram_hashes("abcdef", 3).len(), 4);
        assert_eq!(ngram_hashes("abcdef", 6).len(), 1);
        assert_eq!(ngram_hashes("abcdef", 7).len(), 0);
        assert_eq!(ngram_hashes("", 3).len(), 0);
    }

    #[test]
    fn positions_are_sequential() {
        let hashes = ngram_hashes("abcdefgh", 3);
        for (i, h) in hashes.iter().enumerate() {
            assert_eq!(h.position, i);
        }
    }

    #[test]
    fn hashes_match_reference_implementation() {
        let text = "imprecisedataflowtracking";
        let chars: Vec<char> = text.chars().collect();
        for (i, h) in ngram_hashes(text, 7).iter().enumerate() {
            assert_eq!(h.hash, hash_ngram(&chars[i..i + 7]));
        }
    }

    #[test]
    fn repeated_ngrams_share_hashes() {
        // "abcabc" -> "abc" appears at positions 0 and 3.
        let hashes = ngram_hashes("abcabc", 3);
        assert_eq!(hashes[0].hash, hashes[3].hash);
    }
}
