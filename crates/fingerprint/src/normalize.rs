//! Text normalisation (step S1 of the fingerprinting pipeline).
//!
//! Normalisation removes punctuation, whitespace and character case so that
//! cosmetic edits do not perturb fingerprints: `"Hello World!"` normalises
//! to `"helloworld"`. A mapping from every normalised character back to its
//! byte range in the original text is kept, so that a fingerprint hash can
//! be attributed to the exact source passage (the paper relies on this to
//! highlight the offending paragraph text in the browser).

/// The result of normalising a text segment.
///
/// Holds the normalised string and, for each normalised character, the byte
/// offset of the original character it was derived from.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::normalize::normalize;
///
/// let n = normalize("Hello World!");
/// assert_eq!(n.text(), "helloworld");
/// // The 'w' of "world" sits at byte 6 of the original.
/// assert_eq!(n.original_offset(5), Some(6));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizedText {
    text: String,
    /// Byte offset in the original text of each normalised character.
    /// Stored narrow (`u32`): segments are paragraph- to document-sized,
    /// far below 4 GiB (asserted in [`normalize_into`]), and halving the
    /// offset map's memory traffic measurably speeds the bulk pipeline.
    offsets: Vec<u32>,
    /// Byte length in the original text of each normalised character
    /// (1–4; UTF-8).
    char_lens: Vec<u8>,
}

impl NormalizedText {
    /// Creates an empty `NormalizedText`, e.g. as a reusable buffer for
    /// [`normalize_into`].
    pub fn empty() -> Self {
        Self::default()
    }

    /// The normalised text: lowercase alphanumeric characters only.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of normalised characters.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the normalised text is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Byte offset in the original text of the `index`-th normalised
    /// character, or `None` if out of range.
    pub fn original_offset(&self, index: usize) -> Option<usize> {
        self.offsets.get(index).map(|&o| o as usize)
    }

    /// Byte range in the *original* text spanned by the n-gram that starts
    /// at normalised character `start` and covers `ngram_len` normalised
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if the n-gram does not fit in the normalised text.
    pub fn span_of_ngram(&self, start: usize, ngram_len: usize) -> std::ops::Range<usize> {
        assert!(ngram_len > 0, "ngram_len must be positive");
        let last = start + ngram_len - 1;
        assert!(
            last < self.offsets.len(),
            "n-gram [{start}, {last}] out of range for {} normalised chars",
            self.offsets.len()
        );
        self.offsets[start] as usize..self.offsets[last] as usize + self.char_lens[last] as usize
    }
}

/// Normalises `text` by dropping every character that is not alphanumeric
/// and lower-casing the rest.
///
/// Unicode alphanumerics are preserved (lower-cased via
/// [`char::to_lowercase`]); everything else — punctuation, whitespace,
/// symbols, control characters — is removed.
pub fn normalize(text: &str) -> NormalizedText {
    let mut out = NormalizedText {
        text: String::with_capacity(text.len()),
        offsets: Vec::with_capacity(text.len()),
        char_lens: Vec::with_capacity(text.len()),
    };
    normalize_into(text, &mut out);
    out
}

/// Normalises `text` into `out`, reusing its buffers.
///
/// Behaves exactly like [`normalize`] but clears and refills the buffers of
/// an existing [`NormalizedText`] instead of allocating fresh ones — the
/// keystroke hot path calls this once per check with a scratch value.
///
/// ASCII inputs (the common case for keystroke-sized paragraphs) take a
/// byte-wise fast path that skips the `char_indices` bookkeeping and the
/// per-character `to_lowercase` iterator: for an ASCII alphanumeric byte
/// `b`, `to_lowercase` yields exactly `b.to_ascii_lowercase()` and the
/// character is one byte long, so the two paths are equivalent.
pub fn normalize_into(text: &str, out: &mut NormalizedText) {
    assert!(
        text.len() <= u32::MAX as usize,
        "text exceeds the 4 GiB segment limit of the narrow offset map"
    );
    out.text.clear();
    out.offsets.clear();
    out.char_lens.clear();
    if text.is_ascii() {
        let bytes = text.as_bytes();
        // The SIMD kernel (when available) classifies, lowercases and
        // compresses a prefix of the input 8 bytes per step; the scalar
        // loop finishes the remainder (or everything, on scalar hosts).
        // One table lookup classifies *and* lowercases each byte (0 marks
        // "dropped"), and `char_lens` — all ones on this path — is filled
        // by a single resize instead of a push per character.
        const LOWER_ALNUM: [u8; 256] = {
            let mut table = [0u8; 256];
            let mut b = 0usize;
            while b < 256 {
                let c = b as u8;
                if c.is_ascii_alphanumeric() {
                    table[b] = c.to_ascii_lowercase();
                }
                b += 1;
            }
            table
        };
        out.text.reserve(bytes.len());
        out.offsets.reserve(bytes.len());
        let done = crate::kernel::normalize_ascii_prefix(bytes, &mut out.text, &mut out.offsets);
        for (j, &b) in bytes[done..].iter().enumerate() {
            let lower = LOWER_ALNUM[b as usize];
            if lower != 0 {
                out.text.push(lower as char);
                out.offsets.push((done + j) as u32);
            }
        }
        out.char_lens.resize(out.offsets.len(), 1);
        return;
    }
    for (byte_offset, ch) in text.char_indices() {
        if ch.is_alphanumeric() {
            // A one-to-many lowercase expansion (e.g. 'İ' → 'i' + U+0307)
            // can emit non-alphanumeric code points such as combining
            // marks. Keeping those would make normalisation
            // non-idempotent — a second pass would strip them — so only
            // the alphanumeric part of the expansion is retained.
            for lower in ch.to_lowercase().filter(|c| c.is_alphanumeric()) {
                out.text.push(lower);
                out.offsets.push(byte_offset as u32);
                out.char_lens.push(ch.len_utf8() as u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        assert_eq!(normalize("Hello World!").text(), "helloworld");
    }

    #[test]
    fn strips_all_punctuation_and_whitespace() {
        let n = normalize("  a-b_c d,e.f;g:h!i?j\t(k)[l]{m}\n");
        assert_eq!(n.text(), "abcdefghijklm");
    }

    #[test]
    fn lowercases() {
        assert_eq!(normalize("AbCdEF").text(), "abcdef");
    }

    #[test]
    fn digits_are_kept() {
        assert_eq!(normalize("MySQL 5.6!").text(), "mysql56");
    }

    #[test]
    fn empty_and_punctuation_only_inputs() {
        assert!(normalize("").is_empty());
        assert!(normalize("!!! ... ???").is_empty());
    }

    #[test]
    fn unicode_alphanumerics_preserved() {
        let n = normalize("Zürich Straße");
        assert_eq!(n.text(), "zürichstraße");
    }

    #[test]
    fn offsets_map_back_to_original_bytes() {
        let original = "Ab, cd!";
        let n = normalize(original);
        assert_eq!(n.text(), "abcd");
        assert_eq!(n.original_offset(0), Some(0)); // 'A'
        assert_eq!(n.original_offset(1), Some(1)); // 'b'
        assert_eq!(n.original_offset(2), Some(4)); // 'c'
        assert_eq!(n.original_offset(3), Some(5)); // 'd'
        assert_eq!(n.original_offset(4), None);
    }

    #[test]
    fn span_of_ngram_covers_original_range() {
        let original = "Hello, World!";
        let n = normalize(original);
        // "hellow" spans from 'H' (byte 0) through 'W' (byte 7, len 1).
        assert_eq!(n.span_of_ngram(0, 6), 0..8);
        // "oworld" spans from byte 4 ('o') through byte 11 ('d').
        assert_eq!(n.span_of_ngram(4, 6), 4..12);
        assert_eq!(&original[n.span_of_ngram(4, 6)], "o, World");
    }

    #[test]
    fn span_handles_multibyte_characters() {
        let original = "é é é é"; // 2-byte chars separated by spaces
        let n = normalize(original);
        assert_eq!(n.text(), "éééé");
        let span = n.span_of_ngram(0, 4);
        assert_eq!(span, 0..original.len());
        // Slicing at these boundaries must not panic.
        let _ = &original[span];
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn span_of_ngram_out_of_range_panics() {
        normalize("abc").span_of_ngram(1, 5);
    }

    #[test]
    fn ascii_fast_path_matches_general_path() {
        // Reference: the general per-char path, written out longhand.
        let text = "Mixed CASE 123, with-punct! and\ttabs";
        let mut expect = String::new();
        let mut expect_offsets = Vec::new();
        for (byte_offset, ch) in text.char_indices() {
            if ch.is_alphanumeric() {
                for lower in ch.to_lowercase().filter(|c| c.is_alphanumeric()) {
                    expect.push(lower);
                    expect_offsets.push(byte_offset);
                }
            }
        }
        let n = normalize(text);
        assert_eq!(n.text(), expect);
        for (i, &off) in expect_offsets.iter().enumerate() {
            assert_eq!(n.original_offset(i), Some(off));
        }
        assert_eq!(n.len(), expect_offsets.len());
    }

    #[test]
    fn normalize_into_reuses_buffers() {
        let mut buf = NormalizedText::empty();
        normalize_into("First, Text! With LOTS of chars 0123456789", &mut buf);
        normalize_into("Ab, cd!", &mut buf);
        assert_eq!(buf.text(), "abcd");
        assert_eq!(buf.original_offset(2), Some(4));
        assert_eq!(buf.original_offset(4), None);
        assert_eq!(buf, normalize("Ab, cd!"));
    }

    #[test]
    fn normalisation_is_idempotent() {
        let once = normalize("Some Mixed, Case Input 123!");
        let twice = normalize(once.text());
        assert_eq!(once.text(), twice.text());
    }

    #[test]
    fn expanding_lowercase_stays_idempotent() {
        // 'İ' lowercases to "i\u{307}"; the combining dot must be dropped
        // or a second normalisation pass would produce different output.
        let once = normalize("İstanbul");
        assert_eq!(once.text(), "istanbul");
        assert_eq!(normalize(once.text()).text(), once.text());
        // Every emitted char must itself survive normalisation.
        assert!(once.text().chars().all(|c| c.is_alphanumeric()));
    }
}
