//! Reusable buffers for allocation-free full-pipeline fingerprinting.

use crate::kernel::WindowMinScratch;
use crate::ngram::NgramHash;
use crate::normalize::NormalizedText;

/// Reusable normalise/hash/winnow buffers for
/// [`Fingerprinter::fingerprint_with`](crate::Fingerprinter::fingerprint_with).
///
/// A full fingerprint computation allocates a normalised string, an offset
/// map, the n-gram hash sequence and the winnowing selection buffers.
/// Holding one `FingerprintScratch` per checker thread (or per
/// [`IncrementalFingerprinter`](crate::IncrementalFingerprinter) fallback
/// path) lets repeated checks reuse all of them: after the first few calls
/// the buffers have grown to steady-state capacity and the only remaining
/// allocation per check is the returned [`Fingerprint`](crate::Fingerprint)
/// itself. The buffers feed the runtime-dispatched SIMD kernel
/// ([`kernel`](crate::kernel)): `chars` holds the decoded code points of
/// non-ASCII text, `hash_values` the bulk per-position hashes, and
/// `window_min` the packed-key buffers of the vectorized sliding minimum.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::{Fingerprinter, FingerprintScratch};
///
/// let fp = Fingerprinter::default();
/// let mut scratch = FingerprintScratch::new();
/// let a = fp.fingerprint_with("a paragraph of sensitive interview notes", &mut scratch);
/// let b = fp.fingerprint("a paragraph of sensitive interview notes");
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FingerprintScratch {
    pub(crate) normalized: NormalizedText,
    pub(crate) chars: Vec<u32>,
    pub(crate) hash_values: Vec<u32>,
    pub(crate) window_min: WindowMinScratch,
    pub(crate) selected: Vec<NgramHash>,
}

impl FingerprintScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}
