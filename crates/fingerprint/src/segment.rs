//! Splitting plain text into paragraphs.
//!
//! BrowserFlow tracks text at paragraph and document granularity (§4.1).
//! Services with a DOM expose paragraphs structurally; for plain text
//! (clipboard content, file uploads, `bfctl` inputs) this module provides
//! the equivalent segmentation: blank-line-separated blocks, with byte
//! ranges into the original text for attribution.

use std::ops::Range;

/// One paragraph of a plain text, with its byte range in the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextSegment<'a> {
    /// Byte range of the paragraph in the input text.
    pub span: Range<usize>,
    /// The paragraph text (trimmed of surrounding whitespace).
    pub text: &'a str,
}

/// Splits `text` into paragraphs at blank lines (one or more lines that
/// are empty after trimming). Single newlines within a paragraph are kept.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::segment::split_paragraphs;
///
/// let text = "First paragraph,\nstill first.\n\nSecond paragraph.\n\n\nThird.";
/// let paragraphs = split_paragraphs(text);
/// assert_eq!(paragraphs.len(), 3);
/// assert_eq!(paragraphs[0].text, "First paragraph,\nstill first.");
/// assert_eq!(&text[paragraphs[1].span.clone()], "Second paragraph.");
/// ```
pub fn split_paragraphs(text: &str) -> Vec<TextSegment<'_>> {
    let mut segments = Vec::new();
    let mut start: Option<usize> = None;
    let mut end = 0usize;
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        let line_start = offset;
        offset += line.len();
        let content = line.trim_end_matches(['\n', '\r']);
        if content.trim().is_empty() {
            if let Some(s) = start.take() {
                segments.push((s, end));
            }
        } else {
            if start.is_none() {
                // Skip leading whitespace within the line.
                let lead = content.len() - content.trim_start().len();
                start = Some(line_start + lead);
            }
            end = line_start + content.trim_end().len();
        }
    }
    if let Some(s) = start {
        segments.push((s, end));
    }
    segments
        .into_iter()
        .filter(|(s, e)| e > s)
        .map(|(s, e)| TextSegment {
            span: s..e,
            text: &text[s..e],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_blank_inputs() {
        assert!(split_paragraphs("").is_empty());
        assert!(split_paragraphs("\n\n\n").is_empty());
        assert!(split_paragraphs("   \n \t \n").is_empty());
    }

    #[test]
    fn single_paragraph_without_trailing_newline() {
        let segments = split_paragraphs("just one block");
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].text, "just one block");
        assert_eq!(segments[0].span, 0..14);
    }

    #[test]
    fn multiple_blank_lines_collapse() {
        let segments = split_paragraphs("a\n\n\n\nb\n\nc\n");
        let texts: Vec<&str> = segments.iter().map(|s| s.text).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
    }

    #[test]
    fn internal_newlines_are_preserved() {
        let segments = split_paragraphs("line one\nline two\n\nnext");
        assert_eq!(segments[0].text, "line one\nline two");
    }

    #[test]
    fn spans_index_into_the_original() {
        let text = "  padded start\n\n\tindented second  \n";
        let segments = split_paragraphs(text);
        assert_eq!(segments.len(), 2);
        for segment in &segments {
            assert_eq!(&text[segment.span.clone()], segment.text);
        }
        assert_eq!(segments[0].text, "padded start");
        assert_eq!(segments[1].text, "indented second");
    }

    #[test]
    fn crlf_line_endings() {
        let segments = split_paragraphs("one\r\n\r\ntwo\r\n");
        let texts: Vec<&str> = segments.iter().map(|s| s.text).collect();
        assert_eq!(texts, vec!["one", "two"]);
    }
}
