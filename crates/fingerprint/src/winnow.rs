//! Winnowing hash selection (steps S3–S4 of the fingerprinting pipeline).
//!
//! Winnowing (Schleimer, Wilkerson, Aiken — SIGMOD 2003) slides a window of
//! `w` consecutive n-gram hashes over the hash sequence and selects the
//! minimum hash of each window. Because the same minimum tends to be
//! selected by many consecutive windows, the output is sparse — expected
//! density `2/(w+1)` — yet the selection is *local*: whether a hash is
//! picked depends only on the `w` hashes around it, so edits far away in
//! the text cannot change it. This yields the guarantee that any shared
//! substring of at least `w + n - 1` characters contributes at least one
//! shared fingerprint hash.
//!
//! We implement *robust* winnowing: ties are broken by selecting the
//! rightmost minimal hash, which minimises fingerprint churn on
//! self-repetitive text.

use crate::kernel;
use crate::ngram::NgramHash;

pub use crate::kernel::WindowMinScratch;

/// Selects the winnowed subset of `hashes` using windows of `window` hashes.
///
/// Returns the selected hashes with their positions, in position order and
/// with no duplicate positions. If the sequence is shorter than the window,
/// the single overall minimum is returned (so that no non-empty hash
/// sequence winnows to nothing).
///
/// This is a documentation/example convenience: it allocates two fresh
/// vectors on every call. Production paths go through [`winnow_into`]
/// (the scalar reference) or [`winnow_hashes_into`] (kernel-dispatched)
/// with reused scratch buffers.
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::ngram::NgramHash;
/// use browserflow_fingerprint::winnow::winnow;
///
/// let hashes: Vec<NgramHash> = [52u32, 40, 53, 13, 22]
///     .iter()
///     .enumerate()
///     .map(|(position, &hash)| NgramHash { hash, position })
///     .collect();
/// // Windows {52,40,53}, {40,53,13}, {53,13,22}; minima 40 and 13.
/// let picked = winnow(&hashes, 3);
/// let values: Vec<u32> = picked.iter().map(|p| p.hash).collect();
/// assert_eq!(values, vec![40, 13]);
/// ```
pub fn winnow(hashes: &[NgramHash], window: usize) -> Vec<NgramHash> {
    let mut scratch = Vec::new();
    let mut selected = Vec::new();
    winnow_into(hashes, window, &mut scratch, &mut selected);
    selected
}

/// Selects the winnowed subset of `hashes` into `selected`, reusing both
/// the output buffer and a caller-provided index scratch.
///
/// Behaves exactly like [`winnow`] but performs no allocation once the
/// buffers have grown: `scratch` backs the monotone deque (the front is a
/// cursor into the vector, so popping from the front is an index bump) and
/// `selected` is cleared and refilled. The keystroke hot path calls this
/// once per check with buffers held in a
/// [`FingerprintScratch`](crate::FingerprintScratch).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn winnow_into(
    hashes: &[NgramHash],
    window: usize,
    scratch: &mut Vec<usize>,
    selected: &mut Vec<NgramHash>,
) {
    assert!(window > 0, "window must be positive");
    selected.clear();
    if hashes.is_empty() {
        return;
    }
    if hashes.len() <= window {
        // Degenerate case: a single window covering everything. Pick the
        // rightmost minimum so short texts still fingerprint.
        let mut best = hashes[0];
        for &h in &hashes[1..] {
            if h.hash <= best.hash {
                best = h;
            }
        }
        selected.push(best);
        return;
    }

    // Sliding-window minimum via a monotone deque of indices. The deque
    // holds candidate indices with strictly increasing hash values front to
    // back; for robust winnowing ties evict earlier candidates (<=), so the
    // rightmost minimal element wins. The deque lives in `scratch` with
    // `head` as its front cursor: indices before `head` are dead.
    scratch.clear();
    let mut head = 0usize;
    for i in 0..hashes.len() {
        while scratch.len() > head {
            let back = scratch[scratch.len() - 1];
            if hashes[back].hash >= hashes[i].hash {
                scratch.pop();
            } else {
                break;
            }
        }
        scratch.push(i);
        // Window covering positions [i + 1 - window, i].
        if i + 1 >= window {
            let window_start = i + 1 - window;
            while scratch[head] < window_start {
                head += 1;
            }
            let min_index = scratch[head];
            if selected.last().map(|s| s.position) != Some(hashes[min_index].position) {
                selected.push(hashes[min_index]);
            }
        }
    }
}

/// Selects the winnowed subset of raw hash values into `selected`, where
/// the hash at index `i` belongs to the n-gram at position `base + i`.
///
/// Semantics are identical to [`winnow_into`] over the equivalent
/// [`NgramHash`] sequence (robust rightmost tie-break, consecutive
/// position dedup, degenerate single-window minimum), but the input is a
/// plain `&[u32]` — the layout the bulk hashing kernel produces — and the
/// implementation dispatches to the vectorized sliding-window minimum on
/// SIMD-capable hosts. The `base` offset lets the incremental
/// fingerprinter re-winnow a dirty sub-range of its hash sequence without
/// materialising position-tagged copies.
///
/// `selected` is cleared and refilled; `scratch` buffers are reused, so
/// steady-state calls perform no allocation.
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::winnow::{winnow_hashes_into, WindowMinScratch};
///
/// let mut scratch = WindowMinScratch::default();
/// let mut selected = Vec::new();
/// winnow_hashes_into(&[52, 40, 53, 13, 22], 0, 3, &mut scratch, &mut selected);
/// let values: Vec<u32> = selected.iter().map(|p| p.hash).collect();
/// assert_eq!(values, vec![40, 13]);
/// ```
pub fn winnow_hashes_into(
    hashes: &[u32],
    base: usize,
    window: usize,
    scratch: &mut WindowMinScratch,
    selected: &mut Vec<NgramHash>,
) {
    kernel::window_min_emit(hashes, base, window, scratch, selected);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(values: &[u32]) -> Vec<NgramHash> {
        values
            .iter()
            .enumerate()
            .map(|(position, &hash)| NgramHash { hash, position })
            .collect()
    }

    #[test]
    fn paper_worked_example() {
        // §4.1: hashes {52, 40, 53, 13, 22}, window 3 -> fingerprint {40, 13}.
        let picked = winnow(&mk(&[52, 40, 53, 13, 22]), 3);
        assert_eq!(
            picked
                .iter()
                .map(|p| (p.hash, p.position))
                .collect::<Vec<_>>(),
            vec![(40, 1), (13, 3)]
        );
    }

    #[test]
    fn empty_input() {
        assert!(winnow(&[], 3).is_empty());
    }

    #[test]
    fn input_shorter_than_window_selects_global_min() {
        let picked = winnow(&mk(&[9, 2, 7]), 10);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].hash, 2);
    }

    #[test]
    fn window_of_one_selects_everything() {
        let values = [5u32, 3, 8, 1];
        let picked = winnow(&mk(&values), 1);
        assert_eq!(picked.len(), values.len());
    }

    #[test]
    fn ties_select_rightmost() {
        // Window 3 over [7, 7, 7, 7]: robust winnowing picks the rightmost
        // minimum of each window, deduplicating consecutive repeats.
        let picked = winnow(&mk(&[7, 7, 7, 7]), 3);
        let positions: Vec<usize> = picked.iter().map(|p| p.position).collect();
        assert_eq!(positions, vec![2, 3]);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let values: Vec<u32> = (0..300).map(|i| (i * 2654435761u64 % 251) as u32).collect();
        let hashes = mk(&values);
        let mut scratch = Vec::new();
        let mut selected = Vec::new();
        for w in [1usize, 2, 5, 30, 299, 300, 400] {
            winnow_into(&hashes, w, &mut scratch, &mut selected);
            assert_eq!(selected, winnow(&hashes, w), "window {w}");
        }
        winnow_into(&[], 3, &mut scratch, &mut selected);
        assert!(selected.is_empty());
    }

    #[test]
    fn hashes_variant_matches_ngram_variant() {
        let values: Vec<u32> = (0..700).map(|i| (i * 2654435761u64 % 97) as u32).collect();
        let tagged: Vec<NgramHash> = values
            .iter()
            .enumerate()
            .map(|(i, &hash)| NgramHash {
                hash,
                position: 11 + i,
            })
            .collect();
        let mut deque = Vec::new();
        let mut reference = Vec::new();
        let mut scratch = WindowMinScratch::default();
        let mut selected = Vec::new();
        for w in [1usize, 2, 5, 30, 64, 699, 700, 900] {
            winnow_into(&tagged, w, &mut deque, &mut reference);
            winnow_hashes_into(&values, 11, w, &mut scratch, &mut selected);
            assert_eq!(selected, reference, "window {w}");
        }
    }

    #[test]
    fn no_duplicate_positions_and_sorted() {
        let values: Vec<u32> = (0..200).map(|i| (i * 2654435761u64 % 97) as u32).collect();
        let picked = winnow(&mk(&values), 5);
        for pair in picked.windows(2) {
            assert!(pair[0].position < pair[1].position);
        }
    }

    #[test]
    fn every_window_is_covered() {
        // Validity: every window of w consecutive hashes must contain at
        // least one selected position.
        let values: Vec<u32> = (0..500)
            .map(|i| ((i as u64 * 1103515245 + 12345) % 65536) as u32)
            .collect();
        let w = 8;
        let picked = winnow(&mk(&values), w);
        let positions: std::collections::HashSet<usize> =
            picked.iter().map(|p| p.position).collect();
        for start in 0..=values.len() - w {
            assert!(
                (start..start + w).any(|p| positions.contains(&p)),
                "window starting at {start} has no selected hash"
            );
        }
    }

    #[test]
    fn density_close_to_two_over_w_plus_one() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let values: Vec<u32> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u32
            })
            .collect();
        let w = 9;
        let picked = winnow(&mk(&values), w);
        let density = picked.len() as f64 / values.len() as f64;
        let expected = 2.0 / (w as f64 + 1.0);
        assert!(
            (density - expected).abs() < expected * 0.2,
            "density {density} too far from expected {expected}"
        );
    }
}
