//! Property-based equivalence tests for the incremental fingerprinter:
//! after any sequence of edits, [`IncrementalFingerprinter`] must hold
//! byte-identical state to running the full pipeline
//! ([`Fingerprinter::fingerprint`]) on the edited text, and the reported
//! `{added, removed}` deltas must replay to the full distinct hash set.

use browserflow_fingerprint::{
    FingerprintConfig, Fingerprinter, IncrementalFingerprinter, TextEdit,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Configurations under test: the paper's defaults, small values that put
/// many edits inside a single winnowing window, and degenerate shapes
/// (window of 1, n-gram of 1, window far larger than the text) that force
/// the short-sequence winnowing path.
const CONFIGS: [(usize, usize); 7] = [(15, 30), (6, 3), (4, 2), (1, 1), (1, 5), (3, 50), (2, 1)];

fn config(n: usize, w: usize) -> FingerprintConfig {
    FingerprintConfig::builder()
        .ngram_len(n)
        .window(w)
        .build()
        .unwrap()
}

/// One randomly generated edit: two cut points (reduced modulo the current
/// char-boundary count, then ordered) and a replacement string.
type RawEdit = (usize, usize, String);

/// Resolves a raw edit against the current text, always on char
/// boundaries.
fn resolve(text: &str, raw: &RawEdit) -> TextEdit {
    let mut bounds: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
    bounds.push(text.len());
    let mut a = raw.0 % bounds.len();
    let mut b = raw.1 % bounds.len();
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    TextEdit::replace(bounds[a]..bounds[b], raw.2.clone())
}

/// Replacement text mixing ASCII prose, digits, punctuation, multibyte
/// letters and the case-expanding 'İ'.
fn replacement() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9 ,.!?]{0,12}",
        "[äöüßéàΑ-Ωа-я]{0,6}",
        "[a-zİı]{0,4}",
        Just(String::new()),
    ]
}

fn edit_script() -> impl Strategy<Value = Vec<RawEdit>> {
    proptest::collection::vec((0usize..10_000, 0usize..10_000, replacement()), 1..25)
}

proptest! {
    /// The tentpole acceptance property: over arbitrary edit scripts the
    /// incremental fingerprint is byte-identical (hashes, positions AND
    /// spans) to a full recomputation, for every configuration including
    /// degenerate ones.
    #[test]
    fn incremental_matches_full(
        seed in "[a-zA-Z ,.]{0,80}",
        script in edit_script(),
        which in 0usize..CONFIGS.len(),
    ) {
        let (n, w) = CONFIGS[which];
        let fp = Fingerprinter::new(config(n, w));
        let mut inc = IncrementalFingerprinter::new(config(n, w));
        let mut model = String::new();
        inc.apply_edit(&TextEdit::insert(0, &seed));
        model.push_str(&seed);
        prop_assert_eq!(inc.fingerprint(), fp.fingerprint(&model));
        for raw in &script {
            let edit = resolve(&model, raw);
            model.replace_range(edit.range.clone(), &edit.replacement);
            inc.apply_edit(&edit);
            prop_assert_eq!(inc.text(), model.as_str());
            prop_assert_eq!(
                inc.fingerprint(),
                fp.fingerprint(&model),
                "divergence after edit {:?} (n={}, w={})", edit, n, w
            );
        }
    }

    /// Replaying the per-edit deltas onto a plain set reproduces the full
    /// pipeline's distinct hash set at every step — the property the
    /// incremental Algorithm 1 wiring relies on.
    #[test]
    fn deltas_replay_to_full_hash_set(
        seed in "[a-z ]{0,60}",
        script in edit_script(),
        which in 0usize..CONFIGS.len(),
    ) {
        let (n, w) = CONFIGS[which];
        let fp = Fingerprinter::new(config(n, w));
        let mut inc = IncrementalFingerprinter::new(config(n, w));
        let mut model = String::new();
        let mut live: HashSet<u32> = HashSet::new();
        let mut steps: Vec<TextEdit> = vec![TextEdit::insert(0, &seed)];
        for raw in &script {
            // Resolve against the text as it will be at that step.
            let mut preview = model.clone();
            for e in &steps {
                preview.replace_range(e.range.clone(), &e.replacement);
            }
            steps.push(resolve(&preview, raw));
        }
        for edit in &steps {
            let delta = inc.apply_edit(edit);
            model.replace_range(edit.range.clone(), &edit.replacement);
            for &v in &delta.removed {
                prop_assert!(live.remove(&v), "removed value {} was not live", v);
            }
            for &v in &delta.added {
                prop_assert!(live.insert(v), "added value {} already live", v);
            }
            let expected: HashSet<u32> = fp.fingerprint(&model).hash_set();
            prop_assert_eq!(&live, &expected);
        }
    }

    /// Edits pinned to the paragraph boundaries (prepend, append, truncate
    /// head and tail) — the positions where the dirty-window index
    /// arithmetic clamps.
    #[test]
    fn boundary_edits_match_full(
        seed in "[a-z ,.]{10,120}",
        chunks in proptest::collection::vec("[a-zA-Z0-9äö ]{0,10}", 1..16),
        which in 0usize..CONFIGS.len(),
    ) {
        let (n, w) = CONFIGS[which];
        let fp = Fingerprinter::new(config(n, w));
        let mut inc = IncrementalFingerprinter::with_text(config(n, w), &seed);
        let mut model = seed.clone();
        for (i, chunk) in chunks.iter().enumerate() {
            let edit = match i % 4 {
                0 => TextEdit::insert(0, chunk.clone()),
                1 => TextEdit::insert(model.len(), chunk.clone()),
                2 => {
                    // Truncate up to 8 chars off the head.
                    let cut = model
                        .char_indices()
                        .map(|(o, _)| o)
                        .chain([model.len()])
                        .take(9)
                        .last()
                        .unwrap();
                    TextEdit::replace(0..cut, chunk.clone())
                }
                _ => {
                    // Truncate up to 8 chars off the tail.
                    let tail: Vec<usize> = model
                        .char_indices()
                        .map(|(o, _)| o)
                        .rev()
                        .take(8)
                        .collect();
                    let cut = tail.last().copied().unwrap_or(model.len());
                    TextEdit::replace(cut..model.len(), chunk.clone())
                }
            };
            model.replace_range(edit.range.clone(), &edit.replacement);
            inc.apply_edit(&edit);
            prop_assert_eq!(
                inc.fingerprint(),
                fp.fingerprint(&model),
                "divergence at boundary edit {} (n={}, w={})", i, n, w
            );
        }
    }

    /// Single-character typing (the literal keystroke workload) stays
    /// identical to the full pipeline at every keystroke, including while
    /// the text is still shorter than one winnowing window.
    #[test]
    fn typing_character_by_character_matches_full(
        text in "[a-zA-Z0-9 ,.!äü]{0,100}",
        which in 0usize..CONFIGS.len(),
    ) {
        let (n, w) = CONFIGS[which];
        let fp = Fingerprinter::new(config(n, w));
        let mut inc = IncrementalFingerprinter::new(config(n, w));
        let mut model = String::new();
        for ch in text.chars() {
            let at = model.len();
            inc.apply_edit(&TextEdit::insert(at, ch.to_string()));
            model.push(ch);
            prop_assert_eq!(inc.fingerprint(), fp.fingerprint(&model));
        }
    }
}

/// The `FingerprintScratch` full path is exactly equivalent to the
/// allocating full path (exercised here against the incremental state as
/// well, so all three implementations agree).
#[test]
fn scratch_full_path_agrees_with_incremental() {
    use browserflow_fingerprint::FingerprintScratch;
    let fp = Fingerprinter::default();
    let mut scratch = FingerprintScratch::new();
    let mut inc = IncrementalFingerprinter::new(*fp.config());
    let mut text = String::new();
    for piece in [
        "Quarterly earnings will be announced on Thursday; ",
        "the figures are confidential until then. ",
        "Please do not forward this paragraph to anyone outside the team.",
    ] {
        inc.apply_edit(&TextEdit::insert(text.len(), piece));
        text.push_str(piece);
        let full = fp.fingerprint(&text);
        let with_scratch = fp.fingerprint_with(&text, &mut scratch);
        assert_eq!(full, with_scratch);
        assert_eq!(full, inc.fingerprint());
    }
}
