//! SIMD kernel ≡ scalar oracle equivalence properties.
//!
//! The runtime-dispatched kernels ([`browserflow_fingerprint::kernel`])
//! must produce byte-identical fingerprints — hash values *and* positions
//! — to the scalar reference pipeline (`ngram_hashes` + `winnow_into`)
//! over arbitrary Unicode text and all `n`/`w` configurations. CI runs
//! this suite twice: once with `BF_FORCE_SCALAR=1` (scalar vs scalar, a
//! self-check) and once natively (SIMD vs scalar, the real property).
//!
//! Tests that toggle [`force_scalar`] serialize on a process-local mutex:
//! the override is global, and although every kernel must produce the
//! same answer (so a concurrent toggle cannot change results), assertions
//! about *which* kernel is active would race.

use browserflow_fingerprint::ngram::{ngram_hashes, NgramHash};
use browserflow_fingerprint::winnow::{winnow_hashes_into, winnow_into, WindowMinScratch};
use browserflow_fingerprint::{
    active_kernel, force_scalar, kernel, normalize, FingerprintConfig, Fingerprinter,
};
use proptest::prelude::*;
use std::sync::Mutex;

static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Scalar reference: the original char-iterator rolling hash plus the
/// monotone-deque winnow, producing `(hash, position)` pairs.
fn scalar_reference(text: &str, n: usize, w: usize) -> Vec<(u32, usize)> {
    let normalized = normalize::normalize(text);
    let hashes = ngram_hashes(normalized.text(), n);
    let mut scratch = Vec::new();
    let mut selected = Vec::new();
    winnow_into(&hashes, w, &mut scratch, &mut selected);
    selected.iter().map(|s| (s.hash, s.position)).collect()
}

/// Kernel path: the dispatched bulk pipeline, via the public
/// `Fingerprinter` entry point.
fn kernel_pipeline(text: &str, n: usize, w: usize) -> Vec<(u32, usize)> {
    let fp = Fingerprinter::new(
        FingerprintConfig::builder()
            .ngram_len(n)
            .window(w)
            .build()
            .unwrap(),
    );
    fp.fingerprint(text)
        .iter()
        .map(|e| (e.hash(), e.position()))
        .collect()
}

proptest! {
    /// The tentpole property: identical fingerprints (hashes and
    /// positions) between the active kernel and the scalar oracle over
    /// arbitrary Unicode input and arbitrary configs.
    #[test]
    fn kernel_matches_scalar_oracle(text in ".{0,400}", n in 1usize..40, w in 1usize..40) {
        prop_assert_eq!(kernel_pipeline(&text, n, w), scalar_reference(&text, n, w));
    }

    /// Same property on long ASCII prose — exercises the `u8` fast lane
    /// with many full vector blocks.
    #[test]
    fn kernel_matches_oracle_on_long_ascii(
        words in proptest::collection::vec("[a-zA-Z0-9]{1,12}", 0..200),
        n in 1usize..32,
        w in 1usize..40,
    ) {
        let text = words.join(" ");
        prop_assert_eq!(kernel_pipeline(&text, n, w), scalar_reference(&text, n, w));
    }

    /// Bulk hashing alone matches the char-iterator rolling hash.
    #[test]
    fn bulk_hashes_match_rolling_reference(text in ".{0,300}", n in 1usize..32) {
        let normalized = normalize::normalize(&text);
        let reference: Vec<u32> = ngram_hashes(normalized.text(), n)
            .into_iter()
            .map(|h| h.hash)
            .collect();
        let mut chars = Vec::new();
        let mut out = Vec::new();
        kernel::ngram_hashes_bulk(normalized.text(), n, &mut chars, &mut out);
        prop_assert_eq!(out, reference);
    }

    /// The dispatched window minimum matches the deque oracle on
    /// arbitrary hash values, including heavy-tie regimes.
    #[test]
    fn window_min_matches_deque(
        values in proptest::collection::vec(any::<u32>(), 0..500),
        modulus in prop_oneof![Just(2u32), Just(5), Just(1000), Just(u32::MAX)],
        w in 1usize..50,
        base in 0usize..1000,
    ) {
        let values: Vec<u32> = values.iter().map(|v| v % modulus).collect();
        let tagged: Vec<NgramHash> = values
            .iter()
            .enumerate()
            .map(|(i, &hash)| NgramHash { hash, position: base + i })
            .collect();
        let mut deque = Vec::new();
        let mut reference = Vec::new();
        winnow_into(&tagged, w, &mut deque, &mut reference);
        let mut scratch = WindowMinScratch::default();
        let mut selected = Vec::new();
        winnow_hashes_into(&values, base, w, &mut scratch, &mut selected);
        prop_assert_eq!(selected, reference);
    }
}

/// Mixed ASCII/multibyte text whose *normalized* length straddles the
/// SIMD block edges (8-lane AVX2 steps, 4-lane SSE4.1/NEON steps, the
/// lane-seed prefix and the scalar tail), checked on every available
/// kernel.
#[test]
fn block_boundary_mixed_text_every_kernel() {
    let _guard = FORCE_LOCK.lock().unwrap();
    // One multibyte char every 7 chars so ASCII runs hit lane boundaries
    // at every alignment; 'ß' lowercases to itself, 'Σ' to 'σ'.
    let unit = "abcdefß hijklΣ ";
    for norm_len in [
        0usize, 1, 7, 8, 9, 14, 15, 16, 17, 23, 24, 25, 31, 32, 33, 47, 48, 49, 63, 64, 65, 127,
        128, 129,
    ] {
        let text: String = unit
            .chars()
            .cycle()
            .take(norm_len + norm_len / 6 + 2)
            .collect();
        for (n, w) in [(1usize, 1usize), (3, 2), (15, 30), (16, 8), (31, 4)] {
            let reference = scalar_reference(&text, n, w);
            for forced in [true, false] {
                force_scalar(forced);
                assert_eq!(
                    kernel_pipeline(&text, n, w),
                    reference,
                    "kernel {} diverged at norm_len={norm_len} n={n} w={w}",
                    active_kernel()
                );
            }
        }
    }
    force_scalar(false);
}

/// Degenerate sizes — empty, shorter than `n`, shorter than `w + n − 1`
/// — on every available kernel.
#[test]
fn degenerate_sizes_every_kernel() {
    let _guard = FORCE_LOCK.lock().unwrap();
    let (n, w) = (15usize, 30usize);
    let cases = [
        String::new(),
        "a".repeat(n - 1),     // shorter than n: empty fingerprint
        "b".repeat(n),         // exactly one n-gram
        "c".repeat(w + n - 2), // one short of a full window
        "däéf".repeat(n),      // multibyte, several grams, < w hashes
    ];
    for text in &cases {
        let reference = scalar_reference(text, n, w);
        for forced in [true, false] {
            force_scalar(forced);
            assert_eq!(
                kernel_pipeline(text, n, w),
                reference,
                "kernel {} diverged on degenerate {:?}",
                active_kernel(),
                text.chars().take(8).collect::<String>()
            );
        }
    }
    force_scalar(false);
}

/// The forced-scalar override and the env-independent dispatch report.
#[test]
fn force_scalar_toggle_is_observable() {
    let _guard = FORCE_LOCK.lock().unwrap();
    force_scalar(true);
    assert_eq!(active_kernel(), browserflow_fingerprint::KernelKind::Scalar);
    force_scalar(false);
    // With the override off, dispatch reports whatever the host supports
    // (unless BF_FORCE_SCALAR pinned it at process start).
    if std::env::var("BF_FORCE_SCALAR").is_err() {
        assert_eq!(active_kernel(), browserflow_fingerprint::detected_kernel());
    }
}
