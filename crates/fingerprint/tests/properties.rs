//! Property-based tests of the fingerprinting pipeline invariants.

use browserflow_fingerprint::{normalize, winnow, FingerprintConfig, Fingerprinter};
use proptest::prelude::*;

fn fingerprinter(n: usize, w: usize) -> Fingerprinter {
    Fingerprinter::new(
        FingerprintConfig::builder()
            .ngram_len(n)
            .window(w)
            .build()
            .unwrap(),
    )
}

/// Arbitrary "prose-like" text: words of lowercase letters with occasional
/// punctuation and casing noise.
fn prose() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z]{1,10}[ ,.!?]{0,2}", 0..60).prop_map(|ws| ws.join(" "))
}

proptest! {
    #[test]
    fn normalisation_is_idempotent(text in ".{0,200}") {
        let once = normalize::normalize(&text);
        let twice = normalize::normalize(once.text());
        prop_assert_eq!(once.text(), twice.text());
    }

    #[test]
    fn normalised_output_is_lowercase_alphanumeric(text in ".{0,200}") {
        let n = normalize::normalize(&text);
        for c in n.text().chars() {
            prop_assert!(c.is_alphanumeric());
            // Fixed under lowercasing (some uppercase code points, e.g.
            // U+1D400, have no lowercase mapping and stay as they are).
            prop_assert_eq!(c.to_lowercase().to_string(), c.to_string());
        }
    }

    #[test]
    fn spans_are_valid_char_boundaries(text in ".{0,200}") {
        let fp = fingerprinter(4, 3);
        for entry in fp.fingerprint(&text).iter() {
            let span = entry.span();
            prop_assert!(span.end <= text.len());
            prop_assert!(text.is_char_boundary(span.start));
            prop_assert!(text.is_char_boundary(span.end));
        }
    }

    #[test]
    fn fingerprint_is_deterministic(text in prose()) {
        let fp = fingerprinter(5, 4);
        prop_assert_eq!(fp.fingerprint(&text), fp.fingerprint(&text));
    }

    #[test]
    fn fingerprint_ignores_case_whitespace_punctuation(words in proptest::collection::vec("[a-z]{2,8}", 1..30)) {
        let fp = fingerprinter(5, 4);
        let plain = words.join("");
        let decorated = words
            .iter()
            .map(|w| {
                let mut chars = w.chars();
                let first = chars.next().unwrap().to_uppercase().to_string();
                format!("{first}{}", chars.as_str())
            })
            .collect::<Vec<_>>()
            .join(", ");
        prop_assert_eq!(
            fp.fingerprint(&plain).hash_set(),
            fp.fingerprint(&decorated).hash_set()
        );
    }

    /// The winnowing guarantee: if two texts share a normalised substring of
    /// at least `w + n - 1` characters, their fingerprints intersect.
    #[test]
    fn shared_long_substring_implies_shared_hash(
        prefix_a in "[a-z ]{0,40}",
        prefix_b in "[A-Z,.]{0,20}",
        shared in "[a-z]{30,60}",
        suffix_a in "[a-z ]{0,40}",
        suffix_b in "[0-9 ]{0,20}",
    ) {
        // n = 6, w = 4 -> guarantee threshold 9; `shared` is >= 30 chars of
        // pure normalised content, far beyond the threshold.
        let fp = fingerprinter(6, 4);
        let a = fp.fingerprint(&format!("{prefix_a}{shared}{suffix_a}"));
        let b = fp.fingerprint(&format!("{prefix_b}{shared}{suffix_b}"));
        prop_assert!(a.intersection_size(&b) >= 1);
    }

    /// Winnowing coverage: every window of `w` consecutive n-gram hashes
    /// contains a selected hash.
    #[test]
    fn winnow_covers_every_window(values in proptest::collection::vec(any::<u32>(), 0..300), w in 1usize..12) {
        let hashes: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(position, &hash)| browserflow_fingerprint::ngram::NgramHash { hash, position })
            .collect();
        let picked = winnow::winnow(&hashes, w);
        let positions: std::collections::HashSet<usize> =
            picked.iter().map(|p| p.position).collect();
        if hashes.len() >= w {
            for start in 0..=hashes.len() - w {
                prop_assert!((start..start + w).any(|p| positions.contains(&p)));
            }
        } else if !hashes.is_empty() {
            prop_assert_eq!(picked.len(), 1);
        }
    }

    /// Selected hashes are a subset of the input hashes at the right positions.
    #[test]
    fn winnow_selects_existing_hashes(values in proptest::collection::vec(any::<u32>(), 0..300), w in 1usize..12) {
        let hashes: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(position, &hash)| browserflow_fingerprint::ngram::NgramHash { hash, position })
            .collect();
        for picked in winnow::winnow(&hashes, w) {
            prop_assert_eq!(values[picked.position], picked.hash);
        }
    }

    /// The monotone-deque winnowing implementation agrees with a naive
    /// per-window reference implementation on arbitrary input.
    #[test]
    fn winnow_matches_naive_reference(values in proptest::collection::vec(any::<u32>(), 0..200), w in 1usize..10) {
        let hashes: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(position, &hash)| browserflow_fingerprint::ngram::NgramHash { hash, position })
            .collect();
        let fast = winnow::winnow(&hashes, w);
        // Reference: scan each window, select the rightmost minimum,
        // dedupe consecutive repeats.
        let mut reference: Vec<browserflow_fingerprint::ngram::NgramHash> = Vec::new();
        if !hashes.is_empty() && hashes.len() <= w {
            let mut best = hashes[0];
            for &h in &hashes[1..] {
                if h.hash <= best.hash {
                    best = h;
                }
            }
            reference.push(best);
        } else if hashes.len() > w {
            for window in hashes.windows(w) {
                let mut best = window[0];
                for &h in &window[1..] {
                    if h.hash <= best.hash {
                        best = h;
                    }
                }
                if reference.last().map(|s| s.position) != Some(best.position) {
                    reference.push(best);
                }
            }
        }
        prop_assert_eq!(fast, reference);
    }

    /// Containment is monotone under concatenation: embedding A inside a
    /// larger document keeps containment high.
    #[test]
    fn containment_survives_embedding(core in "[a-z]{60,120}", extra in "[a-z]{0,60}") {
        let fp = fingerprinter(6, 4);
        let a = fp.fingerprint(&core);
        let b = fp.fingerprint(&format!("{extra}{core}{extra}"));
        // All interior n-grams of `core` also occur in the embedding; only
        // hashes winnowed near the seams can differ.
        prop_assert!(a.containment_in(&b) > 0.5);
    }

    #[test]
    fn containment_bounds(a in prose(), b in prose()) {
        let fp = fingerprinter(5, 4);
        let fa = fp.fingerprint(&a);
        let fb = fp.fingerprint(&b);
        let c = fa.containment_in(&fb);
        prop_assert!((0.0..=1.0).contains(&c));
        let r = fa.resemblance(&fb);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!(r <= 1.0);
        // Self-containment of a non-empty fingerprint is exactly 1.
        if !fa.is_empty() {
            prop_assert_eq!(fa.containment_in(&fa), 1.0);
        }
    }
}
