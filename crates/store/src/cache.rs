//! Decision caching.
//!
//! §6.2 observes that "one keystroke typically does not alter the winnowing
//! fingerprint of a paragraph, permitting BrowserFlow to reuse its previous
//! response". The cache keys each segment's last disclosure decision by an
//! order-independent digest of its fingerprint; as long as edits do not
//! change the winnowed hash set, the cached decision is reused and the
//! full Algorithm 1 run is skipped.

use crate::fx::FxHashMap;
use crate::SegmentId;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};

/// An order-independent digest of a fingerprint's distinct hash set.
///
/// Combines each 32-bit hash through a commutative mix (a SplitMix64
/// scramble folded with a wrapping add) so that iteration and insertion
/// order are irrelevant by construction — audited against the `HashSet`
/// iteration-order trap and regression-tested — and folds in the set size
/// to distinguish e.g. `{h}` from `{h, h'}` where the mixes cancel.
/// [`FingerprintDigest::of`] and [`FingerprintDigest::of_sorted`] produce
/// identical digests for the same set of hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FingerprintDigest(u64);

/// SplitMix64-style scramble of one element.
fn mix(h: u32) -> u64 {
    let mut x = h as u64;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fold(sum: u64, len: usize) -> u64 {
    sum.wrapping_add((len as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

impl FingerprintDigest {
    /// Digests a set of distinct hashes.
    pub fn of<S: BuildHasher>(hashes: &HashSet<u32, S>) -> Self {
        let sum = hashes.iter().fold(0u64, |acc, &h| acc.wrapping_add(mix(h)));
        Self(fold(sum, hashes.len()))
    }

    /// Digests a slice of *distinct* hashes (typically
    /// `Fingerprint::distinct_hashes`), avoiding the `HashSet`
    /// round-trip. Equals [`FingerprintDigest::of`] on the same set.
    pub fn of_sorted(hashes: &[u32]) -> Self {
        debug_assert!(
            hashes.windows(2).all(|w| w[0] < w[1]),
            "digest input must be sorted and deduplicated"
        );
        let sum = hashes.iter().fold(0u64, |acc, &h| acc.wrapping_add(mix(h)));
        Self(fold(sum, hashes.len()))
    }
}

/// A per-segment cache of the last disclosure decision, keyed by
/// fingerprint digest.
///
/// Every operation takes `&self`: the entry map sits behind an [`RwLock`]
/// and the hit/miss counters are atomics, so concurrent checkers share the
/// cache without external locking. Lookups return the decision by value.
///
/// # Example
///
/// ```rust
/// use browserflow_store::{DecisionCache, FingerprintDigest, SegmentId};
/// use std::collections::HashSet;
///
/// let cache: DecisionCache<bool> = DecisionCache::new();
/// let hashes: HashSet<u32> = [1, 2, 3].into_iter().collect();
/// let digest = FingerprintDigest::of(&hashes);
/// assert_eq!(cache.get(SegmentId::new(1), digest), None);
/// cache.put(SegmentId::new(1), digest, true);
/// assert_eq!(cache.get(SegmentId::new(1), digest), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct DecisionCache<T> {
    entries: RwLock<FxHashMap<SegmentId, (FingerprintDigest, T)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T: Clone> DecisionCache<T> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            entries: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up the cached decision for `segment`, valid only if the
    /// fingerprint digest still matches.
    pub fn get(&self, segment: SegmentId, digest: FingerprintDigest) -> Option<T> {
        match self.entries.read().get(&segment) {
            Some((cached_digest, value)) if *cached_digest == digest => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the decision for `segment` under `digest`, replacing any
    /// previous entry for the segment.
    pub fn put(&self, segment: SegmentId, digest: FingerprintDigest, value: T) {
        self.entries.write().insert(segment, (digest, value));
    }

    /// Drops the cached entry for `segment`.
    pub fn invalidate(&self, segment: SegmentId) {
        self.entries.write().remove(&segment);
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Number of cached segments.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Lifetime (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(values: &[u32]) -> FingerprintDigest {
        let set: HashSet<u32> = values.iter().copied().collect();
        FingerprintDigest::of(&set)
    }

    #[test]
    fn digest_is_order_independent() {
        assert_eq!(digest_of(&[1, 2, 3]), digest_of(&[3, 1, 2]));
    }

    #[test]
    fn digest_ignores_insertion_order() {
        // Regression: two sets built in opposite insertion orders (which
        // can yield different HashSet iteration orders) digest equally.
        let mut ascending: HashSet<u32> = HashSet::new();
        let mut descending: HashSet<u32> = HashSet::new();
        let spread = |i: u32| ((u64::from(i) * 2654435761) % 100003) as u32;
        for i in 0..1000u32 {
            ascending.insert(spread(i));
            descending.insert(spread(999 - i));
        }
        assert_eq!(ascending, descending);
        assert_eq!(
            FingerprintDigest::of(&ascending),
            FingerprintDigest::of(&descending)
        );
    }

    #[test]
    fn of_sorted_matches_of() {
        let values: Vec<u32> = (0..500).map(|i| i * 13 + 1).collect();
        let set: HashSet<u32> = values.iter().copied().collect();
        assert_eq!(
            FingerprintDigest::of(&set),
            FingerprintDigest::of_sorted(&values)
        );
        assert_eq!(
            FingerprintDigest::of(&HashSet::new()),
            FingerprintDigest::of_sorted(&[])
        );
    }

    #[test]
    fn digest_distinguishes_different_sets() {
        assert_ne!(digest_of(&[1, 2, 3]), digest_of(&[1, 2, 4]));
        assert_ne!(digest_of(&[1, 2, 3]), digest_of(&[1, 2]));
        assert_ne!(digest_of(&[]), digest_of(&[0]));
    }

    #[test]
    fn cache_hit_only_on_matching_digest() {
        let cache: DecisionCache<u32> = DecisionCache::new();
        let id = SegmentId::new(1);
        cache.put(id, digest_of(&[1, 2]), 99);
        assert_eq!(cache.get(id, digest_of(&[1, 2])), Some(99));
        // Fingerprint changed -> miss.
        assert_eq!(cache.get(id, digest_of(&[1, 2, 3])), None);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn invalidate_and_clear() {
        let cache: DecisionCache<u32> = DecisionCache::new();
        cache.put(SegmentId::new(1), digest_of(&[1]), 1);
        cache.put(SegmentId::new(2), digest_of(&[2]), 2);
        cache.invalidate(SegmentId::new(1));
        assert_eq!(cache.get(SegmentId::new(1), digest_of(&[1])), None);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_lookups_count_atomically() {
        let cache: DecisionCache<u32> = DecisionCache::new();
        let digest = digest_of(&[7]);
        cache.put(SegmentId::new(1), digest, 7);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        assert_eq!(cache.get(SegmentId::new(1), digest), Some(7));
                    }
                });
            }
        });
        assert_eq!(cache.stats(), (400, 0));
    }
}
