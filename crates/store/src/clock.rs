//! Logical time.
//!
//! Algorithm 1 only needs a total order on first sightings of hashes
//! ("oldest paragraph with h"), so BrowserFlow uses a logical counter
//! instead of wall-clock time. This also makes every experiment in the
//! evaluation deterministic and replayable.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point in logical time. Ordered, dense enough for one tick per store
/// observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The earliest representable time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from a raw counter value.
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// The raw counter value.
    pub const fn get(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A monotonically increasing logical clock.
///
/// Backed by an atomic counter so concurrent observers each draw a unique
/// timestamp without external synchronisation; every method takes `&self`.
///
/// # Example
///
/// ```rust
/// use browserflow_store::LogicalClock;
///
/// let clock = LogicalClock::new();
/// let a = clock.tick();
/// let b = clock.tick();
/// assert!(a < b);
/// ```
#[derive(Debug, Default)]
pub struct LogicalClock {
    next: AtomicU64,
}

impl LogicalClock {
    /// Creates a clock starting at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current time and advances the clock. Concurrent callers
    /// receive distinct, totally ordered timestamps.
    pub fn tick(&self) -> Timestamp {
        Timestamp(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Reserves `count` consecutive timestamps with a single atomic
    /// advance and returns the first of them. The caller owns the whole
    /// contiguous range `[first, first + count)`; concurrent callers
    /// receive disjoint ranges. `count == 0` reserves nothing and returns
    /// the (unclaimed) current time.
    pub fn tick_many(&self, count: u64) -> Timestamp {
        Timestamp(self.next.fetch_add(count, Ordering::Relaxed))
    }

    /// The timestamp the next [`LogicalClock::tick`] will return, without
    /// advancing.
    pub fn peek(&self) -> Timestamp {
        Timestamp(self.next.load(Ordering::Relaxed))
    }

    /// Advances the clock so the next tick is at least `at_least`. Never
    /// moves backwards. Used when restoring persisted state.
    pub fn advance_to(&self, at_least: Timestamp) {
        self.next.fetch_max(at_least.0, Ordering::Relaxed);
    }
}

impl Clone for LogicalClock {
    fn clone(&self) -> Self {
        Self {
            next: AtomicU64::new(self.next.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let clock = LogicalClock::new();
        let mut previous = clock.tick();
        for _ in 0..100 {
            let current = clock.tick();
            assert!(current > previous);
            previous = current;
        }
    }

    #[test]
    fn peek_does_not_advance() {
        let clock = LogicalClock::new();
        assert_eq!(clock.peek(), clock.peek());
        let ticked = clock.tick();
        assert_eq!(ticked, Timestamp::ZERO);
        assert_eq!(clock.peek(), Timestamp::new(1));
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let clock = LogicalClock::new();
        let ticks: Vec<Timestamp> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..250).map(|_| clock.tick()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut raw: Vec<u64> = ticks.iter().map(|t| t.get()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 1000);
        assert_eq!(clock.peek(), Timestamp::new(1000));
    }

    #[test]
    fn tick_many_reserves_a_contiguous_range() {
        let clock = LogicalClock::new();
        let first = clock.tick_many(5);
        assert_eq!(first, Timestamp::ZERO);
        assert_eq!(clock.peek(), Timestamp::new(5));
        assert_eq!(clock.tick(), Timestamp::new(5));
        // A zero-length reservation claims nothing.
        assert_eq!(clock.tick_many(0), Timestamp::new(6));
        assert_eq!(clock.peek(), Timestamp::new(6));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = LogicalClock::new();
        clock.advance_to(Timestamp::new(10));
        clock.advance_to(Timestamp::new(3));
        assert_eq!(clock.peek(), Timestamp::new(10));
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::new(42).to_string(), "t42");
    }
}
