//! Logical time.
//!
//! Algorithm 1 only needs a total order on first sightings of hashes
//! ("oldest paragraph with h"), so BrowserFlow uses a logical counter
//! instead of wall-clock time. This also makes every experiment in the
//! evaluation deterministic and replayable.

/// A point in logical time. Ordered, dense enough for one tick per store
/// observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The earliest representable time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from a raw counter value.
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// The raw counter value.
    pub const fn get(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A monotonically increasing logical clock.
///
/// # Example
///
/// ```rust
/// use browserflow_store::LogicalClock;
///
/// let mut clock = LogicalClock::new();
/// let a = clock.tick();
/// let b = clock.tick();
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogicalClock {
    next: u64,
}

impl LogicalClock {
    /// Creates a clock starting at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current time and advances the clock.
    pub fn tick(&mut self) -> Timestamp {
        let now = Timestamp(self.next);
        self.next += 1;
        now
    }

    /// The timestamp the next [`LogicalClock::tick`] will return, without
    /// advancing.
    pub fn peek(&self) -> Timestamp {
        Timestamp(self.next)
    }

    /// Advances the clock so the next tick is at least `at_least`. Never
    /// moves backwards. Used when restoring persisted state.
    pub fn advance_to(&mut self, at_least: Timestamp) {
        self.next = self.next.max(at_least.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut clock = LogicalClock::new();
        let mut previous = clock.tick();
        for _ in 0..100 {
            let current = clock.tick();
            assert!(current > previous);
            previous = current;
        }
    }

    #[test]
    fn peek_does_not_advance() {
        let mut clock = LogicalClock::new();
        assert_eq!(clock.peek(), clock.peek());
        let ticked = clock.tick();
        assert_eq!(ticked, Timestamp::ZERO);
        assert_eq!(clock.peek(), Timestamp::new(1));
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::new(42).to_string(), "t42");
    }
}
