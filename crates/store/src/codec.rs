//! Binary serialisation of the fingerprint store, with sealed (encrypted)
//! export for at-rest protection (§4.4).
//!
//! Two little-endian formats share the `BFST` magic:
//!
//! **v1 (legacy, decode-only)** — one monolithic record:
//!
//! ```text
//! magic "BFST" | u16 version=1 | u64 clock
//! u64 segment_count | per segment: u64 id, f64 threshold, u64 updated,
//!                                   u32 hash_count, [u32 hashes...]
//! u64 sighting_count | per sighting: u32 hash, u64 segment, u64 time
//! ```
//!
//! **v2 (current)** — a checksummed manifest followed by independently
//! decodable per-shard records that mirror the in-memory lock striping
//! (segments keyed by `id & mask`, sightings by `hash & mask`):
//!
//! ```text
//! manifest: magic "BFST" | u16 version=2 | u64 clock | u32 shard_count
//!           per shard: u32 crc32, u64 byte_len, u64 segment_count,
//!                      u64 sighting_count
//!           u32 manifest_crc32 (over every preceding manifest byte)
//! records:  shard 0 bytes | shard 1 bytes | ...
//! shard record: u64 segment_count | segments... |
//!               u64 sighting_count | sightings...   (v1 record layouts)
//! ```
//!
//! Shards are encoded and decoded in parallel (one worker per shard, the
//! same crossbeam fan-out as Algorithm 1), and each shard stands alone: a
//! torn write or bit flip is confined to the shard it hits. The lossy
//! decoders ([`decode_lossy`], [`FingerprintStore::import_sealed_lossy`])
//! load every healthy shard and report the damaged ones in a
//! [`RestoreReport`] instead of failing the whole restore.

use crate::hash_db::Sighting;
use crate::segment_db::StoredSegment;
use crate::{FingerprintStore, SealedBytes, SegmentId, StoreKey, Timestamp};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"BFST";
const VERSION_V1: u16 = 1;
pub(crate) const VERSION_V2: u16 = 2;
/// Manifest version announcing v3 (zero-copy cold shard) record files.
/// The manifest layout is byte-identical to v2 — only the version field
/// and the referenced shard format ([`crate::tier`]) differ.
pub(crate) const VERSION_V3: u16 = 3;
/// Upper bound on the shard count a payload may declare.
const MAX_SHARDS: usize = 1 << 16;
/// Magic for the per-shard sealed container ([`SealedStore`]).
const SEALED_MAGIC: &[u8; 4] = b"BFSS";

/// Error decoding a serialised store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The payload does not start with the store magic bytes.
    BadMagic,
    /// The payload's format version is not supported.
    UnsupportedVersion {
        /// The version found in the payload.
        found: u16,
    },
    /// The payload ended prematurely or contains trailing garbage.
    Truncated,
    /// The manifest's own checksum did not verify: the shard directory
    /// cannot be trusted, so nothing can be restored.
    ManifestChecksum,
    /// A shard record's bytes did not match the CRC the manifest recorded.
    ShardChecksum {
        /// Index of the failing shard.
        shard: usize,
    },
    /// A shard record contained data belonging to a different shard, or
    /// disagreed with the manifest about its record counts.
    ShardMismatch {
        /// Index of the failing shard.
        shard: usize,
    },
    /// The payload listed the same segment id twice.
    DuplicateSegment {
        /// The repeated raw segment id.
        segment: u64,
    },
    /// The payload listed two first-sighting records for the same hash.
    DuplicateSighting {
        /// The repeated hash.
        hash: u32,
        /// The segment of the second (rejected) record.
        segment: u64,
    },
    /// A collection is too large for the format's length fields.
    TooLarge,
    /// The sealed payload failed to decrypt.
    Sealed(crate::EncryptionError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "payload is not a serialised fingerprint store"),
            CodecError::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            CodecError::Truncated => write!(f, "payload is truncated or malformed"),
            CodecError::ManifestChecksum => write!(f, "manifest checksum mismatch"),
            CodecError::ShardChecksum { shard } => {
                write!(f, "shard {shard} failed its checksum")
            }
            CodecError::ShardMismatch { shard } => {
                write!(f, "shard {shard} contains records that do not belong to it")
            }
            CodecError::DuplicateSegment { segment } => {
                write!(f, "payload lists segment {segment} twice")
            }
            CodecError::DuplicateSighting { hash, segment } => {
                write!(
                    f,
                    "payload lists two sightings of hash {hash} (second in segment {segment})"
                )
            }
            CodecError::TooLarge => write!(f, "store is too large for the format's length fields"),
            CodecError::Sealed(e) => write!(f, "sealed payload rejected: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Outcome of a lossy restore: which shards loaded and which were
/// sacrificed to corruption (§4.4's torn-write robustness).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RestoreReport {
    /// Shards that decoded and installed cleanly.
    pub loaded_shards: usize,
    /// Indices of shards that were torn, missing, or failed their
    /// checksum, in ascending order.
    pub lost_shards: Vec<usize>,
    /// Total segment fingerprints recorded in the manifest for the lost
    /// shards (what the corruption cost).
    pub lost_segments: u64,
}

impl RestoreReport {
    /// Whether every shard was restored.
    pub fn is_complete(&self) -> bool {
        self.lost_shards.is_empty()
    }
}

impl fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complete() {
            write!(f, "{} shard(s) restored", self.loaded_shards)
        } else {
            write!(
                f,
                "{} shard(s) restored, {} lost {:?} ({} segment(s) gone)",
                self.loaded_shards,
                self.lost_shards.len(),
                self.lost_shards,
                self.lost_segments
            )
        }
    }
}

// --- CRC32 (IEEE 802.3 polynomial, slicing-by-8) --------------------------
//
// Cold-tier opens are checksum-bound (validation is otherwise O(1) header
// checks plus linear directory scans), so the CRC is the hot loop of the
// ≥10x cold-open floor: slicing-by-8 processes 8 bytes per iteration with
// 8 independent table lookups instead of one byte at a time.

const CRC_TABLES: [[u32; 256]; 8] = crc_tables();

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4-byte chunk")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4-byte chunk"));
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

// --- Length-field guards --------------------------------------------------

/// Narrows a collection length to the format's `u32` field, failing with
/// [`CodecError::TooLarge`] instead of silently truncating (`as u32` would
/// corrupt the payload for a segment with more than 2^32 hashes).
pub(crate) fn len_u32(len: usize) -> Result<u32, CodecError> {
    u32::try_from(len).map_err(|_| CodecError::TooLarge)
}

fn len_u64(len: usize) -> Result<u64, CodecError> {
    u64::try_from(len).map_err(|_| CodecError::TooLarge)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        // `n` comes from untrusted length fields: both the addition and
        // the slice bounds must fail closed, never panic or wrap.
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn position(&self) -> usize {
        self.pos
    }

    /// The bytes consumed so far (for checksumming a parsed prefix).
    fn consumed(&self) -> &'a [u8] {
        &self.bytes[..self.pos]
    }

    /// Validates that `count` records of at least `min_record_bytes` each
    /// can still fit in the remaining payload, so corrupted counts cannot
    /// trigger huge up-front allocations.
    fn check_count(&self, count: u64, min_record_bytes: usize) -> Result<usize, CodecError> {
        let count = usize::try_from(count).map_err(|_| CodecError::Truncated)?;
        if count
            .checked_mul(min_record_bytes)
            .is_none_or(|needed| needed > self.remaining())
        {
            return Err(CodecError::Truncated);
        }
        Ok(count)
    }
}

// --- Manifest -------------------------------------------------------------

/// One shard's entry in the v2/v3 manifest. The `Default` value describes
/// an empty shard with no record file (`byte_len == 0`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct ShardMeta {
    pub(crate) crc: u32,
    pub(crate) byte_len: u64,
    pub(crate) segment_count: u64,
    pub(crate) sighting_count: u64,
}

/// The parsed v2 manifest: the shard directory a restore trusts after its
/// checksum verifies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    pub(crate) clock: u64,
    pub(crate) shards: Vec<ShardMeta>,
}

/// Parses the manifest body. The caller has already consumed the magic and
/// the version field (== 2); the manifest CRC covers everything from byte 0
/// of the payload through the last shard entry.
fn parse_manifest(reader: &mut Reader) -> Result<Manifest, CodecError> {
    let clock = reader.u64()?;
    let shard_count = u64::from(reader.u32()?);
    let shard_count = reader.check_count(shard_count, 28)?;
    if shard_count == 0 || shard_count > MAX_SHARDS || !shard_count.is_power_of_two() {
        return Err(CodecError::Truncated);
    }
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shards.push(ShardMeta {
            crc: reader.u32()?,
            byte_len: reader.u64()?,
            segment_count: reader.u64()?,
            sighting_count: reader.u64()?,
        });
    }
    let computed = crc32(reader.consumed());
    if reader.u32()? != computed {
        return Err(CodecError::ManifestChecksum);
    }
    Ok(Manifest { clock, shards })
}

/// Parses a standalone manifest payload (magic + version + manifest), as
/// written by the directory persistence layer, returning the version tag
/// (v2 and v3 share the manifest layout; the shard record format they
/// point at differs) alongside the parsed directory.
pub(crate) fn parse_manifest_bytes(bytes: &[u8]) -> Result<(u16, Manifest), CodecError> {
    let mut reader = Reader::new(bytes);
    if reader.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = reader.u16()?;
    if version != VERSION_V2 && version != VERSION_V3 {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    let manifest = parse_manifest(&mut reader)?;
    if !reader.finished() {
        return Err(CodecError::Truncated);
    }
    Ok((version, manifest))
}

/// Serialises a manifest (magic, version, clock, shard directory,
/// trailing CRC) — the standalone payload the directory persistence layer
/// writes, shared by v2 and v3.
pub(crate) fn encode_manifest(version: u16, clock: u64, shards: &[ShardMeta]) -> Vec<u8> {
    let mut manifest = Vec::with_capacity(4 + 2 + 8 + 4 + shards.len() * 28 + 4);
    manifest.extend_from_slice(MAGIC);
    manifest.extend_from_slice(&version.to_le_bytes());
    manifest.extend_from_slice(&clock.to_le_bytes());
    manifest.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    for shard in shards {
        manifest.extend_from_slice(&shard.crc.to_le_bytes());
        manifest.extend_from_slice(&shard.byte_len.to_le_bytes());
        manifest.extend_from_slice(&shard.segment_count.to_le_bytes());
        manifest.extend_from_slice(&shard.sighting_count.to_le_bytes());
    }
    let crc = crc32(&manifest);
    manifest.extend_from_slice(&crc.to_le_bytes());
    manifest
}

// --- Encoding -------------------------------------------------------------

struct EncodedShard {
    bytes: Vec<u8>,
    segment_count: u64,
    sighting_count: u64,
}

/// Encodes one shard's segments and sightings into a standalone record.
/// Segments removed between the snapshot and this call are skipped — the
/// written count is the count of records actually present.
fn encode_shard_record(
    store: &FingerprintStore,
    segments: &[SegmentId],
    sightings: &[(u32, Sighting)],
) -> Result<EncodedShard, CodecError> {
    let stored: Vec<(SegmentId, Arc<StoredSegment>)> = segments
        .iter()
        .filter_map(|&id| store.segment(id).map(|s| (id, s)))
        .collect();
    let mut out = Vec::new();
    out.extend_from_slice(&len_u64(stored.len())?.to_le_bytes());
    for (id, segment) in &stored {
        out.extend_from_slice(&id.get().to_le_bytes());
        out.extend_from_slice(&segment.threshold().to_le_bytes());
        out.extend_from_slice(&segment.updated().get().to_le_bytes());
        out.extend_from_slice(&len_u32(segment.hashes().len())?.to_le_bytes());
        for &hash in segment.hashes() {
            out.extend_from_slice(&hash.to_le_bytes());
        }
    }
    out.extend_from_slice(&len_u64(sightings.len())?.to_le_bytes());
    for (hash, sighting) in sightings {
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(&sighting.segment.get().to_le_bytes());
        out.extend_from_slice(&sighting.time.get().to_le_bytes());
    }
    Ok(EncodedShard {
        segment_count: stored.len() as u64,
        sighting_count: sightings.len() as u64,
        bytes: out,
    })
}

/// Encodes the store as (manifest bytes, per-shard record bytes). The
/// blob form is the concatenation; the directory persistence layer writes
/// the parts to separate files.
pub(crate) fn encode_v2_parts(
    store: &FingerprintStore,
    shards: usize,
    workers: usize,
) -> Result<(Vec<u8>, Vec<Vec<u8>>), CodecError> {
    let shard_count = shards.clamp(1, MAX_SHARDS).next_power_of_two();
    let mask = (shard_count - 1) as u64;

    // Snapshot and bucket by the same keys as the in-memory striping.
    let mut ids: Vec<SegmentId> = store.segment_ids().collect();
    ids.sort_unstable();
    let mut sightings = store.sightings();
    sightings.sort_unstable_by_key(|(hash, s)| (*hash, s.time));
    let mut segment_buckets: Vec<Vec<SegmentId>> = vec![Vec::new(); shard_count];
    for id in ids {
        segment_buckets[(id.get() & mask) as usize].push(id);
    }
    let mut sighting_buckets: Vec<Vec<(u32, Sighting)>> = vec![Vec::new(); shard_count];
    for (hash, sighting) in sightings {
        sighting_buckets[(u64::from(hash) & mask) as usize].push((hash, sighting));
    }

    let encoded: Vec<Result<EncodedShard, CodecError>> = if workers > 1 && shard_count > 1 {
        let chunk_len = shard_count.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = segment_buckets
                .chunks(chunk_len)
                .zip(sighting_buckets.chunks(chunk_len))
                .map(|(segments, sightings)| {
                    scope.spawn(move |_| {
                        segments
                            .iter()
                            .zip(sightings)
                            .map(|(s, si)| encode_shard_record(store, s, si))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard encoding must not panic"))
                .collect()
        })
        .expect("scoped encoding threads join cleanly")
    } else {
        segment_buckets
            .iter()
            .zip(&sighting_buckets)
            .map(|(s, si)| encode_shard_record(store, s, si))
            .collect()
    };
    let encoded: Vec<EncodedShard> = encoded.into_iter().collect::<Result<_, _>>()?;

    let metas: Vec<ShardMeta> = encoded
        .iter()
        .map(|shard| {
            Ok(ShardMeta {
                crc: crc32(&shard.bytes),
                byte_len: len_u64(shard.bytes.len())?,
                segment_count: shard.segment_count,
                sighting_count: shard.sighting_count,
            })
        })
        .collect::<Result<_, CodecError>>()?;
    let manifest = encode_manifest(VERSION_V2, store.now().get(), &metas);
    Ok((manifest, encoded.into_iter().map(|s| s.bytes).collect()))
}

/// Serialises the store to plain bytes (v2, sharded to match the store's
/// in-memory striping).
///
/// # Errors
///
/// Returns [`CodecError::TooLarge`] if a collection exceeds the format's
/// length fields.
pub fn encode(store: &FingerprintStore) -> Result<Vec<u8>, CodecError> {
    encode_v2_with_shards(store, store.shard_count())
}

/// Serialises the store to plain v2 bytes with an explicit shard count
/// (rounded up to a power of two, clamped to `[1, 65536]`).
///
/// # Errors
///
/// Returns [`CodecError::TooLarge`] if a collection exceeds the format's
/// length fields.
pub fn encode_v2_with_shards(
    store: &FingerprintStore,
    shards: usize,
) -> Result<Vec<u8>, CodecError> {
    let (manifest, records) = encode_v2_parts(store, shards, crate::disclosure::default_workers())?;
    let mut out = manifest;
    for record in &records {
        out.extend_from_slice(record);
    }
    Ok(out)
}

/// Serialises the store in the legacy monolithic v1 layout (kept for
/// migration tooling and back-compat tests; new snapshots use v2).
///
/// # Errors
///
/// Returns [`CodecError::TooLarge`] if a collection exceeds the format's
/// length fields.
pub fn encode_v1(store: &FingerprintStore) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    out.extend_from_slice(&store.now().get().to_le_bytes());

    let segment_ids: Vec<SegmentId> = {
        let mut ids: Vec<SegmentId> = store.segment_ids().collect();
        ids.sort_unstable();
        ids
    };
    let stored: Vec<(SegmentId, Arc<StoredSegment>)> = segment_ids
        .iter()
        .filter_map(|&id| store.segment(id).map(|s| (id, s)))
        .collect();
    out.extend_from_slice(&len_u64(stored.len())?.to_le_bytes());
    for (id, segment) in &stored {
        out.extend_from_slice(&id.get().to_le_bytes());
        out.extend_from_slice(&segment.threshold().to_le_bytes());
        out.extend_from_slice(&segment.updated().get().to_le_bytes());
        out.extend_from_slice(&len_u32(segment.hashes().len())?.to_le_bytes());
        for &hash in segment.hashes() {
            out.extend_from_slice(&hash.to_le_bytes());
        }
    }

    let mut sightings = store.sightings();
    sightings.sort_unstable_by_key(|(hash, s)| (*hash, s.time));
    out.extend_from_slice(&len_u64(sightings.len())?.to_le_bytes());
    for (hash, sighting) in sightings {
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(&sighting.segment.get().to_le_bytes());
        out.extend_from_slice(&sighting.time.get().to_le_bytes());
    }
    Ok(out)
}

// --- Decoding -------------------------------------------------------------

/// A parsed-but-not-yet-installed shard: validation happens entirely on
/// worker threads; installation into the shared store is commutative
/// (explicit timestamps, earliest-sighting-wins).
struct ShardData {
    segments: Vec<(SegmentId, Vec<u32>, f64, Timestamp)>,
    sightings: Vec<(u32, SegmentId, Timestamp)>,
}

fn parse_shard_record(
    bytes: &[u8],
    shard: usize,
    mask: u64,
    meta: &ShardMeta,
) -> Result<ShardData, CodecError> {
    if crc32(bytes) != meta.crc {
        return Err(CodecError::ShardChecksum { shard });
    }
    let mut reader = Reader::new(bytes);
    let segment_count = reader.u64()?;
    // Each segment record is at least 28 bytes (id, threshold, updated,
    // hash count); a corrupted count must fail instead of allocating.
    let segment_count = reader.check_count(segment_count, 28)?;
    let mut seen_segments: HashSet<u64> = HashSet::with_capacity(segment_count);
    let mut segments = Vec::with_capacity(segment_count);
    for _ in 0..segment_count {
        let raw = reader.u64()?;
        if raw & mask != shard as u64 {
            return Err(CodecError::ShardMismatch { shard });
        }
        if !seen_segments.insert(raw) {
            return Err(CodecError::DuplicateSegment { segment: raw });
        }
        let threshold = reader.f64()?;
        let updated = Timestamp::new(reader.u64()?);
        let hash_count = u64::from(reader.u32()?);
        let hash_count = reader.check_count(hash_count, 4)?;
        let mut hashes = Vec::with_capacity(hash_count);
        for _ in 0..hash_count {
            hashes.push(reader.u32()?);
        }
        // Stored-segment invariant: sorted, deduplicated (repeats in the
        // payload are tolerated, as the old set-based parse did).
        hashes.sort_unstable();
        hashes.dedup();
        segments.push((SegmentId::new(raw), hashes, threshold, updated));
    }
    let sighting_count = reader.u64()?;
    let sighting_count = reader.check_count(sighting_count, 20)?;
    let mut seen_hashes: HashSet<u32> = HashSet::with_capacity(sighting_count);
    let mut sightings = Vec::with_capacity(sighting_count);
    for _ in 0..sighting_count {
        let hash = reader.u32()?;
        let segment = reader.u64()?;
        let time = Timestamp::new(reader.u64()?);
        if u64::from(hash) & mask != shard as u64 {
            return Err(CodecError::ShardMismatch { shard });
        }
        // DBhash keeps exactly one (earliest) sighting per hash, so a
        // repeated hash — let alone a repeated (hash, segment) pair — is a
        // malformed payload, not data to be silently last-writer-won.
        if !seen_hashes.insert(hash) {
            return Err(CodecError::DuplicateSighting { hash, segment });
        }
        sightings.push((hash, SegmentId::new(segment), time));
    }
    if !reader.finished() {
        return Err(CodecError::Truncated);
    }
    if segments.len() as u64 != meta.segment_count || sightings.len() as u64 != meta.sighting_count
    {
        return Err(CodecError::ShardMismatch { shard });
    }
    Ok(ShardData {
        segments,
        sightings,
    })
}

/// Parses and installs every shard region, fanning the per-shard work over
/// `workers` scoped threads. `None` regions are already known lost (a
/// missing file or a failed unseal). In strict mode (`lossy == false`) the
/// first shard error aborts the restore; in lossy mode damaged shards are
/// recorded in the [`RestoreReport`] and every healthy shard still loads.
pub(crate) fn assemble_from_parts<R: AsRef<[u8]> + Sync>(
    manifest: &Manifest,
    regions: &[Option<R>],
    workers: usize,
    lossy: bool,
) -> Result<(FingerprintStore, RestoreReport), CodecError> {
    let shard_count = manifest.shards.len();
    if regions.len() != shard_count {
        return Err(CodecError::Truncated);
    }
    let mask = (shard_count - 1) as u64;
    let store = FingerprintStore::new();

    let restore_shard = |shard: usize| -> Result<(), CodecError> {
        let meta = &manifest.shards[shard];
        let Some(bytes) = regions[shard].as_ref() else {
            return Err(CodecError::Truncated);
        };
        let data = parse_shard_record(bytes.as_ref(), shard, mask, meta)?;
        for (id, hashes, threshold, updated) in data.segments {
            store.restore_segment(id, hashes, threshold, updated);
        }
        for (hash, segment, time) in data.sightings {
            store.restore_sighting(hash, segment, time);
        }
        Ok(())
    };

    let mut results: Vec<(usize, Result<(), CodecError>)> = if workers > 1 && shard_count > 1 {
        let indices: Vec<usize> = (0..shard_count).collect();
        let chunk_len = shard_count.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let restore_shard = &restore_shard;
            let handles: Vec<_> = indices
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|&shard| (shard, restore_shard(shard)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard decoding must not panic"))
                .collect()
        })
        .expect("scoped decoding threads join cleanly")
    } else {
        (0..shard_count)
            .map(|shard| (shard, restore_shard(shard)))
            .collect()
    };
    results.sort_unstable_by_key(|(shard, _)| *shard);

    let mut report = RestoreReport::default();
    let mut first_error = None;
    for (shard, result) in results {
        match result {
            Ok(()) => report.loaded_shards += 1,
            Err(error) => {
                if first_error.is_none() {
                    first_error = Some(error);
                }
                report.lost_shards.push(shard);
                report.lost_segments += manifest.shards[shard].segment_count;
            }
        }
    }
    if !lossy {
        if let Some(error) = first_error {
            return Err(error);
        }
    }
    store.restore_clock(Timestamp::new(manifest.clock));
    // Sightings were replayed in arbitrary shard order, so per-segment
    // ownership is only known now: rebuild the authoritative index once
    // (the v2 wire format itself is unchanged — the index is derived
    // state, recomputed on load rather than persisted).
    store.rebuild_authoritative_index(workers);
    Ok((store, report))
}

fn decode_any(
    bytes: &[u8],
    workers: usize,
    lossy: bool,
) -> Result<(FingerprintStore, RestoreReport), CodecError> {
    let mut reader = Reader::new(bytes);
    if reader.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = reader.u16()?;
    match version {
        VERSION_V1 => {
            let store = decode_v1(&mut reader)?;
            store.rebuild_authoritative_index(workers);
            Ok((
                store,
                RestoreReport {
                    loaded_shards: 1,
                    ..RestoreReport::default()
                },
            ))
        }
        VERSION_V2 => {
            let manifest = parse_manifest(&mut reader)?;
            // Shard offsets follow deterministically from the (verified)
            // manifest, so a damaged region never shifts its neighbours.
            let mut offset = reader.position();
            let mut regions: Vec<Option<&[u8]>> = Vec::with_capacity(manifest.shards.len());
            for meta in &manifest.shards {
                let len = usize::try_from(meta.byte_len).map_err(|_| CodecError::Truncated)?;
                let region = offset
                    .checked_add(len)
                    .and_then(|end| bytes.get(offset..end));
                if region.is_none() && !lossy {
                    return Err(CodecError::Truncated);
                }
                offset = offset.saturating_add(len);
                regions.push(region);
            }
            if !lossy && offset != bytes.len() {
                return Err(CodecError::Truncated);
            }
            assemble_from_parts(&manifest, &regions, workers, lossy)
        }
        found => Err(CodecError::UnsupportedVersion { found }),
    }
}

fn decode_v1(reader: &mut Reader) -> Result<FingerprintStore, CodecError> {
    let clock = reader.u64()?;
    let store = FingerprintStore::new();

    let segment_count = reader.u64()?;
    let segment_count = reader.check_count(segment_count, 28)?;
    let mut seen_segments: HashSet<u64> = HashSet::with_capacity(segment_count);
    for _ in 0..segment_count {
        let raw = reader.u64()?;
        if !seen_segments.insert(raw) {
            return Err(CodecError::DuplicateSegment { segment: raw });
        }
        let threshold = reader.f64()?;
        let updated = Timestamp::new(reader.u64()?);
        let hash_count = u64::from(reader.u32()?);
        let hash_count = reader.check_count(hash_count, 4)?;
        let mut hashes = Vec::with_capacity(hash_count);
        for _ in 0..hash_count {
            hashes.push(reader.u32()?);
        }
        hashes.sort_unstable();
        hashes.dedup();
        store.restore_segment(SegmentId::new(raw), hashes, threshold, updated);
    }

    let sighting_count = reader.u64()?;
    let sighting_count = reader.check_count(sighting_count, 20)?;
    let mut seen_hashes: HashSet<u32> = HashSet::with_capacity(sighting_count);
    for _ in 0..sighting_count {
        let hash = reader.u32()?;
        let segment = reader.u64()?;
        let time = Timestamp::new(reader.u64()?);
        if !seen_hashes.insert(hash) {
            return Err(CodecError::DuplicateSighting { hash, segment });
        }
        store.restore_sighting(hash, SegmentId::new(segment), time);
    }
    store.restore_clock(Timestamp::new(clock));
    if !reader.finished() {
        return Err(CodecError::Truncated);
    }
    Ok(store)
}

/// Reconstructs a store from [`encode`]d bytes (either format version,
/// dispatched on the version field). Strict: any corruption fails the
/// whole decode — use [`decode_lossy`] to salvage healthy shards.
///
/// # Errors
///
/// Returns a [`CodecError`] if the payload is not a well-formed store.
pub fn decode(bytes: &[u8]) -> Result<FingerprintStore, CodecError> {
    decode_with_workers(bytes, crate::disclosure::default_workers())
}

/// [`decode`] with an explicit worker budget for the per-shard fan-out.
///
/// # Errors
///
/// Returns a [`CodecError`] if the payload is not a well-formed store.
pub fn decode_with_workers(bytes: &[u8], workers: usize) -> Result<FingerprintStore, CodecError> {
    decode_any(bytes, workers, false).map(|(store, _)| store)
}

/// Reconstructs as much of a v2 store as its healthy shards allow.
///
/// Damaged shards (torn, checksum-failing, or claiming foreign records)
/// are dropped and reported in the [`RestoreReport`]; every other shard
/// loads. v1 payloads have a single implicit shard, so for them lossy and
/// strict decoding coincide.
///
/// # Errors
///
/// Fails hard only when nothing can be trusted: a bad magic/version, or a
/// manifest that is truncated or fails its own checksum.
pub fn decode_lossy(bytes: &[u8]) -> Result<(FingerprintStore, RestoreReport), CodecError> {
    decode_lossy_with_workers(bytes, crate::disclosure::default_workers())
}

/// [`decode_lossy`] with an explicit worker budget for the per-shard
/// fan-out.
///
/// # Errors
///
/// See [`decode_lossy`].
pub fn decode_lossy_with_workers(
    bytes: &[u8],
    workers: usize,
) -> Result<(FingerprintStore, RestoreReport), CodecError> {
    decode_any(bytes, workers, true)
}

// --- Sealed export --------------------------------------------------------

/// A store sealed shard-by-shard: the manifest and every shard record are
/// separately encrypted, so the at-rest form inherits the v2 format's
/// blast-radius containment (one damaged ciphertext loses one shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedStore {
    manifest: SealedBytes,
    shards: Vec<SealedBytes>,
}

impl SealedStore {
    /// Number of sealed shard records.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sealed manifest and shard entries (for file-per-entry
    /// persistence).
    pub(crate) fn parts(&self) -> (&SealedBytes, &[SealedBytes]) {
        (&self.manifest, &self.shards)
    }

    /// Total ciphertext bytes across the manifest and all shards.
    pub fn len(&self) -> usize {
        self.manifest.len() + self.shards.iter().map(SealedBytes::len).sum::<usize>()
    }

    /// Whether the container holds no ciphertext at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialises the container to a self-describing byte format (magic
    /// `BFSS`, version, entry count, length-prefixed sealed payloads)
    /// suitable for writing to disk as a single file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SEALED_MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&(1 + self.shards.len() as u32).to_le_bytes());
        for entry in std::iter::once(&self.manifest).chain(&self.shards) {
            let bytes = entry.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Parses a container produced by [`SealedStore::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::EncryptionError::MalformedPayload`] if the bytes
    /// are not a well-formed container. Integrity is only verified per
    /// entry on unseal.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::EncryptionError> {
        use crate::EncryptionError::MalformedPayload;
        // Untrusted decode surface (the daemon restores tenant state from
        // disk through here): every length is taken through a checked
        // cursor so a truncated or hostile container fails closed with
        // `MalformedPayload` — no slice panic, no wrapping arithmetic.
        fn take<'a>(
            bytes: &'a [u8],
            pos: &mut usize,
            n: usize,
        ) -> Result<&'a [u8], crate::EncryptionError> {
            let end = pos.checked_add(n).ok_or(MalformedPayload)?;
            let slice = bytes.get(*pos..end).ok_or(MalformedPayload)?;
            *pos = end;
            Ok(slice)
        }
        let mut pos = 0usize;
        if take(bytes, &mut pos, 4)? != SEALED_MAGIC {
            return Err(MalformedPayload);
        }
        let version = take(bytes, &mut pos, 2)?;
        if u16::from_le_bytes(version.try_into().expect("2-byte slice")) != 1 {
            return Err(MalformedPayload);
        }
        let count_bytes = take(bytes, &mut pos, 4)?;
        let count = u32::from_le_bytes(count_bytes.try_into().expect("4-byte slice")) as usize;
        if count == 0 || count > 1 + MAX_SHARDS {
            return Err(MalformedPayload);
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let len_bytes = take(bytes, &mut pos, 4)?;
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
            entries.push(SealedBytes::from_bytes(take(bytes, &mut pos, len)?)?);
        }
        if pos != bytes.len() {
            return Err(MalformedPayload);
        }
        let manifest = entries.remove(0);
        Ok(Self {
            manifest,
            shards: entries,
        })
    }
}

impl FingerprintStore {
    /// Serialises and seals the store under `key`, shard by shard (the
    /// recommended at-rest form, §4.4). Nonces are drawn from the
    /// process-wide counter ([`StoreKey::seal_auto`]), so two exports of
    /// the same store never reuse a keystream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TooLarge`] if a collection exceeds the
    /// format's length fields.
    pub fn export_sealed(&self, key: &StoreKey) -> Result<SealedStore, CodecError> {
        let (manifest, records) = encode_v2_parts(
            self,
            self.shard_count(),
            crate::disclosure::default_workers(),
        )?;
        Ok(SealedStore {
            manifest: key.seal_auto(&manifest),
            shards: records.iter().map(|record| key.seal_auto(record)).collect(),
        })
    }

    /// Unseals and reconstructs a store exported with
    /// [`FingerprintStore::export_sealed`]. Strict: any unseal or decode
    /// failure rejects the whole restore.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Sealed`] on key mismatch/tampering, or any
    /// other [`CodecError`] if a decrypted payload is malformed.
    pub fn import_sealed(
        key: &StoreKey,
        sealed: &SealedStore,
    ) -> Result<FingerprintStore, CodecError> {
        Self::import_sealed_inner(key, sealed, false).map(|(store, _)| store)
    }

    /// Unseals as much of the store as its healthy shards allow, reporting
    /// shards whose ciphertext failed integrity or whose plaintext was
    /// malformed as lost.
    ///
    /// # Errors
    ///
    /// Fails hard only when the manifest itself cannot be unsealed or
    /// parsed.
    pub fn import_sealed_lossy(
        key: &StoreKey,
        sealed: &SealedStore,
    ) -> Result<(FingerprintStore, RestoreReport), CodecError> {
        Self::import_sealed_inner(key, sealed, true)
    }

    fn import_sealed_inner(
        key: &StoreKey,
        sealed: &SealedStore,
        lossy: bool,
    ) -> Result<(FingerprintStore, RestoreReport), CodecError> {
        let manifest_bytes = key.unseal(&sealed.manifest).map_err(CodecError::Sealed)?;
        let (version, manifest) = parse_manifest_bytes(&manifest_bytes)?;
        if version != VERSION_V2 {
            // Sealed containers carry v2 records only; cold (v3) shards
            // are plain so they can be mapped.
            return Err(CodecError::UnsupportedVersion { found: version });
        }
        if manifest.shards.len() != sealed.shards.len() {
            return Err(CodecError::Truncated);
        }
        let mut regions: Vec<Option<Vec<u8>>> = Vec::with_capacity(sealed.shards.len());
        for shard in &sealed.shards {
            match key.unseal(shard) {
                Ok(bytes) => regions.push(Some(bytes)),
                Err(error) if !lossy => return Err(CodecError::Sealed(error)),
                Err(_) => regions.push(None),
            }
        }
        assemble_from_parts(
            &manifest,
            &regions,
            crate::disclosure::default_workers(),
            lossy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_fingerprint::Fingerprinter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> FingerprintStore {
        let fp = Fingerprinter::default();
        let store = FingerprintStore::new();
        store.observe(
            SegmentId::new(1),
            &fp.fingerprint(
                "the first confidential paragraph about quarterly earnings and margins",
            ),
            0.5,
        );
        store.observe(
            SegmentId::new(2),
            &fp.fingerprint("the second paragraph describing the reorganisation plan in detail"),
            0.3,
        );
        // Overlap: segment 3 repeats segment 1 (non-authoritative hashes).
        store.observe(
            SegmentId::new(3),
            &fp.fingerprint(
                "the first confidential paragraph about quarterly earnings and margins plus extra",
            ),
            0.7,
        );
        store
    }

    fn assert_equivalent(a: &FingerprintStore, b: &FingerprintStore) {
        assert_eq!(a.segment_count(), b.segment_count());
        assert_eq!(a.hash_count(), b.hash_count());
        assert_eq!(a.now(), b.now());
        let mut ids: Vec<SegmentId> = a.segment_ids().collect();
        ids.sort_unstable();
        for id in ids {
            let sa = a.segment(id).unwrap();
            let sb = b.segment(id).unwrap();
            assert_eq!(sa.hashes(), sb.hashes());
            assert_eq!(sa.threshold(), sb.threshold());
            assert_eq!(sa.updated(), sb.updated());
            assert_eq!(
                a.authoritative_fingerprint(id),
                b.authoritative_fingerprint(id),
                "authoritative fingerprints differ for {id}"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let store = sample_store();
        let decoded = decode(&encode(&store).unwrap()).unwrap();
        assert_equivalent(&store, &decoded);
    }

    #[test]
    fn v1_payloads_still_decode() {
        let store = sample_store();
        let v1 = encode_v1(&store).unwrap();
        let decoded = decode(&v1).unwrap();
        assert_equivalent(&store, &decoded);
        // Lossy decoding treats a v1 blob as one implicit shard.
        let (lossy, report) = decode_lossy(&v1).unwrap();
        assert_equivalent(&store, &lossy);
        assert_eq!(report.loaded_shards, 1);
        assert!(report.is_complete());
    }

    #[test]
    fn v2_output_is_deterministic_across_worker_counts() {
        let store = sample_store();
        let (manifest_1, records_1) = encode_v2_parts(&store, 8, 1).unwrap();
        let (manifest_4, records_4) = encode_v2_parts(&store, 8, 4).unwrap();
        assert_eq!(manifest_1, manifest_4);
        assert_eq!(records_1, records_4);
        let decoded = decode_with_workers(&encode_v2_with_shards(&store, 8).unwrap(), 4).unwrap();
        assert_equivalent(&store, &decoded);
    }

    #[test]
    fn roundtrip_preserves_disclosure_behaviour() {
        let fp = Fingerprinter::default();
        let store = sample_store();
        let decoded = decode(&encode(&store).unwrap()).unwrap();
        let probe =
            fp.fingerprint("the first confidential paragraph about quarterly earnings and margins");
        assert_eq!(
            store.disclosing_sources(SegmentId::new(99), &probe),
            decoded.disclosing_sources(SegmentId::new(99), &probe)
        );
    }

    #[test]
    fn clock_continues_after_restore() {
        let fp = Fingerprinter::default();
        let store = sample_store();
        let decoded = decode(&encode(&store).unwrap()).unwrap();
        // New observations get timestamps after every restored one.
        decoded.observe(
            SegmentId::new(50),
            &fp.fingerprint("a brand new paragraph observed after the restore completed"),
            0.5,
        );
        let updated = decoded.segment(SegmentId::new(50)).unwrap().updated();
        assert!(updated >= store.now());
    }

    #[test]
    fn sealed_roundtrip_and_tamper_detection() {
        let mut rng = StdRng::seed_from_u64(9);
        let key = StoreKey::generate(&mut rng);
        let store = sample_store();
        let sealed = store.export_sealed(&key).unwrap();
        let restored = FingerprintStore::import_sealed(&key, &sealed).unwrap();
        assert_equivalent(&store, &restored);

        let wrong_key = StoreKey::generate(&mut rng);
        assert!(matches!(
            FingerprintStore::import_sealed(&wrong_key, &sealed),
            Err(CodecError::Sealed(_))
        ));
    }

    #[test]
    fn sealed_store_roundtrips_through_wire_format() {
        let mut rng = StdRng::seed_from_u64(10);
        let key = StoreKey::generate(&mut rng);
        let store = sample_store();
        let sealed = store.export_sealed(&key).unwrap();
        let parsed = SealedStore::from_bytes(&sealed.to_bytes()).unwrap();
        assert_eq!(parsed, sealed);
        let restored = FingerprintStore::import_sealed(&key, &parsed).unwrap();
        assert_equivalent(&store, &restored);
        assert!(SealedStore::from_bytes(b"nope").is_err());
        let mut wire = sealed.to_bytes();
        wire.pop();
        assert!(SealedStore::from_bytes(&wire).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(matches!(decode(b"nope"), Err(CodecError::BadMagic)));
        assert!(matches!(decode(b"BFS"), Err(CodecError::Truncated)));
        let mut bad_version = encode(&sample_store()).unwrap();
        bad_version[4] = 0xFF;
        assert!(matches!(
            decode(&bad_version),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut truncated = encode(&sample_store()).unwrap();
        truncated.truncate(truncated.len() - 3);
        assert!(matches!(decode(&truncated), Err(CodecError::Truncated)));
        let mut trailing = encode(&sample_store()).unwrap();
        trailing.push(0);
        assert!(matches!(decode(&trailing), Err(CodecError::Truncated)));
    }

    #[test]
    fn corrupted_counts_fail_without_allocating() {
        // Flip the v1 segment-count field to a huge value: decode must
        // return Truncated instead of attempting a huge allocation.
        let mut bytes = encode_v1(&sample_store()).unwrap();
        for byte in &mut bytes[14..22] {
            *byte = 0xFF; // segment_count field (after magic+ver+clock)
        }
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated)));
        // Same for a per-segment hash count.
        let mut bytes = encode_v1(&sample_store()).unwrap();
        let hash_count_offset = 14 + 8 + 8 + 8 + 8; // first segment's count
        for byte in &mut bytes[hash_count_offset..hash_count_offset + 4] {
            *byte = 0xFF;
        }
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated)));
    }

    #[test]
    fn duplicate_segments_are_rejected() {
        // Hand-build a v1 payload listing the same segment id twice (with
        // empty hash sets). The old decoder silently overwrote the first
        // record; now it is a hard error.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION_V1.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // clock
        bytes.extend_from_slice(&2u64.to_le_bytes()); // segment count
        for _ in 0..2 {
            bytes.extend_from_slice(&7u64.to_le_bytes()); // same id twice
            bytes.extend_from_slice(&0.5f64.to_le_bytes());
            bytes.extend_from_slice(&0u64.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes()); // no hashes
        }
        bytes.extend_from_slice(&0u64.to_le_bytes()); // sighting count
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::DuplicateSegment { segment: 7 }
        );
    }

    #[test]
    fn duplicate_sightings_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION_V1.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // clock
        bytes.extend_from_slice(&0u64.to_le_bytes()); // segment count
        bytes.extend_from_slice(&2u64.to_le_bytes()); // sighting count
        for segment in [3u64, 4] {
            bytes.extend_from_slice(&99u32.to_le_bytes()); // same hash twice
            bytes.extend_from_slice(&segment.to_le_bytes());
            bytes.extend_from_slice(&1u64.to_le_bytes());
        }
        assert_eq!(
            decode(&bytes).unwrap_err(),
            CodecError::DuplicateSighting {
                hash: 99,
                segment: 4
            }
        );
    }

    #[test]
    fn oversized_lengths_error_instead_of_truncating() {
        // The u32 length guard is what `encode` relies on for segments
        // with more hashes than the field can carry; exercising it
        // directly avoids materialising a >4-billion-entry store.
        assert_eq!(len_u32(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(len_u32(u32::MAX as usize + 1), Err(CodecError::TooLarge));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = FingerprintStore::new();
        let decoded = decode(&encode(&store).unwrap()).unwrap();
        assert_eq!(decoded.segment_count(), 0);
        assert_eq!(decoded.hash_count(), 0);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
