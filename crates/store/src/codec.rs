//! Binary serialisation of the fingerprint store, with sealed (encrypted)
//! export for at-rest protection (§4.4).
//!
//! The format is a little-endian, versioned binary layout:
//!
//! ```text
//! magic "BFST" | u16 version | u64 clock
//! u64 segment_count | per segment: u64 id, f64 threshold, u64 updated,
//!                                   u32 hash_count, [u32 hashes...]
//! u64 sighting_count | per sighting: u32 hash, u64 segment, u64 time
//! ```

use crate::{FingerprintStore, SegmentId, StoreKey, Timestamp};
use std::collections::HashSet;
use std::fmt;

const MAGIC: &[u8; 4] = b"BFST";
const VERSION: u16 = 1;

/// Error decoding a serialised store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The payload does not start with the store magic bytes.
    BadMagic,
    /// The payload's format version is not supported.
    UnsupportedVersion {
        /// The version found in the payload.
        found: u16,
    },
    /// The payload ended prematurely or contains trailing garbage.
    Truncated,
    /// The sealed payload failed to decrypt.
    Sealed(crate::EncryptionError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "payload is not a serialised fingerprint store"),
            CodecError::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            CodecError::Truncated => write!(f, "payload is truncated or malformed"),
            CodecError::Sealed(e) => write!(f, "sealed payload rejected: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Validates that `count` records of at least `min_record_bytes` each
    /// can still fit in the remaining payload, so corrupted counts cannot
    /// trigger huge up-front allocations.
    fn check_count(&self, count: u64, min_record_bytes: usize) -> Result<usize, CodecError> {
        let count = usize::try_from(count).map_err(|_| CodecError::Truncated)?;
        if count
            .checked_mul(min_record_bytes)
            .is_none_or(|needed| needed > self.remaining())
        {
            return Err(CodecError::Truncated);
        }
        Ok(count)
    }
}

/// Serialises the store to plain bytes.
pub fn encode(store: &FingerprintStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&store.now().get().to_le_bytes());

    let segment_ids: Vec<SegmentId> = {
        let mut ids: Vec<SegmentId> = store.segment_ids().collect();
        ids.sort_unstable();
        ids
    };
    out.extend_from_slice(&(segment_ids.len() as u64).to_le_bytes());
    for id in &segment_ids {
        let stored = store.segment(*id).expect("listed segment exists");
        out.extend_from_slice(&id.get().to_le_bytes());
        out.extend_from_slice(&stored.threshold().to_le_bytes());
        out.extend_from_slice(&stored.updated().get().to_le_bytes());
        out.extend_from_slice(&(stored.hashes().len() as u32).to_le_bytes());
        for &hash in stored.hashes() {
            out.extend_from_slice(&hash.to_le_bytes());
        }
    }

    let mut sightings = store.sightings();
    sightings.sort_unstable_by_key(|(hash, s)| (*hash, s.time));
    out.extend_from_slice(&(sightings.len() as u64).to_le_bytes());
    for (hash, sighting) in sightings {
        out.extend_from_slice(&hash.to_le_bytes());
        out.extend_from_slice(&sighting.segment.get().to_le_bytes());
        out.extend_from_slice(&sighting.time.get().to_le_bytes());
    }
    out
}

/// Reconstructs a store from [`encode`]d bytes.
///
/// # Errors
///
/// Returns a [`CodecError`] if the payload is not a well-formed store.
pub fn decode(bytes: &[u8]) -> Result<FingerprintStore, CodecError> {
    let mut reader = Reader::new(bytes);
    if reader.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = reader.u16()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    let clock = reader.u64()?;
    let store = FingerprintStore::new();

    let segment_count = reader.u64()?;
    // Each segment record is at least 28 bytes (id, threshold, updated,
    // hash count); a corrupted count must fail instead of allocating.
    let segment_count = reader.check_count(segment_count, 28)?;
    for _ in 0..segment_count {
        let id = SegmentId::new(reader.u64()?);
        let threshold = reader.f64()?;
        let updated = Timestamp::new(reader.u64()?);
        let hash_count = reader.u32()? as u64;
        let hash_count = reader.check_count(hash_count, 4)?;
        let mut hashes = HashSet::with_capacity(hash_count);
        for _ in 0..hash_count {
            hashes.insert(reader.u32()?);
        }
        store.restore_segment(id, hashes, threshold, updated);
    }

    let sighting_count = reader.u64()?;
    let sighting_count = reader.check_count(sighting_count, 20)?;
    for _ in 0..sighting_count {
        let hash = reader.u32()?;
        let segment = SegmentId::new(reader.u64()?);
        let time = Timestamp::new(reader.u64()?);
        store.restore_sighting(hash, segment, time);
    }
    store.restore_clock(Timestamp::new(clock));
    if !reader.finished() {
        return Err(CodecError::Truncated);
    }
    Ok(store)
}

impl FingerprintStore {
    /// Serialises and seals the store under `key` (the recommended at-rest
    /// form, §4.4).
    pub fn export_sealed(&self, key: &StoreKey, nonce: u64) -> crate::SealedBytes {
        key.seal(nonce, &encode(self))
    }

    /// Unseals and reconstructs a store exported with
    /// [`FingerprintStore::export_sealed`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Sealed`] on key mismatch/tampering, or any
    /// other [`CodecError`] if the decrypted payload is malformed.
    pub fn import_sealed(
        key: &StoreKey,
        sealed: &crate::SealedBytes,
    ) -> Result<FingerprintStore, CodecError> {
        let bytes = key.unseal(sealed).map_err(CodecError::Sealed)?;
        decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_fingerprint::Fingerprinter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> FingerprintStore {
        let fp = Fingerprinter::default();
        let store = FingerprintStore::new();
        store.observe(
            SegmentId::new(1),
            &fp.fingerprint(
                "the first confidential paragraph about quarterly earnings and margins",
            ),
            0.5,
        );
        store.observe(
            SegmentId::new(2),
            &fp.fingerprint("the second paragraph describing the reorganisation plan in detail"),
            0.3,
        );
        // Overlap: segment 3 repeats segment 1 (non-authoritative hashes).
        store.observe(
            SegmentId::new(3),
            &fp.fingerprint(
                "the first confidential paragraph about quarterly earnings and margins plus extra",
            ),
            0.7,
        );
        store
    }

    fn assert_equivalent(a: &FingerprintStore, b: &FingerprintStore) {
        assert_eq!(a.segment_count(), b.segment_count());
        assert_eq!(a.hash_count(), b.hash_count());
        assert_eq!(a.now(), b.now());
        let mut ids: Vec<SegmentId> = a.segment_ids().collect();
        ids.sort_unstable();
        for id in ids {
            let sa = a.segment(id).unwrap();
            let sb = b.segment(id).unwrap();
            assert_eq!(sa.hashes(), sb.hashes());
            assert_eq!(sa.threshold(), sb.threshold());
            assert_eq!(sa.updated(), sb.updated());
            assert_eq!(
                a.authoritative_fingerprint(id),
                b.authoritative_fingerprint(id),
                "authoritative fingerprints differ for {id}"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let store = sample_store();
        let decoded = decode(&encode(&store)).unwrap();
        assert_equivalent(&store, &decoded);
    }

    #[test]
    fn roundtrip_preserves_disclosure_behaviour() {
        let fp = Fingerprinter::default();
        let store = sample_store();
        let decoded = decode(&encode(&store)).unwrap();
        let probe =
            fp.fingerprint("the first confidential paragraph about quarterly earnings and margins");
        assert_eq!(
            store.disclosing_sources(SegmentId::new(99), &probe),
            decoded.disclosing_sources(SegmentId::new(99), &probe)
        );
    }

    #[test]
    fn clock_continues_after_restore() {
        let fp = Fingerprinter::default();
        let store = sample_store();
        let decoded = decode(&encode(&store)).unwrap();
        // New observations get timestamps after every restored one.
        decoded.observe(
            SegmentId::new(50),
            &fp.fingerprint("a brand new paragraph observed after the restore completed"),
            0.5,
        );
        let updated = decoded.segment(SegmentId::new(50)).unwrap().updated();
        assert!(updated >= store.now());
    }

    #[test]
    fn sealed_roundtrip_and_tamper_detection() {
        let mut rng = StdRng::seed_from_u64(9);
        let key = StoreKey::generate(&mut rng);
        let store = sample_store();
        let sealed = store.export_sealed(&key, 42);
        let restored = FingerprintStore::import_sealed(&key, &sealed).unwrap();
        assert_equivalent(&store, &restored);

        let wrong_key = StoreKey::generate(&mut rng);
        assert!(matches!(
            FingerprintStore::import_sealed(&wrong_key, &sealed),
            Err(CodecError::Sealed(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(matches!(decode(b"nope"), Err(CodecError::BadMagic)));
        assert!(matches!(decode(b"BFS"), Err(CodecError::Truncated)));
        let mut bad_version = encode(&sample_store());
        bad_version[4] = 0xFF;
        assert!(matches!(
            decode(&bad_version),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut truncated = encode(&sample_store());
        truncated.truncate(truncated.len() - 3);
        assert!(matches!(decode(&truncated), Err(CodecError::Truncated)));
        let mut trailing = encode(&sample_store());
        trailing.push(0);
        assert!(matches!(decode(&trailing), Err(CodecError::Truncated)));
    }

    #[test]
    fn corrupted_counts_fail_without_allocating() {
        // Flip the segment-count field to a huge value: decode must return
        // Truncated instead of attempting a multi-gigabyte allocation.
        let mut bytes = encode(&sample_store());
        for byte in &mut bytes[14..22] {
            *byte = 0xFF; // segment_count field (after magic+ver+clock)
        }
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated)));
        // Same for a per-segment hash count.
        let mut bytes = encode(&sample_store());
        let hash_count_offset = 14 + 8 + 8 + 8 + 8; // first segment's count
        for byte in &mut bytes[hash_count_offset..hash_count_offset + 4] {
            *byte = 0xFF;
        }
        assert!(matches!(decode(&bytes), Err(CodecError::Truncated)));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = FingerprintStore::new();
        let decoded = decode(&encode(&store)).unwrap();
        assert_eq!(decoded.segment_count(), 0);
        assert_eq!(decoded.hash_count(), 0);
    }
}
