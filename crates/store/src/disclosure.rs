//! Disclosure metrics and Algorithm 1.
//!
//! §4.2 defines the pairwise disclosure of a source segment `A` towards a
//! target `B` as `D(A, B) = |F(A) ∩ F(B)| / |F(A)|`; §4.3 refines the
//! numerator to the *authoritative* fingerprint of `A` (hashes first seen
//! in `A`) so that overlapping stored segments do not multiply-report the
//! same leaked text (Figure 7).

use crate::{FingerprintStore, SegmentId};
use std::collections::{HashMap, HashSet};

/// One source segment reported by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureReport {
    /// The origin segment whose disclosure requirement is violated.
    pub source: SegmentId,
    /// The measured disclosure `D(source, target) ∈ [0, 1]`, computed with
    /// the authoritative numerator of §4.3.
    pub disclosure: f64,
    /// The source's configured threshold at the time of the check.
    pub threshold: f64,
    /// Number of authoritative hashes of `source` found in the target.
    pub shared_hashes: usize,
}

/// Pairwise disclosure between two plain hash sets, without the
/// authoritative adjustment: `|a ∩ b| / |a|`.
///
/// This is the unadjusted `D` of §4.2, exposed for baselines and for the
/// corpus-level experiments that do not maintain a store.
///
/// # Example
///
/// ```rust
/// use browserflow_store::disclosure_between;
/// use std::collections::HashSet;
///
/// let a: HashSet<u32> = [1, 2, 3, 4].into_iter().collect();
/// let b: HashSet<u32> = [3, 4, 5].into_iter().collect();
/// assert_eq!(disclosure_between(&a, &b), 0.5);
/// ```
pub fn disclosure_between(a: &HashSet<u32>, b: &HashSet<u32>) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.intersection(b).count() as f64 / a.len() as f64
}

/// Runs Algorithm 1 of the paper over the store.
///
/// For each hash `h` of the target fingerprint, the candidate source is
/// `oldestParagraphWith(h)` — only the authoritative owner of a hash can
/// be reported for it, which is precisely the overlap compensation of
/// §4.3. Candidates are then deduplicated and their pairwise disclosure
/// computed over their authoritative fingerprints.
///
/// A source `p` with threshold `t` is reported when its authoritative
/// overlap with the target is at least `t · |F(p)|` and at least one hash
/// (see the discussion on [`FingerprintStore::disclosing_sources`]).
///
/// The paper notes the algorithm "quickly discards candidate paragraphs
/// based on fingerprint length": if `|F(p)| · t > |F(target)|` even a full
/// overlap could not reach the threshold, so the candidate is skipped
/// before its authoritative fingerprint is computed.
pub(crate) fn run_algorithm_1(
    store: &FingerprintStore,
    target: SegmentId,
    target_hashes: &HashSet<u32>,
) -> Vec<DisclosureReport> {
    // Candidate set: authoritative owners of the target's hashes.
    let mut candidates: HashMap<SegmentId, ()> = HashMap::new();
    for &hash in target_hashes {
        if let Some(owner) = store.oldest_segment_with(hash) {
            if owner != target {
                candidates.insert(owner, ());
            }
        }
    }

    let mut reports: Vec<DisclosureReport> = Vec::new();
    for (&candidate, ()) in &candidates {
        let Some(stored) = store.segment(candidate) else {
            // The owner of a historical first sighting may no longer store
            // a fingerprint (removed/evicted); it cannot be a source.
            continue;
        };
        let total = stored.hashes().len();
        if total == 0 {
            continue;
        }
        let threshold = stored.threshold();
        // Early discard on fingerprint length.
        if total as f64 * threshold > target_hashes.len() as f64 {
            continue;
        }
        let overlap = stored
            .hashes()
            .iter()
            .filter(|&&h| {
                store.oldest_segment_with(h) == Some(candidate) && target_hashes.contains(&h)
            })
            .count();
        let required = threshold * total as f64;
        if overlap >= 1 && overlap as f64 >= required {
            reports.push(DisclosureReport {
                source: candidate,
                disclosure: overlap as f64 / total as f64,
                threshold,
                shared_hashes: overlap,
            });
        }
    }
    // Deterministic output order: strongest disclosure first, ties by id.
    reports.sort_by(|a, b| {
        b.disclosure
            .partial_cmp(&a.disclosure)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.source.cmp(&b.source))
    });
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disclosure_between_bounds_and_empty() {
        let empty: HashSet<u32> = HashSet::new();
        let a: HashSet<u32> = [1, 2].into_iter().collect();
        assert_eq!(disclosure_between(&empty, &a), 0.0);
        assert_eq!(disclosure_between(&a, &empty), 0.0);
        assert_eq!(disclosure_between(&a, &a), 1.0);
    }

    #[test]
    fn early_discard_respects_threshold_zero() {
        // With t = 0 the early-discard condition |F(p)|·t > |F(target)| is
        // never true, so even large sources are considered.
        use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        );
        let mut store = FingerprintStore::new();
        let long = "a very long source paragraph with plenty of content that goes on \
                    and on and keeps going for a while to build a big fingerprint";
        store.observe(SegmentId::new(1), &fp.fingerprint(long), 0.0);
        let snippet = &long[..40];
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(snippet));
        assert_eq!(reports.len(), 1);
        assert!(reports[0].disclosure > 0.0);
        assert!(reports[0].shared_hashes >= 1);
    }

    #[test]
    fn reports_sorted_by_disclosure() {
        use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        );
        let mut store = FingerprintStore::new();
        let a = "first secret paragraph about the merger timeline and the announcement plan";
        let b = "second secret paragraph listing the entire engineering compensation budget";
        store.observe(SegmentId::new(1), &fp.fingerprint(a), 0.1);
        store.observe(SegmentId::new(2), &fp.fingerprint(b), 0.1);
        // Target contains all of `a` but only part of `b`.
        let target = format!("{a} {}", &b[..45]);
        let reports = store.disclosing_sources(SegmentId::new(3), &fp.fingerprint(&target));
        assert_eq!(reports.len(), 2);
        assert!(reports[0].disclosure >= reports[1].disclosure);
        assert_eq!(reports[0].source, SegmentId::new(1));
    }
}
