//! Disclosure metrics and Algorithm 1.
//!
//! §4.2 defines the pairwise disclosure of a source segment `A` towards a
//! target `B` as `D(A, B) = |F(A) ∩ F(B)| / |F(A)|`; §4.3 refines the
//! numerator to the *authoritative* fingerprint of `A` (hashes first seen
//! in `A`) so that overlapping stored segments do not multiply-report the
//! same leaked text (Figure 7).
//!
//! Candidate evaluation works entirely on the store's maintained data
//! layout: each stored segment carries its authoritative set as a sorted
//! slice, so one evaluation is a single sorted-slice intersection
//! ([`crate::intersect`]) against the target's (once-sorted) hashes — no
//! `DBhash` probe and no per-hash `HashSet` lookup. The pre-index
//! probe-based implementation is kept as [`probe_evaluate_candidate`] /
//! [`probe_disclosing_sources`] for equivalence property tests and the
//! old-vs-new `algorithm1` microbench.

use crate::tier::SegmentHandle;
use crate::{FingerprintStore, SegmentId};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Below this many candidate sources the fan-out is not worth the pool
/// hand-off and Algorithm 1 stays on the calling thread.
///
/// Re-tuned for the persistent worker pool + intersection kernel (see
/// DESIGN.md §8): per-candidate evaluation is now so cheap that small
/// candidate sets finish before a condvar wake-up completes, but the pool
/// removes the per-check thread-spawn cost that used to dominate, so the
/// break-even sits at roughly twice the old cutoff's per-candidate work.
pub(crate) const PARALLEL_CUTOFF: usize = 32;

/// Default worker budget for the candidate fan-out: one per core, read
/// once — `available_parallelism` is a syscall and this runs per check.
pub(crate) fn default_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// One source segment reported by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureReport {
    /// The origin segment whose disclosure requirement is violated.
    pub source: SegmentId,
    /// The measured disclosure `D(source, target) ∈ [0, 1]`, computed with
    /// the authoritative numerator of §4.3.
    pub disclosure: f64,
    /// The source's configured threshold at the time of the check.
    pub threshold: f64,
    /// Number of authoritative hashes of `source` found in the target.
    pub shared_hashes: usize,
}

/// Pairwise disclosure between two plain hash sets, without the
/// authoritative adjustment: `|a ∩ b| / |a|`.
///
/// This is the unadjusted `D` of §4.2, exposed for baselines and for the
/// corpus-level experiments that do not maintain a store.
///
/// # Example
///
/// ```rust
/// use browserflow_store::disclosure_between;
/// use std::collections::HashSet;
///
/// let a: HashSet<u32> = [1, 2, 3, 4].into_iter().collect();
/// let b: HashSet<u32> = [3, 4, 5].into_iter().collect();
/// assert_eq!(disclosure_between(&a, &b), 0.5);
/// ```
pub fn disclosure_between(a: &HashSet<u32>, b: &HashSet<u32>) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.intersection(b).count() as f64 / a.len() as f64
}

/// Evaluates one candidate source against a sorted target hash slice,
/// returning a report when the candidate's disclosure requirement is
/// violated.
///
/// As in the paper's `computeDisclosure(F_A(p), F(parag))`, both the
/// numerator and the denominator use the *authoritative* fingerprint
/// `F_A(p)` — the hashes of `p`'s current fingerprint first seen in `p`.
/// Dividing by the full `|F(p)|` instead would make a verbatim copy of a
/// paragraph that borrows half its content from an older segment
/// undetectable at `t = 0.5` (its score could never exceed ~0.5), while
/// the borrowed half is still correctly attributed to the older owner.
///
/// A source `p` with threshold `t` is reported when
/// `|F_A(p) ∩ F(target)| ≥ max(1, t · |F_A(p)|)`. `F_A(p)` is the
/// stored segment's maintained authoritative slice; the overlap is one
/// merge/galloping intersection, so evaluation touches no locks and does
/// no hashing. The candidate arrives as a [`SegmentHandle`], so a
/// cold-tier source is intersected *directly against the mapped file
/// bytes* — the kernel is identical for both tiers.
pub(crate) fn evaluate_candidate(
    candidate: SegmentId,
    stored: &SegmentHandle,
    target_sorted: &[u32],
) -> Option<DisclosureReport> {
    let threshold = stored.threshold();
    let authoritative = stored.authoritative();
    if authoritative.is_empty() {
        return None;
    }
    let overlap = crate::intersect::intersection_count(authoritative, target_sorted);
    if overlap == 0 || (overlap as f64) < threshold * authoritative.len() as f64 {
        return None;
    }
    Some(DisclosureReport {
        source: candidate,
        disclosure: overlap as f64 / authoritative.len() as f64,
        threshold,
        shared_hashes: overlap,
    })
}

/// The pre-index reference implementation of candidate evaluation: derives
/// the authoritative set by probing `DBhash` once per stored hash and
/// tests target membership through a `HashSet`.
///
/// Kept (unused by the production paths) so property tests can prove the
/// indexed layout emits identical reports, and so the `algorithm1`
/// microbench can measure old-vs-new on the same store.
#[doc(hidden)]
pub fn probe_evaluate_candidate(
    store: &FingerprintStore,
    candidate: SegmentId,
    target_hashes: &HashSet<u32>,
) -> Option<DisclosureReport> {
    // The owner of a historical first sighting may no longer store a
    // fingerprint (removed/evicted); it cannot be a source.
    let stored = store.segment(candidate)?;
    let threshold = stored.threshold();
    let mut authoritative = 0usize;
    let mut overlap = 0usize;
    for &hash in stored.hashes() {
        if store.oldest_segment_with(hash) == Some(candidate) {
            authoritative += 1;
            if target_hashes.contains(&hash) {
                overlap += 1;
            }
        }
    }
    if overlap == 0 || (overlap as f64) < threshold * authoritative as f64 {
        return None;
    }
    Some(DisclosureReport {
        source: candidate,
        disclosure: overlap as f64 / authoritative as f64,
        threshold,
        shared_hashes: overlap,
    })
}

/// The full pre-index Algorithm 1: candidate discovery plus
/// [`probe_evaluate_candidate`], sequential. Reference for equivalence
/// tests and the old-vs-new microbench.
#[doc(hidden)]
pub fn probe_disclosing_sources(
    store: &FingerprintStore,
    target: SegmentId,
    target_hashes: &HashSet<u32>,
) -> Vec<DisclosureReport> {
    let mut candidates: Vec<SegmentId> = target_hashes
        .iter()
        .filter_map(|&hash| store.oldest_segment_with(hash))
        .filter(|&owner| owner != target)
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    let mut reports: Vec<DisclosureReport> = candidates
        .into_iter()
        .filter_map(|candidate| probe_evaluate_candidate(store, candidate, target_hashes))
        .collect();
    sort_reports(&mut reports);
    reports
}

/// Sorts reports into the deterministic output order: strongest
/// disclosure first, ties by segment id.
pub(crate) fn sort_reports(reports: &mut [DisclosureReport]) {
    reports.sort_by(|a, b| {
        b.disclosure
            .partial_cmp(&a.disclosure)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.source.cmp(&b.source))
    });
}

/// Runs Algorithm 1 of the paper over the store.
///
/// For each hash `h` of the (sorted, deduplicated) target slice, the
/// candidate source is `oldestParagraphWith(h)` — only the authoritative
/// owner of a hash can be reported for it, which is precisely the overlap
/// compensation of §4.3. Candidates are deduplicated, resolved to
/// [`SegmentHandle`]s once (hot: an `Arc` clone; cold: a zero-copy view
/// into the mapped shard), and evaluated with [`evaluate_candidate`] —
/// which reads only the handle and the target slice, so evaluation holds
/// no shard lock.
///
/// With enough candidates the evaluation fans out over the persistent
/// worker pool ([`crate::pool`]): each chunk of handles plus a shared
/// `Arc` of the target ships as an owned job, so nothing borrows from the
/// calling check. Per-candidate results are concatenated in chunk order
/// and sorted with [`sort_reports`] — a total order on `(disclosure desc,
/// source asc)` — so the output is byte-identical to the sequential path
/// regardless of worker count or scheduling (property-tested in
/// `tests/concurrent.rs`).
pub(crate) fn run_algorithm_1(
    store: &FingerprintStore,
    target: SegmentId,
    target_sorted: &[u32],
    workers: usize,
) -> Vec<DisclosureReport> {
    // Candidate set: authoritative owners of the target's hashes, sorted
    // so chunk assignment is deterministic.
    let mut candidates: Vec<SegmentId> = target_sorted
        .iter()
        .filter_map(|&hash| store.oldest_segment_with(hash))
        .filter(|&owner| owner != target)
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    // The owner of a historical first sighting may no longer store a
    // fingerprint (removed/evicted); it cannot be a source.
    let resolved: Vec<(SegmentId, SegmentHandle)> = candidates
        .into_iter()
        .filter_map(|candidate| store.segment_handle(candidate).map(|s| (candidate, s)))
        .collect();

    let parallel = workers > 1 && resolved.len() >= PARALLEL_CUTOFF;
    store.count_check(parallel);
    let mut reports: Vec<DisclosureReport> = if parallel {
        let shared_target: Arc<[u32]> = Arc::from(target_sorted);
        let chunk_len = resolved.len().div_ceil(workers);
        let jobs: Vec<_> = resolved
            .chunks(chunk_len)
            .map(|chunk| {
                let chunk = chunk.to_vec();
                let target = Arc::clone(&shared_target);
                move || {
                    chunk
                        .iter()
                        .filter_map(|(candidate, stored)| {
                            evaluate_candidate(*candidate, stored, &target)
                        })
                        .collect::<Vec<DisclosureReport>>()
                }
            })
            .collect();
        crate::pool::WorkerPool::global()
            .scatter(jobs)
            .into_iter()
            .flatten()
            .collect()
    } else {
        resolved
            .iter()
            .filter_map(|(candidate, stored)| evaluate_candidate(*candidate, stored, target_sorted))
            .collect()
    };
    sort_reports(&mut reports);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disclosure_between_bounds_and_empty() {
        let empty: HashSet<u32> = HashSet::new();
        let a: HashSet<u32> = [1, 2].into_iter().collect();
        assert_eq!(disclosure_between(&empty, &a), 0.0);
        assert_eq!(disclosure_between(&a, &empty), 0.0);
        assert_eq!(disclosure_between(&a, &a), 1.0);
    }

    #[test]
    fn default_workers_is_cached_and_positive() {
        assert!(default_workers() >= 1);
        assert_eq!(default_workers(), default_workers());
    }

    #[test]
    fn early_discard_respects_threshold_zero() {
        // With t = 0 the early-discard condition |F(p)|·t > |F(target)| is
        // never true, so even large sources are considered.
        use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        );
        let store = FingerprintStore::new();
        let long = "a very long source paragraph with plenty of content that goes on \
                    and on and keeps going for a while to build a big fingerprint";
        store.observe(SegmentId::new(1), &fp.fingerprint(long), 0.0);
        let snippet = &long[..40];
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(snippet));
        assert_eq!(reports.len(), 1);
        assert!(reports[0].disclosure > 0.0);
        assert!(reports[0].shared_hashes >= 1);
    }

    #[test]
    fn reports_sorted_by_disclosure() {
        use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        );
        let store = FingerprintStore::new();
        let a = "first secret paragraph about the merger timeline and the announcement plan";
        let b = "second secret paragraph listing the entire engineering compensation budget";
        store.observe(SegmentId::new(1), &fp.fingerprint(a), 0.1);
        store.observe(SegmentId::new(2), &fp.fingerprint(b), 0.1);
        // Target contains all of `a` but only part of `b`.
        let target = format!("{a} {}", &b[..45]);
        let reports = store.disclosing_sources(SegmentId::new(3), &fp.fingerprint(&target));
        assert_eq!(reports.len(), 2);
        assert!(reports[0].disclosure >= reports[1].disclosure);
        assert_eq!(reports[0].source, SegmentId::new(1));
    }

    #[test]
    fn indexed_matches_probe_reference() {
        use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        );
        let store = FingerprintStore::new();
        let a = "the first confidential paragraph concerning the restructuring schedule";
        let b = format!("{a} with an appendix describing severance terms in detail");
        store.observe(SegmentId::new(1), &fp.fingerprint(a), 0.2);
        store.observe(SegmentId::new(2), &fp.fingerprint(&b), 0.2);
        let target = fp.fingerprint(&format!("minutes: {b} end"));
        let indexed = store.disclosing_sources(SegmentId::new(3), &target);
        let probed = probe_disclosing_sources(&store, SegmentId::new(3), &target.hash_set());
        assert_eq!(indexed, probed);
        assert!(!indexed.is_empty());
    }
}
