//! Disclosure metrics and Algorithm 1.
//!
//! §4.2 defines the pairwise disclosure of a source segment `A` towards a
//! target `B` as `D(A, B) = |F(A) ∩ F(B)| / |F(A)|`; §4.3 refines the
//! numerator to the *authoritative* fingerprint of `A` (hashes first seen
//! in `A`) so that overlapping stored segments do not multiply-report the
//! same leaked text (Figure 7).

use crate::{FingerprintStore, SegmentId};
use std::collections::HashSet;

/// Below this many candidate sources the fan-out is not worth the thread
/// startup cost and Algorithm 1 stays on the calling thread.
pub(crate) const PARALLEL_CUTOFF: usize = 32;

/// Default worker budget for the candidate fan-out: one per core.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One source segment reported by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DisclosureReport {
    /// The origin segment whose disclosure requirement is violated.
    pub source: SegmentId,
    /// The measured disclosure `D(source, target) ∈ [0, 1]`, computed with
    /// the authoritative numerator of §4.3.
    pub disclosure: f64,
    /// The source's configured threshold at the time of the check.
    pub threshold: f64,
    /// Number of authoritative hashes of `source` found in the target.
    pub shared_hashes: usize,
}

/// Pairwise disclosure between two plain hash sets, without the
/// authoritative adjustment: `|a ∩ b| / |a|`.
///
/// This is the unadjusted `D` of §4.2, exposed for baselines and for the
/// corpus-level experiments that do not maintain a store.
///
/// # Example
///
/// ```rust
/// use browserflow_store::disclosure_between;
/// use std::collections::HashSet;
///
/// let a: HashSet<u32> = [1, 2, 3, 4].into_iter().collect();
/// let b: HashSet<u32> = [3, 4, 5].into_iter().collect();
/// assert_eq!(disclosure_between(&a, &b), 0.5);
/// ```
pub fn disclosure_between(a: &HashSet<u32>, b: &HashSet<u32>) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.intersection(b).count() as f64 / a.len() as f64
}

/// Evaluates one candidate source against a target hash set, returning a
/// report when the candidate's disclosure requirement is violated.
///
/// As in the paper's `computeDisclosure(F_A(p), F(parag))`, both the
/// numerator and the denominator use the *authoritative* fingerprint
/// `F_A(p)` — the hashes of `p`'s current fingerprint first seen in `p`.
/// Dividing by the full `|F(p)|` instead would make a verbatim copy of a
/// paragraph that borrows half its content from an older segment
/// undetectable at `t = 0.5` (its score could never exceed ~0.5), while
/// the borrowed half is still correctly attributed to the older owner.
///
/// A source `p` with threshold `t` is reported when
/// `|F_A(p) ∩ F(target)| ≥ max(1, t · |F_A(p)|)`. Both counts come out of
/// a single pass over the stored fingerprint; the paper's quick
/// length-based discard is subsumed by that pass (a discard on the *full*
/// fingerprint length would be unsound here, since `|F_A(p)| ≤ |F(p)|`).
pub(crate) fn evaluate_candidate(
    store: &FingerprintStore,
    candidate: SegmentId,
    target_hashes: &HashSet<u32>,
) -> Option<DisclosureReport> {
    // The owner of a historical first sighting may no longer store a
    // fingerprint (removed/evicted); it cannot be a source.
    let stored = store.segment(candidate)?;
    let threshold = stored.threshold();
    let mut authoritative = 0usize;
    let mut overlap = 0usize;
    for &hash in stored.hashes() {
        if store.oldest_segment_with(hash) == Some(candidate) {
            authoritative += 1;
            if target_hashes.contains(&hash) {
                overlap += 1;
            }
        }
    }
    if overlap == 0 || (overlap as f64) < threshold * authoritative as f64 {
        return None;
    }
    Some(DisclosureReport {
        source: candidate,
        disclosure: overlap as f64 / authoritative as f64,
        threshold,
        shared_hashes: overlap,
    })
}

/// Sorts reports into the deterministic output order: strongest
/// disclosure first, ties by segment id.
pub(crate) fn sort_reports(reports: &mut [DisclosureReport]) {
    reports.sort_by(|a, b| {
        b.disclosure
            .partial_cmp(&a.disclosure)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.source.cmp(&b.source))
    });
}

/// Runs Algorithm 1 of the paper over the store.
///
/// For each hash `h` of the target fingerprint, the candidate source is
/// `oldestParagraphWith(h)` — only the authoritative owner of a hash can
/// be reported for it, which is precisely the overlap compensation of
/// §4.3. Candidates are then deduplicated and evaluated with
/// [`evaluate_candidate`] (see the discussion on
/// [`FingerprintStore::disclosing_sources`]).
/// Candidates are evaluated independently, so with enough of them the loop
/// fans out over `workers` scoped threads, each taking a contiguous slice
/// of the (sorted, deduplicated) candidate list. Per-candidate results are
/// concatenated in slice order and sorted with [`sort_reports`] — a total
/// order on `(disclosure desc, source asc)` — so the output is
/// byte-identical to the sequential path regardless of worker count or
/// scheduling (property-tested in `tests/concurrent.rs`).
pub(crate) fn run_algorithm_1(
    store: &FingerprintStore,
    target: SegmentId,
    target_hashes: &HashSet<u32>,
    workers: usize,
) -> Vec<DisclosureReport> {
    // Candidate set: authoritative owners of the target's hashes, sorted
    // so chunk assignment is deterministic.
    let mut candidates: Vec<SegmentId> = target_hashes
        .iter()
        .filter_map(|&hash| store.oldest_segment_with(hash))
        .filter(|&owner| owner != target)
        .collect();
    candidates.sort_unstable();
    candidates.dedup();

    let parallel = workers > 1 && candidates.len() >= PARALLEL_CUTOFF;
    store.count_check(parallel);
    let mut reports: Vec<DisclosureReport> = if parallel {
        let chunk_len = candidates.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .filter_map(|&c| evaluate_candidate(store, c, target_hashes))
                            .collect::<Vec<DisclosureReport>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("candidate evaluation must not panic"))
                .collect()
        })
        .expect("scoped evaluation threads join cleanly")
    } else {
        candidates
            .iter()
            .filter_map(|&candidate| evaluate_candidate(store, candidate, target_hashes))
            .collect()
    };
    sort_reports(&mut reports);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disclosure_between_bounds_and_empty() {
        let empty: HashSet<u32> = HashSet::new();
        let a: HashSet<u32> = [1, 2].into_iter().collect();
        assert_eq!(disclosure_between(&empty, &a), 0.0);
        assert_eq!(disclosure_between(&a, &empty), 0.0);
        assert_eq!(disclosure_between(&a, &a), 1.0);
    }

    #[test]
    fn early_discard_respects_threshold_zero() {
        // With t = 0 the early-discard condition |F(p)|·t > |F(target)| is
        // never true, so even large sources are considered.
        use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        );
        let store = FingerprintStore::new();
        let long = "a very long source paragraph with plenty of content that goes on \
                    and on and keeps going for a while to build a big fingerprint";
        store.observe(SegmentId::new(1), &fp.fingerprint(long), 0.0);
        let snippet = &long[..40];
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(snippet));
        assert_eq!(reports.len(), 1);
        assert!(reports[0].disclosure > 0.0);
        assert!(reports[0].shared_hashes >= 1);
    }

    #[test]
    fn reports_sorted_by_disclosure() {
        use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};
        let fp = Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        );
        let store = FingerprintStore::new();
        let a = "first secret paragraph about the merger timeline and the announcement plan";
        let b = "second secret paragraph listing the entire engineering compensation budget";
        store.observe(SegmentId::new(1), &fp.fingerprint(a), 0.1);
        store.observe(SegmentId::new(2), &fp.fingerprint(b), 0.1);
        // Target contains all of `a` but only part of `b`.
        let target = format!("{a} {}", &b[..45]);
        let reports = store.disclosing_sources(SegmentId::new(3), &fp.fingerprint(&target));
        assert_eq!(reports.len(), 2);
        assert!(reports[0].disclosure >= reports[1].disclosure);
        assert_eq!(reports[0].source, SegmentId::new(1));
    }
}
