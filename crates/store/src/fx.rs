//! A fast, non-cryptographic hasher for the store's hot maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! collision-resistant, which costs ~1ns/word more than Algorithm 1 can
//! afford: every `oldestParagraphWith(h)` probe and every registry lookup
//! pays it. This module implements the FxHash algorithm (a word-at-a-time
//! rotate-xor-multiply, as used by the Rust compiler's internal tables):
//! on the 4- and 8-byte keys of `DBhash`, `DBpar`, the decision cache and
//! the engine registries it is a handful of ALU instructions per lookup.
//!
//! HashDoS resistance is deliberately traded away. The keys hashed here
//! are 32-bit winnowing hashes of observed text and engine-assigned
//! segment ids — BrowserFlow is a client-side tracker (§3), so an
//! adversary who could craft colliding inputs is already on the wrong
//! side of the threat model.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The FxHash multiplication constant (2^64 / golden ratio, made odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time rotate-xor-multiply hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Builds [`FxHasher`]s; zero-sized and unkeyed, so two maps hash
/// identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher.hash_one(0xDEAD_BEEFu32);
        let b = FxBuildHasher.hash_one(0xDEAD_BEEFu32);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: HashSet<u64> = (0u32..1000).map(|i| FxBuildHasher.hash_one(i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(42, "forty-two");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.len(), 2);

        let set: FxHashSet<u64> = (0..100).collect();
        assert!(set.contains(&99));
        assert!(!set.contains(&100));
    }

    #[test]
    fn byte_stream_fallback_covers_tail() {
        // write() must fold partial trailing chunks, not drop them.
        let mut a = FxHasher::default();
        a.write(b"abcdefgh-tail");
        let mut b = FxHasher::default();
        b.write(b"abcdefgh-tali");
        assert_ne!(a.finish(), b.finish());
    }
}
