//! `DBhash`: fingerprint-hash → first-sighting associations.
//!
//! Algorithm 1 resolves each hash of an incoming fingerprint to
//! `oldestParagraphWith(h)` — the segment in which the hash was first
//! observed. Storing only the *first* sighting per hash is sufficient:
//! later sightings can never become the oldest, and it keeps the database
//! at one entry per distinct hash, which matters at the 10-million-hash
//! scale of the paper's Figure 13.
//!
//! Recording a sighting reports its [`SightingOutcome`] so the store can
//! maintain each segment's authoritative hash set incrementally: an
//! `Installed` or `Displaced` outcome means the observing segment now owns
//! the hash, and `Displaced` additionally names the previous owner whose
//! authoritative set must shed it.

use crate::fx::FxHashMap;
use crate::{SegmentId, Timestamp};

/// A hash's first sighting: where and when it was first observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sighting {
    /// The segment the hash was first observed in.
    pub segment: SegmentId,
    /// Logical time of that observation.
    pub time: Timestamp,
}

/// What recording a sighting did to the hash's ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SightingOutcome {
    /// The hash had no sighting; the recording segment became its owner.
    Installed,
    /// An earlier-timestamped sighting replaced the named previous owner
    /// (out-of-order insert, e.g. during eviction replay or restore).
    Displaced(SegmentId),
    /// An existing, older sighting by the named segment was kept.
    Kept(SegmentId),
}

/// The hash database (`DBhash` of Algorithm 1).
///
/// # Example
///
/// ```rust
/// use browserflow_store::{HashDb, SegmentId, Timestamp};
///
/// let mut db = HashDb::new();
/// db.record_first_sighting(42, SegmentId::new(1), Timestamp::new(0));
/// // Later observations of the same hash do not displace the first.
/// db.record_first_sighting(42, SegmentId::new(2), Timestamp::new(1));
/// assert_eq!(db.oldest_with(42).unwrap().segment, SegmentId::new(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HashDb {
    first_seen: FxHashMap<u32, Sighting>,
}

impl HashDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `hash` was observed in `segment` at `time`, unless an
    /// earlier sighting already exists. Returns `true` if this became the
    /// hash's first sighting.
    pub fn record_first_sighting(
        &mut self,
        hash: u32,
        segment: SegmentId,
        time: Timestamp,
    ) -> bool {
        !matches!(
            self.record_sighting(hash, segment, time),
            SightingOutcome::Kept(_)
        )
    }

    /// Like [`HashDb::record_first_sighting`], but reports what happened to
    /// the hash's ownership, so callers can maintain per-segment
    /// authoritative sets without re-probing.
    pub fn record_sighting(
        &mut self,
        hash: u32,
        segment: SegmentId,
        time: Timestamp,
    ) -> SightingOutcome {
        match self.first_seen.entry(hash) {
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Sighting { segment, time });
                SightingOutcome::Installed
            }
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                // Out-of-order inserts (possible after eviction replay)
                // keep the earliest.
                if time < entry.get().time {
                    let previous = entry.get().segment;
                    entry.insert(Sighting { segment, time });
                    SightingOutcome::Displaced(previous)
                } else {
                    SightingOutcome::Kept(entry.get().segment)
                }
            }
        }
    }

    /// `oldestParagraphWith(h)`: the first sighting of `hash`, if any.
    pub fn oldest_with(&self, hash: u32) -> Option<Sighting> {
        self.first_seen.get(&hash).copied()
    }

    /// Number of distinct hashes on record.
    pub fn len(&self) -> usize {
        self.first_seen.len()
    }

    /// Whether no hashes are on record.
    pub fn is_empty(&self) -> bool {
        self.first_seen.is_empty()
    }

    /// A snapshot of all (hash, sighting) entries in arbitrary order.
    pub fn entries(&self) -> Vec<(u32, Sighting)> {
        self.first_seen.iter().map(|(&h, &s)| (h, s)).collect()
    }

    /// Drops every first-sighting record owned by `segment` (used when the
    /// segment is removed or evicted). The next observer of each dropped
    /// hash becomes its new first sighting.
    pub fn remove_sightings_of(&mut self, segment: SegmentId) {
        self.first_seen.retain(|_, s| s.segment != segment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_wins() {
        let mut db = HashDb::new();
        assert!(db.record_first_sighting(7, SegmentId::new(1), Timestamp::new(5)));
        assert!(!db.record_first_sighting(7, SegmentId::new(2), Timestamp::new(9)));
        assert_eq!(db.oldest_with(7).unwrap().segment, SegmentId::new(1));
    }

    #[test]
    fn earlier_out_of_order_insert_replaces() {
        let mut db = HashDb::new();
        db.record_first_sighting(7, SegmentId::new(2), Timestamp::new(9));
        assert!(db.record_first_sighting(7, SegmentId::new(1), Timestamp::new(5)));
        assert_eq!(db.oldest_with(7).unwrap().segment, SegmentId::new(1));
    }

    #[test]
    fn outcomes_name_the_parties() {
        let mut db = HashDb::new();
        assert_eq!(
            db.record_sighting(7, SegmentId::new(2), Timestamp::new(9)),
            SightingOutcome::Installed
        );
        assert_eq!(
            db.record_sighting(7, SegmentId::new(3), Timestamp::new(10)),
            SightingOutcome::Kept(SegmentId::new(2))
        );
        assert_eq!(
            db.record_sighting(7, SegmentId::new(1), Timestamp::new(5)),
            SightingOutcome::Displaced(SegmentId::new(2))
        );
        assert_eq!(db.oldest_with(7).unwrap().segment, SegmentId::new(1));
    }

    #[test]
    fn unknown_hash_is_none() {
        assert_eq!(HashDb::new().oldest_with(1), None);
    }

    #[test]
    fn remove_sightings_of_segment() {
        let mut db = HashDb::new();
        db.record_first_sighting(1, SegmentId::new(1), Timestamp::new(0));
        db.record_first_sighting(2, SegmentId::new(2), Timestamp::new(1));
        db.remove_sightings_of(SegmentId::new(1));
        assert_eq!(db.oldest_with(1), None);
        assert!(db.oldest_with(2).is_some());
        assert_eq!(db.len(), 1);
    }
}
