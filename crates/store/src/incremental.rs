//! Incremental disclosure checking.
//!
//! Algorithm 1 "can operate in an incremental fashion: if a user edits
//! paragraph P by adding one hash h, the algorithm's main loop only needs
//! to inspect h" (§4.3). An [`IncrementalChecker`] holds the evolving hash
//! set of the paragraph being edited together with its accumulated
//! candidate set; each [`IncrementalChecker::update`] resolves only the
//! *newly added* hashes to their authoritative owners instead of
//! re-resolving the whole fingerprint.
//!
//! Correctness relies on the candidate set only ever growing: a candidate
//! whose overlap with the current hash set drops to zero simply produces
//! no report, and any candidate the full algorithm would consider owns at
//! least one current hash — which was added at some point, so the
//! incremental checker saw it too (this equivalence is property-tested).

use crate::fx::FxHashSet;
use crate::{DisclosureReport, FingerprintStore, SegmentId};

/// An incremental evaluation of Algorithm 1 for one segment being edited.
///
/// # Example
///
/// ```rust
/// use browserflow_fingerprint::Fingerprinter;
/// use browserflow_store::{FingerprintStore, IncrementalChecker, SegmentId};
///
/// let fp = Fingerprinter::default();
/// let mut store = FingerprintStore::new();
/// let secret = "the acquisition will be announced on the first of march at a \
///               press event in zurich by the chief executive";
/// store.observe(SegmentId::new(1), &fp.fingerprint(secret), 0.3);
///
/// let mut checker = IncrementalChecker::new(SegmentId::new(2));
/// // The user pastes the secret: all of its hashes arrive at once.
/// let added: Vec<u32> = fp.fingerprint(secret).hash_set().into_iter().collect();
/// let reports = checker.update(&store, &added, &[]);
/// assert_eq!(reports.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalChecker {
    target: SegmentId,
    hashes: FxHashSet<u32>,
    candidates: FxHashSet<SegmentId>,
}

impl IncrementalChecker {
    /// Starts an incremental check for `target` with an empty hash set.
    pub fn new(target: SegmentId) -> Self {
        Self {
            target,
            hashes: FxHashSet::default(),
            candidates: FxHashSet::default(),
        }
    }

    /// The segment being edited.
    pub fn target(&self) -> SegmentId {
        self.target
    }

    /// The current hash set.
    pub fn hashes(&self) -> &FxHashSet<u32> {
        &self.hashes
    }

    /// Number of accumulated candidate sources.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Applies a fingerprint delta *without* evaluating candidates.
    ///
    /// This is the cheap half of [`IncrementalChecker::update`]: the hash
    /// set is brought up to date and newly added hashes are resolved
    /// against `DBhash` so no candidate is ever missed, but no disclosure
    /// ratios are computed. Use it for deltas whose verdict nobody will
    /// read — e.g. coalesced keystrokes superseded by a newer edit — so
    /// the state stays consistent at a fraction of the cost.
    pub fn absorb(&mut self, store: &FingerprintStore, added: &[u32], removed: &[u32]) {
        for &hash in removed {
            self.hashes.remove(&hash);
        }
        for &hash in added {
            if self.hashes.insert(hash) {
                // The incremental step: only new hashes hit DBhash.
                if let Some(owner) = store.oldest_segment_with(hash) {
                    if owner != self.target {
                        self.candidates.insert(owner);
                    }
                }
            }
        }
    }

    /// Applies a fingerprint delta and returns the sources whose
    /// disclosure requirement the *current* hash set violates.
    ///
    /// Only `added` hashes are resolved against `DBhash`; removal never
    /// introduces candidates. The result is identical to running
    /// [`FingerprintStore::disclosing_sources_of_hashes`] on the full
    /// current set.
    pub fn update(
        &mut self,
        store: &FingerprintStore,
        added: &[u32],
        removed: &[u32],
    ) -> Vec<DisclosureReport> {
        self.absorb(store, added, removed);
        self.evaluate(store)
    }

    /// Evaluates the accumulated candidates against the current hash set —
    /// the expensive half of [`IncrementalChecker::update`].
    ///
    /// The hash set is sorted once; each candidate is then one sorted-slice
    /// intersection against its stored authoritative set.
    pub fn evaluate(&self, store: &FingerprintStore) -> Vec<DisclosureReport> {
        let mut sorted: Vec<u32> = self.hashes.iter().copied().collect();
        sorted.sort_unstable();
        let mut reports: Vec<DisclosureReport> = self
            .candidates
            .iter()
            .filter_map(|&candidate| {
                // Candidates may have been evicted since they were resolved.
                // A handle intersects cold records in place, no copy.
                let stored = store.segment_handle(candidate)?;
                crate::disclosure::evaluate_candidate(candidate, &stored, &sorted)
            })
            .collect();
        crate::disclosure::sort_reports(&mut reports);
        reports
    }

    /// Drops candidates that can no longer produce a report, returning how
    /// many were removed.
    ///
    /// A candidate is *live* when it is the authoritative first sighting of
    /// at least one hash in the current set — exactly the candidates the
    /// full Algorithm 1 would consider. Everything else (sources whose
    /// overlap dropped to zero after deletions, or segments since evicted
    /// from the store) is dead weight that [`IncrementalChecker::evaluate`]
    /// re-inspects on every keystroke. Compacting is equivalence-preserving
    /// by construction: the retained set is recomputed from the current
    /// hashes, so subsequent reports are identical (property-tested).
    pub fn compact(&mut self, store: &FingerprintStore) -> usize {
        let target = self.target;
        let live: FxHashSet<SegmentId> = self
            .hashes
            .iter()
            .filter_map(|&hash| store.oldest_segment_with(hash))
            .filter(|&owner| owner != target)
            .collect();
        let before = self.candidates.len();
        self.candidates.retain(|candidate| live.contains(candidate));
        before - self.candidates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_fingerprint::Fingerprinter;

    const SECRET: &str = "the acquisition of initech will be announced on the first of \
                          march at a press event in zurich by the chief executive";

    fn store_with_secret() -> (FingerprintStore, Vec<u32>) {
        let fp = Fingerprinter::default();
        let store = FingerprintStore::new();
        let print = fp.fingerprint(SECRET);
        store.observe(SegmentId::new(1), &print, 0.4);
        let hashes: Vec<u32> = print.hash_set().into_iter().collect();
        (store, hashes)
    }

    #[test]
    fn hash_by_hash_arrival_eventually_reports() {
        let (store, hashes) = store_with_secret();
        let mut checker = IncrementalChecker::new(SegmentId::new(2));
        let mut fired_at = None;
        for (i, &hash) in hashes.iter().enumerate() {
            let reports = checker.update(&store, &[hash], &[]);
            if !reports.is_empty() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        let fired_at = fired_at.expect("threshold 0.4 must fire eventually");
        // Fires once ~40% of the hashes arrived, not only at the end.
        assert!(fired_at < hashes.len() - 1);
        assert!(fired_at + 1 >= (hashes.len() as f64 * 0.4) as usize);
    }

    #[test]
    fn removal_can_clear_a_report() {
        let (store, hashes) = store_with_secret();
        let mut checker = IncrementalChecker::new(SegmentId::new(2));
        assert_eq!(checker.update(&store, &hashes, &[]).len(), 1);
        // Remove most hashes again (the user deletes the paste).
        let keep = hashes.len() / 10;
        let removed: Vec<u32> = hashes[keep..].to_vec();
        let reports = checker.update(&store, &[], &removed);
        assert!(reports.is_empty());
        // Candidates are retained (cheap) but produce no report.
        assert_eq!(checker.candidate_count(), 1);
    }

    #[test]
    fn matches_full_recomputation() {
        let (store, hashes) = store_with_secret();
        let mut checker = IncrementalChecker::new(SegmentId::new(2));
        let mut reports = Vec::new();
        for chunk in hashes.chunks(3) {
            reports = checker.update(&store, chunk, &[]);
            let full = store.disclosing_sources_of_hashes(SegmentId::new(2), checker.hashes());
            assert_eq!(reports, full);
        }
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn absorb_then_evaluate_equals_update() {
        let (store, hashes) = store_with_secret();
        let mut a = IncrementalChecker::new(SegmentId::new(2));
        let mut b = IncrementalChecker::new(SegmentId::new(2));
        for chunk in hashes.chunks(4) {
            let via_update = a.update(&store, chunk, &[]);
            b.absorb(&store, chunk, &[]);
            assert_eq!(via_update, b.evaluate(&store));
        }
    }

    #[test]
    fn compaction_never_changes_reported_sources() {
        let fp = Fingerprinter::default();
        let store = FingerprintStore::new();
        let other = "minutes of the offsite planning session covering hiring targets \
                     and the reorganisation of the platform infrastructure teams";
        let secret_print = fp.fingerprint(SECRET);
        let other_print = fp.fingerprint(other);
        store.observe(SegmentId::new(1), &secret_print, 0.4);
        store.observe(SegmentId::new(2), &other_print, 0.4);

        let secret_hashes: Vec<u32> = secret_print.hash_set().into_iter().collect();
        let other_hashes: Vec<u32> = other_print.hash_set().into_iter().collect();

        let mut checker = IncrementalChecker::new(SegmentId::new(3));
        // Paste both sources, then delete the second paste entirely: its
        // candidate lingers with zero overlap.
        checker.update(&store, &secret_hashes, &[]);
        checker.update(&store, &other_hashes, &[]);
        checker.update(&store, &[], &other_hashes);
        assert_eq!(checker.candidate_count(), 2);

        let before = checker.evaluate(&store);
        let dropped = checker.compact(&store);
        assert_eq!(dropped, 1);
        assert_eq!(checker.candidate_count(), 1);
        // Reports are identical before and after compaction, and still
        // match a full recomputation.
        assert_eq!(checker.evaluate(&store), before);
        assert_eq!(
            checker.evaluate(&store),
            store.disclosing_sources_of_hashes(SegmentId::new(3), checker.hashes())
        );
        // Compacting again is a no-op.
        assert_eq!(checker.compact(&store), 0);
    }

    #[test]
    fn compaction_drops_evicted_sources() {
        let (store, hashes) = store_with_secret();
        let mut checker = IncrementalChecker::new(SegmentId::new(2));
        checker.update(&store, &hashes, &[]);
        assert_eq!(checker.candidate_count(), 1);
        // The source is removed from the store (e.g. age-based eviction).
        store.remove_segment(SegmentId::new(1));
        assert_eq!(checker.compact(&store), 1);
        assert_eq!(checker.candidate_count(), 0);
        assert!(checker.evaluate(&store).is_empty());
    }

    #[test]
    fn duplicate_adds_are_idempotent() {
        let (store, hashes) = store_with_secret();
        let mut checker = IncrementalChecker::new(SegmentId::new(2));
        checker.update(&store, &hashes, &[]);
        let size = checker.hashes().len();
        checker.update(&store, &hashes, &[]);
        assert_eq!(checker.hashes().len(), size);
    }
}
