//! Sorted-slice intersection kernel.
//!
//! Algorithm 1's inner loop is `|F_A(p) ∩ F(target)|`. With both operands
//! stored as sorted, deduplicated `u32` slices, the overlap is a linear
//! merge scan — sequential memory access and no per-element hashing —
//! instead of one randomized `HashSet` probe per stored hash. When one
//! side is much smaller than the other (a short paste checked against a
//! book-sized stored segment), the kernel switches to galloping: for each
//! element of the small side, exponential search bounds the match position
//! in the large side, giving `O(small · log(large/small))` instead of
//! `O(small + large)`.

/// Size ratio beyond which galloping beats the linear merge.
const GALLOP_RATIO: usize = 16;

/// Number of elements present in both sorted, deduplicated slices.
///
/// Both inputs must be strictly increasing; this is the stored-segment
/// invariant maintained by `SegmentDb` and by
/// `Fingerprint::distinct_hashes`.
///
/// # Example
///
/// ```rust
/// use browserflow_store::intersection_count;
///
/// assert_eq!(intersection_count(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
/// assert_eq!(intersection_count(&[], &[1, 2]), 0);
/// ```
pub fn intersection_count(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs not sorted/dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs not sorted/dedup");
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        gallop_count(small, large)
    } else {
        merge_count(small, large)
    }
}

/// Linear two-pointer merge; branch-light (the index advances are
/// unconditional arithmetic on comparison results).
fn merge_count(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        count += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    count
}

/// For each element of `small`, exponentially widen a window into the
/// unconsumed tail of `large`, then binary-search it. The search offset
/// only moves forward, so the whole pass is `O(|small| · log(|large| /
/// |small|))` amortised.
fn gallop_count(small: &[u32], large: &[u32]) -> usize {
    let mut count = 0;
    let mut offset = 0;
    for &x in small {
        let rest = &large[offset..];
        if rest.is_empty() {
            break;
        }
        let mut bound = 1;
        while bound < rest.len() && rest[bound - 1] < x {
            bound <<= 1;
        }
        let window = bound.min(rest.len());
        // First position with an element >= x; it lies inside the window
        // because either rest[window - 1] >= x or the window is the tail.
        let pos = rest[..window].partition_point(|&v| v < x);
        offset += pos;
        if pos < window && rest[pos] == x {
            count += 1;
            offset += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn reference(a: &[u32], b: &[u32]) -> usize {
        let a: HashSet<u32> = a.iter().copied().collect();
        let b: HashSet<u32> = b.iter().copied().collect();
        a.intersection(&b).count()
    }

    #[test]
    fn empty_and_disjoint() {
        assert_eq!(intersection_count(&[], &[]), 0);
        assert_eq!(intersection_count(&[1], &[]), 0);
        assert_eq!(intersection_count(&[1, 3, 5], &[2, 4, 6]), 0);
    }

    #[test]
    fn subset_and_identity() {
        let a: Vec<u32> = (0..100).map(|i| i * 3).collect();
        assert_eq!(intersection_count(&a, &a), a.len());
        let sub: Vec<u32> = a.iter().copied().step_by(4).collect();
        assert_eq!(intersection_count(&sub, &a), sub.len());
    }

    #[test]
    fn both_kernels_agree_with_reference() {
        // Small-vs-large exercises galloping, similar sizes the merge.
        let large: Vec<u32> = (0..5000).map(|i| i * 2).collect();
        let small: Vec<u32> = (0..50).map(|i| i * 117).collect();
        assert_eq!(
            intersection_count(&small, &large),
            reference(&small, &large)
        );
        assert_eq!(gallop_count(&small, &large), merge_count(&small, &large));
        let similar: Vec<u32> = (0..4000).map(|i| i * 3 + 1).collect();
        assert_eq!(
            intersection_count(&similar, &large),
            reference(&similar, &large)
        );
        assert_eq!(
            gallop_count(&similar, &large),
            merge_count(&similar, &large)
        );
    }

    #[test]
    fn argument_order_is_irrelevant() {
        let a: Vec<u32> = (0..1000).map(|i| i * 7).collect();
        let b: Vec<u32> = (0..10).map(|i| i * 700).collect();
        assert_eq!(intersection_count(&a, &b), intersection_count(&b, &a));
    }
}
