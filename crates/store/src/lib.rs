//! Fingerprint databases and the information disclosure computation of
//! BrowserFlow (§4.2–§4.4 of the paper).
//!
//! The central type is [`FingerprintStore`], which combines the two data
//! structures of Algorithm 1:
//!
//! - **`DBhash`** ([`hash_db`]): associations from fingerprint hashes to
//!   the segment in which each hash was *first* observed, with a logical
//!   timestamp. This answers `oldestParagraphWith(h)` and underpins
//!   *authoritative fingerprints* — the overlap-compensation mechanism of
//!   §4.3 (Figure 7).
//! - **`DBpar`** ([`segment_db`]): associations from segments to the last
//!   fingerprint calculated for each, plus the segment's disclosure
//!   threshold.
//!
//! On top of these, [`FingerprintStore::disclosing_sources`] implements the
//! paper's Algorithm 1: given a segment's fingerprint, find every stored
//! source segment whose *authoritative* content it discloses beyond that
//! source's threshold. The same machinery serves both tracking
//! granularities (paragraphs and whole documents, §4.1) — BrowserFlow
//! instantiates one store per granularity.
//!
//! # Example
//!
//! ```rust
//! use browserflow_fingerprint::Fingerprinter;
//! use browserflow_store::{FingerprintStore, SegmentId};
//!
//! let fp = Fingerprinter::default();
//! let mut store = FingerprintStore::new();
//!
//! let secret = "the acquisition of initech will be announced on the first of march \
//!               at a press event in zurich";
//! store.observe(SegmentId::new(1), &fp.fingerprint(secret), 0.5);
//!
//! // A user pastes the text (lightly edited) into another document.
//! let pasted = format!("meeting notes: {secret} -- please keep this quiet");
//! let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(&pasted));
//! assert_eq!(reports.len(), 1);
//! assert_eq!(reports[0].source, SegmentId::new(1));
//! assert!(reports[0].disclosure >= 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod clock;
pub mod codec;
mod disclosure;
mod encryption;
mod incremental;
pub mod hash_db;
pub mod segment_db;

pub use cache::{DecisionCache, FingerprintDigest};
pub use codec::CodecError;
pub use clock::{LogicalClock, Timestamp};
pub use disclosure::{disclosure_between, DisclosureReport};
pub use encryption::{EncryptionError, SealedBytes, StoreKey};
pub use incremental::IncrementalChecker;
pub use hash_db::{HashDb, Sighting};
pub use segment_db::{SegmentDb, StoredSegment};

use browserflow_fingerprint::Fingerprint;
use std::collections::HashSet;

/// Identifies a tracked text segment (a paragraph or a whole document,
/// depending on which granularity the store serves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(u64);

impl SegmentId {
    /// Creates a segment id from a raw value.
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw value.
    pub const fn get(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "segment-{}", self.0)
    }
}

impl From<u64> for SegmentId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

/// The combined fingerprint store: `DBhash` + `DBpar` + a logical clock.
///
/// All operations are deterministic; time is a logical counter advanced on
/// every observation, which is all `oldestParagraphWith` needs (a total
/// order on first sightings).
#[derive(Debug, Default)]
pub struct FingerprintStore {
    clock: LogicalClock,
    hashes: HashDb,
    segments: SegmentDb,
}

impl FingerprintStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or re-records after an edit) the fingerprint of `segment`.
    ///
    /// Hashes never seen before anywhere are credited to `segment` as
    /// their authoritative first sighting, timestamped now. The segment's
    /// previous fingerprint, if any, is replaced — `DBpar` stores only the
    /// *last* fingerprint per segment — but historical first-sighting
    /// records in `DBhash` are retained, as §4.3 requires.
    ///
    /// `threshold` is the segment's disclosure threshold `T ∈ [0, 1]`
    /// (clamped).
    pub fn observe(&mut self, segment: SegmentId, fingerprint: &Fingerprint, threshold: f64) {
        let now = self.clock.tick();
        let distinct: HashSet<u32> = fingerprint.hash_set();
        for &hash in &distinct {
            self.hashes.record_first_sighting(hash, segment, now);
        }
        self.segments
            .upsert(segment, distinct, threshold.clamp(0.0, 1.0), now);
    }

    /// Updates just the disclosure threshold of an already-observed
    /// segment. Returns `false` if the segment is unknown.
    pub fn set_threshold(&mut self, segment: SegmentId, threshold: f64) -> bool {
        self.segments
            .set_threshold(segment, threshold.clamp(0.0, 1.0))
    }

    /// The segment in which `hash` was first observed, if any
    /// (`oldestParagraphWith` of Algorithm 1).
    pub fn oldest_segment_with(&self, hash: u32) -> Option<SegmentId> {
        self.hashes.oldest_with(hash).map(|s| s.segment)
    }

    /// The *authoritative* part of a stored segment's fingerprint: the
    /// hashes of its current fingerprint whose first sighting anywhere was
    /// this segment (§4.3).
    pub fn authoritative_fingerprint(&self, segment: SegmentId) -> HashSet<u32> {
        let Some(stored) = self.segments.get(segment) else {
            return HashSet::new();
        };
        stored
            .hashes()
            .iter()
            .copied()
            .filter(|&h| self.oldest_segment_with(h) == Some(segment))
            .collect()
    }

    /// The disclosure `D(source, target)` of stored segment `source`
    /// towards a fingerprint `target`:
    ///
    /// `|F_authoritative(source) ∩ target| / |F(source)|`
    ///
    /// Returns 0.0 if the source is unknown or has an empty fingerprint.
    pub fn disclosure_from(&self, source: SegmentId, target: &HashSet<u32>) -> f64 {
        let Some(stored) = self.segments.get(source) else {
            return 0.0;
        };
        let total = stored.hashes().len();
        if total == 0 {
            return 0.0;
        }
        let overlap = stored
            .hashes()
            .iter()
            .filter(|&&h| self.oldest_segment_with(h) == Some(source) && target.contains(&h))
            .count();
        overlap as f64 / total as f64
    }

    /// Algorithm 1: the stored source segments whose disclosure
    /// requirement the fingerprint of `target` violates.
    ///
    /// A source `p` with threshold `t` is reported when
    /// `|F_authoritative(p) ∩ F(target)| ≥ max(1, t · |F(p)|)`, i.e. the
    /// paper's "at least `t` of the original is found elsewhere" reading of
    /// §4.2/§6.1 (`Dpar ≥ Tpar`), with the extra requirement of at least
    /// one shared hash so that `t = 0` means "any leaked hash" rather than
    /// "everything always".
    ///
    /// `target` itself is never reported, even if stored.
    pub fn disclosing_sources(
        &self,
        target: SegmentId,
        fingerprint: &Fingerprint,
    ) -> Vec<DisclosureReport> {
        self.disclosing_sources_of_hashes(target, &fingerprint.hash_set())
    }

    /// [`FingerprintStore::disclosing_sources`] over a pre-computed set of
    /// distinct hashes.
    pub fn disclosing_sources_of_hashes(
        &self,
        target: SegmentId,
        target_hashes: &HashSet<u32>,
    ) -> Vec<DisclosureReport> {
        disclosure::run_algorithm_1(self, target, target_hashes)
    }

    /// Removes a segment's stored fingerprint and every first-sighting
    /// record it owns.
    ///
    /// Subsequent observations of those hashes establish fresh ownership.
    /// This backs the periodic removal of old fingerprints recommended in
    /// §4.4. Returns `true` if the segment was stored.
    pub fn remove_segment(&mut self, segment: SegmentId) -> bool {
        let existed = self.segments.remove(segment);
        if existed {
            self.hashes.remove_sightings_of(segment);
        }
        existed
    }

    /// Evicts every segment last updated strictly before `cutoff`,
    /// returning how many were removed.
    pub fn evict_older_than(&mut self, cutoff: Timestamp) -> usize {
        let victims = self.segments.segments_older_than(cutoff);
        for &segment in &victims {
            self.remove_segment(segment);
        }
        victims.len()
    }

    /// Number of stored segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of distinct hashes with a first-sighting record.
    pub fn hash_count(&self) -> usize {
        self.hashes.len()
    }

    /// Read access to a stored segment.
    pub fn segment(&self, segment: SegmentId) -> Option<&StoredSegment> {
        self.segments.get(segment)
    }

    /// Iterates over all stored segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.segments.ids()
    }

    /// The current logical time (the timestamp the *next* observation will
    /// receive).
    pub fn now(&self) -> Timestamp {
        self.clock.peek()
    }

    /// A snapshot of every first-sighting record (for serialisation).
    pub fn sightings(&self) -> Vec<(u32, Sighting)> {
        self.hashes.entries()
    }

    /// Restores a segment with an explicit timestamp, bypassing the clock
    /// (deserialisation path; see [`codec`]).
    pub(crate) fn restore_segment(
        &mut self,
        segment: SegmentId,
        hashes: HashSet<u32>,
        threshold: f64,
        updated: Timestamp,
    ) {
        self.segments.upsert(segment, hashes, threshold, updated);
    }

    /// Restores a first-sighting record (deserialisation path).
    pub(crate) fn restore_sighting(&mut self, hash: u32, segment: SegmentId, time: Timestamp) {
        self.hashes.record_first_sighting(hash, segment, time);
    }

    /// Restores the clock so future observations are timestamped after
    /// every restored record (deserialisation path).
    pub(crate) fn restore_clock(&mut self, at_least: Timestamp) {
        self.clock.advance_to(at_least);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};

    fn fp() -> Fingerprinter {
        Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        )
    }

    const SECRET: &str = "the acquisition of initech will be announced on the first of march \
                          at a press event in zurich by the chief executive";

    #[test]
    fn copy_paste_is_detected() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        let pasted = format!("notes from the meeting follow {SECRET} end of notes");
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(&pasted));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].source, SegmentId::new(1));
        assert!(reports[0].disclosure > 0.8);
    }

    #[test]
    fn unrelated_text_is_not_reported() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        let other = "completely unrelated prose about gardening tulips and daffodils in spring";
        assert!(store
            .disclosing_sources(SegmentId::new(2), &fp.fingerprint(other))
            .is_empty());
    }

    #[test]
    fn target_never_reports_itself() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        let print = fp.fingerprint(SECRET);
        store.observe(SegmentId::new(1), &print, 0.5);
        assert!(store.disclosing_sources(SegmentId::new(1), &print).is_empty());
    }

    #[test]
    fn authoritative_fingerprint_excludes_borrowed_hashes() {
        // Figure 7: B is a superset of A; B's authoritative fingerprint
        // contains only B's new text.
        let fp = fp();
        let mut store = FingerprintStore::new();
        let a_text = SECRET;
        let b_text = format!("{SECRET} additionally the deal includes all overseas subsidiaries and patents");
        let a_print = fp.fingerprint(a_text);
        let b_print = fp.fingerprint(&b_text);
        store.observe(SegmentId::new(1), &a_print, 0.5);
        store.observe(SegmentId::new(2), &b_print, 0.5);

        let b_auth = store.authoritative_fingerprint(SegmentId::new(2));
        let a_hashes = a_print.hash_set();
        // No hash of A's fingerprint is authoritative for B.
        assert!(b_auth.is_disjoint(&a_hashes));
        // A's own fingerprint stays fully authoritative.
        assert_eq!(
            store.authoritative_fingerprint(SegmentId::new(1)),
            a_hashes
        );
    }

    #[test]
    fn overlap_compensation_reports_only_true_source() {
        // Figure 7 end-to-end: paste A's text into C after B (a superset of
        // A) was stored. Only A must be reported.
        let fp = fp();
        let mut store = FingerprintStore::new();
        let b_text = format!("{SECRET} additionally the deal includes all overseas subsidiaries");
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        store.observe(SegmentId::new(2), &fp.fingerprint(&b_text), 0.5);

        let c_print = fp.fingerprint(SECRET);
        let reports = store.disclosing_sources(SegmentId::new(3), &c_print);
        let sources: Vec<SegmentId> = reports.iter().map(|r| r.source).collect();
        assert_eq!(sources, vec![SegmentId::new(1)]);
    }

    #[test]
    fn editing_a_segment_replaces_its_fingerprint() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        let id = SegmentId::new(1);
        store.observe(id, &fp.fingerprint(SECRET), 0.5);
        let before = store.segment(id).unwrap().hashes().len();
        assert!(before > 0);
        let rewritten = "entirely different content now lives here with nothing in common";
        store.observe(id, &fp.fingerprint(rewritten), 0.5);
        let stored: HashSet<u32> = store.segment(id).unwrap().hashes().iter().copied().collect();
        assert_eq!(stored, fp.fingerprint(rewritten).hash_set());
        // The old hashes still have first-sighting records (DBhash keeps
        // history) but the segment's current fingerprint changed.
        assert!(store.hash_count() >= stored.len());
    }

    #[test]
    fn threshold_zero_fires_on_any_shared_hash() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.0);
        // Take a fragment long enough to guarantee one shared hash.
        let fragment = &SECRET[..60];
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(fragment));
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn threshold_one_requires_full_disclosure() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 1.0);
        // A fragment does not fully disclose.
        let fragment = &SECRET[..SECRET.len() / 2];
        assert!(store
            .disclosing_sources(SegmentId::new(2), &fp.fingerprint(fragment))
            .is_empty());
        // The full text does.
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(SECRET));
        assert_eq!(reports.len(), 1);
        assert!((reports[0].disclosure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remove_segment_releases_hash_ownership() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        let print = fp.fingerprint(SECRET);
        store.observe(SegmentId::new(1), &print, 0.5);
        assert!(store.remove_segment(SegmentId::new(1)));
        assert!(!store.remove_segment(SegmentId::new(1)));
        assert_eq!(store.segment_count(), 0);
        // Ownership is re-established by the next observer.
        store.observe(SegmentId::new(2), &print, 0.5);
        let some_hash = *print.hash_set().iter().next().unwrap();
        assert_eq!(store.oldest_segment_with(some_hash), Some(SegmentId::new(2)));
    }

    #[test]
    fn eviction_by_age() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        let cutoff = store.now();
        store.observe(
            SegmentId::new(2),
            &fp.fingerprint("some other long enough text to produce a fingerprint"),
            0.5,
        );
        assert_eq!(store.evict_older_than(cutoff), 1);
        assert!(store.segment(SegmentId::new(1)).is_none());
        assert!(store.segment(SegmentId::new(2)).is_some());
    }

    #[test]
    fn empty_fingerprints_never_report() {
        let fp = fp();
        let mut store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint("tiny"), 0.0);
        assert!(store
            .disclosing_sources(SegmentId::new(2), &fp.fingerprint("tiny"))
            .is_empty());
        assert_eq!(store.disclosure_from(SegmentId::new(1), &HashSet::new()), 0.0);
    }
}
