//! Fingerprint databases and the information disclosure computation of
//! BrowserFlow (§4.2–§4.4 of the paper).
//!
//! The central type is [`FingerprintStore`], which combines the two data
//! structures of Algorithm 1:
//!
//! - **`DBhash`** ([`hash_db`]): associations from fingerprint hashes to
//!   the segment in which each hash was *first* observed, with a logical
//!   timestamp. This answers `oldestParagraphWith(h)` and underpins
//!   *authoritative fingerprints* — the overlap-compensation mechanism of
//!   §4.3 (Figure 7).
//! - **`DBpar`** ([`segment_db`]): associations from segments to the last
//!   fingerprint calculated for each, plus the segment's disclosure
//!   threshold.
//!
//! On top of these, [`FingerprintStore::disclosing_sources`] implements the
//! paper's Algorithm 1: given a segment's fingerprint, find every stored
//! source segment whose *authoritative* content it discloses beyond that
//! source's threshold. The same machinery serves both tracking
//! granularities (paragraphs and whole documents, §4.1) — BrowserFlow
//! instantiates one store per granularity.
//!
//! # Example
//!
//! ```rust
//! use browserflow_fingerprint::Fingerprinter;
//! use browserflow_store::{FingerprintStore, SegmentId};
//!
//! let fp = Fingerprinter::default();
//! let mut store = FingerprintStore::new();
//!
//! let secret = "the acquisition of initech will be announced on the first of march \
//!               at a press event in zurich";
//! store.observe(SegmentId::new(1), &fp.fingerprint(secret), 0.5);
//!
//! // A user pastes the text (lightly edited) into another document.
//! let pasted = format!("meeting notes: {secret} -- please keep this quiet");
//! let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(&pasted));
//! assert_eq!(reports.len(), 1);
//! assert_eq!(reports[0].source, SegmentId::new(1));
//! assert!(reports[0].disclosure >= 0.5);
//! ```

#![warn(missing_docs)]
// `unsafe` is denied crate-wide and allowed in exactly one module:
// `mmap`, which maps cold shard files for the zero-copy read path.
#![deny(unsafe_code)]

mod cache;
mod clock;
pub mod codec;
mod disclosure;
mod encryption;
pub mod fx;
pub mod hash_db;
mod incremental;
mod intersect;
mod mmap;
pub mod persist;
pub mod pool;
pub mod segment_db;
pub mod sharded;
mod tier;

pub use cache::{DecisionCache, FingerprintDigest};
pub use clock::{LogicalClock, Timestamp};
pub use codec::{CodecError, RestoreReport, SealedStore};
pub use disclosure::{disclosure_between, DisclosureReport};
#[doc(hidden)]
pub use disclosure::{probe_disclosing_sources, probe_evaluate_candidate};
pub use encryption::{EncryptionError, SealedBytes, StoreKey};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hash_db::{HashDb, Sighting, SightingOutcome};
pub use incremental::IncrementalChecker;
pub use intersect::intersection_count;
#[allow(deprecated)]
pub use persist::{
    load_from_dir, load_sealed_from_dir, persist_sealed_store, persist_sealed_to_dir,
    persist_to_dir,
};
pub use persist::{PersistError, PersistOptions, StoreFormat, StoreOpenOptions, TierMode};
pub use segment_db::{SegmentDb, StoredSegment};
pub use sharded::{BatchSightings, SegmentWrite, ShardedHashDb, ShardedSegmentDb};
pub use tier::{SegmentHandle, TierSweep};

use browserflow_fingerprint::Fingerprint;
use std::collections::HashSet;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies a tracked text segment (a paragraph or a whole document,
/// depending on which granularity the store serves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(u64);

impl SegmentId {
    /// Creates a segment id from a raw value.
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw value.
    pub const fn get(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "segment-{}", self.0)
    }
}

impl From<u64> for SegmentId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

/// A point-in-time snapshot of the store's concurrency counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of stripes in each sharded database.
    pub shard_count: usize,
    /// Per-shard entry counts of `DBhash`.
    pub hash_shard_sizes: Vec<usize>,
    /// Per-shard entry counts of `DBpar`.
    pub segment_shard_sizes: Vec<usize>,
    /// `DBhash` lock acquisitions that had to wait for another holder.
    pub hash_lock_contention: u64,
    /// `DBpar` lock acquisitions that had to wait for another holder.
    pub segment_lock_contention: u64,
    /// Per-shard breakdown of `hash_lock_contention`.
    pub hash_shard_contention: Vec<u64>,
    /// Per-shard breakdown of `segment_lock_contention`.
    pub segment_shard_contention: Vec<u64>,
    /// Algorithm 1 runs that fanned candidates out over worker threads.
    pub parallel_checks: u64,
    /// Algorithm 1 runs evaluated on the calling thread.
    pub sequential_checks: u64,
    /// Age-based eviction sweeps ([`FingerprintStore::evict_older_than`]).
    pub eviction_scans: u64,
    /// Segments inspected across all eviction sweeps.
    pub eviction_scanned: u64,
    /// Segments actually evicted across all sweeps.
    pub eviction_evicted: u64,
    /// Stripes currently backed by a cold (mmap'd) shard file.
    pub cold_shards: usize,
    /// Cold stripes whose file view is a real `mmap` — the remainder
    /// fell back to an aligned heap copy (non-unix, or a failed map).
    pub cold_mapped_shards: usize,
    /// Live segment records served from cold files.
    pub cold_segments: usize,
    /// Live first-sighting records served from cold files.
    pub cold_sightings: usize,
    /// Cold segment records copied into the hot tier for mutation.
    pub tier_promoted_segments: u64,
    /// Cold sightings displaced into the hot tier by earlier observations.
    pub tier_promoted_sightings: u64,
    /// Stripes rewritten as cold files by demotion sweeps.
    pub tier_demoted_shards: u64,
    /// Observations ingested through [`FingerprintStore::observe_batch`]
    /// (each batch entry counts once, mirroring `observe` call counts).
    pub batched_observes: u64,
    /// Stripe lock round-trips taken by batched ingest passes. The
    /// per-observation path pays one round-trip per hash plus one per
    /// segment write; the difference against `batch_hashes_recorded` is
    /// the acquisitions the batching saved.
    pub batch_lock_acquisitions: u64,
    /// First-sighting records written through batched ingest passes.
    pub batch_hashes_recorded: u64,
}

impl StoreStats {
    /// Total stored segment fingerprints (sum over `DBpar` shards).
    pub fn total_entries(&self) -> usize {
        self.segment_shard_sizes.iter().sum()
    }

    /// Total distinct first-sighting hashes (sum over `DBhash` shards).
    pub fn total_hashes(&self) -> usize {
        self.hash_shard_sizes.iter().sum()
    }
}

/// The combined fingerprint store: `DBhash` + `DBpar` + a logical clock.
///
/// All operations are deterministic; time is a logical counter advanced on
/// every observation, which is all `oldestParagraphWith` needs (a total
/// order on first sightings).
///
/// The store is internally lock-striped ([`sharded`]): every method takes
/// `&self` and the store is [`Sync`], so concurrent checkers and observers
/// need no external lock. An individual [`FingerprintStore::observe`] is
/// atomic per shard, not globally: a concurrent checker may see some of an
/// in-flight observation's first sightings before its `DBpar` entry lands.
/// First-sighting ownership stays deterministic regardless, because each
/// observation draws a unique logical timestamp and `DBhash` keeps the
/// earliest per hash.
#[derive(Debug, Default)]
pub struct FingerprintStore {
    clock: LogicalClock,
    hashes: ShardedHashDb,
    segments: ShardedSegmentDb,
    parallel_checks: AtomicU64,
    sequential_checks: AtomicU64,
    eviction_scans: AtomicU64,
    eviction_scanned: AtomicU64,
    eviction_evicted: AtomicU64,
    /// The cold directory this store is attached to, if any: where
    /// demotion sweeps write shard files and the manifest state they
    /// maintain. Also serialises demotion sweeps.
    pub(crate) tier: parking_lot::Mutex<Option<tier::TierState>>,
    pub(crate) tier_demoted_shards: AtomicU64,
    batched_observes: AtomicU64,
    batch_lock_acquisitions: AtomicU64,
    batch_hashes_recorded: AtomicU64,
}

impl FingerprintStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with an explicit stripe count (rounded up to
    /// a power of two, minimum 1). A cold open uses this to match the
    /// stripe count of the on-disk manifest so shard files attach 1:1.
    pub fn with_shard_count(shards: usize) -> Self {
        Self {
            hashes: ShardedHashDb::with_shards(shards),
            segments: ShardedSegmentDb::with_shards(shards),
            ..Self::default()
        }
    }

    /// Records (or re-records after an edit) the fingerprint of `segment`.
    ///
    /// Hashes never seen before anywhere are credited to `segment` as
    /// their authoritative first sighting, timestamped now. The segment's
    /// previous fingerprint, if any, is replaced — `DBpar` stores only the
    /// *last* fingerprint per segment — but historical first-sighting
    /// records in `DBhash` are retained, as §4.3 requires.
    ///
    /// `threshold` is the segment's disclosure threshold `T ∈ [0, 1]`
    /// (clamped).
    ///
    /// Alongside the first-sighting records, the observation maintains the
    /// segment's **authoritative hash set** incrementally: each
    /// [`SightingOutcome`] says whether the segment now owns the hash, and
    /// a `Displaced` outcome names the previous owner whose stored
    /// authoritative set is pruned in place. No per-check `DBhash` probing
    /// is needed afterwards — candidate evaluation intersects the stored
    /// sorted slices directly.
    pub fn observe(&self, segment: SegmentId, fingerprint: &Fingerprint, threshold: f64) {
        let now = self.clock.tick();
        let distinct = fingerprint.distinct_hashes();
        let epoch_before = self.hashes.displacement_epoch();
        let mut owned: Vec<u32> = Vec::with_capacity(distinct.len());
        let mut revoked: Vec<(SegmentId, u32)> = Vec::new();
        for &hash in distinct {
            match self.hashes.record_sighting(hash, segment, now) {
                SightingOutcome::Installed => owned.push(hash),
                SightingOutcome::Displaced(previous) => {
                    owned.push(hash);
                    if previous != segment {
                        revoked.push((previous, hash));
                    }
                }
                SightingOutcome::Kept(owner) => {
                    if owner == segment {
                        owned.push(hash);
                    }
                }
            }
        }
        self.segments.upsert(
            segment,
            distinct.to_vec(),
            owned.clone(),
            threshold.clamp(0.0, 1.0),
            now,
        );
        for &(previous, hash) in &revoked {
            self.segments.revoke_authoritative(previous, hash);
        }
        // A displacement that raced this observation (ours above, or a
        // concurrent observer's out-of-order insert between our
        // `record_sighting` and our `upsert`) may have invalidated
        // ownership we just wrote. Displacements are rare — the epoch only
        // moves on out-of-order inserts — so re-validate only when it did.
        // The re-validation is revoke-only: it never *adds* authority, so
        // it cannot resurrect a hash another thread revoked concurrently.
        if self.hashes.displacement_epoch() != epoch_before {
            for &hash in &owned {
                if self.oldest_segment_with(hash) != Some(segment) {
                    self.segments.revoke_authoritative(segment, hash);
                }
            }
        }
    }

    /// Records a whole batch of observations with one stripe lock
    /// round-trip per touched stripe instead of one per hash.
    ///
    /// Semantically this is the sequential loop
    /// `for (s, f, t) in entries { store.observe(s, f, t) }` — each entry
    /// draws its own logical timestamp (one atomic clock advance reserves
    /// the whole contiguous range), duplicate segments resolve
    /// last-write-wins exactly as repeated `observe` calls do, and
    /// first-sighting ownership, authoritative sets and revocations come
    /// out identical (property-tested). The difference is purely
    /// mechanical: sightings are grouped by hash stripe and `DBpar` writes
    /// by segment stripe, so each stripe lock is taken once per batch, and
    /// the displacement-epoch revalidation runs once over the whole batch
    /// instead of once per entry.
    ///
    /// The end-of-batch revalidation is equivalent to the per-entry one
    /// for a single writer: batch timestamps strictly increase, so within
    /// the batch a hash's ownership can only move *from* a pre-batch
    /// (cold) record *to* the first batch entry carrying it — never away
    /// from a batch entry — leaving every per-entry check with the same
    /// view the end-of-batch check has. Under concurrency it keeps the
    /// same conservative revoke-only guarantee as [`FingerprintStore::observe`].
    pub fn observe_batch(&self, entries: &[(SegmentId, &Fingerprint, f64)]) {
        if entries.is_empty() {
            return;
        }
        let base = self.clock.tick_many(entries.len() as u64);
        let epoch_before = self.hashes.displacement_epoch();

        // One `(segment, timestamp)` row per entry plus compact
        // `(hash, entry)` pairs — `spans` maps the pair range back to its
        // entry.
        let meta: Vec<(SegmentId, Timestamp)> = entries
            .iter()
            .enumerate()
            .map(|(index, (segment, _, _))| (*segment, Timestamp::new(base.get() + index as u64)))
            .collect();
        let total: usize = entries
            .iter()
            .map(|(_, f, _)| f.distinct_hashes().len())
            .sum();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(total);
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
        for (index, (_, fingerprint, _)) in entries.iter().enumerate() {
            let start = pairs.len();
            for &hash in fingerprint.distinct_hashes() {
                pairs.push((hash, index as u32));
            }
            spans.push((start, pairs.len()));
        }
        let sighted = self.hashes.record_sightings_indexed(&pairs, &meta);
        let hash_locks = sighted.locks;

        // Turn the ownership bitmap into the same `DBpar` write sequence
        // the sequential loop would issue: upsert, then that entry's
        // revocations, then the next entry. Bucketing preserves
        // per-segment order, so interleavings against duplicate segments
        // resolve identically.
        let mut writes: Vec<SegmentWrite> = Vec::with_capacity(entries.len());
        let mut displaced = sighted.displaced.iter().peekable();
        for (index, (segment, fingerprint, threshold)) in entries.iter().enumerate() {
            let (start, end) = spans[index];
            let mut owned: Vec<u32> = Vec::with_capacity(end - start);
            for (&(hash, _), &is_owned) in pairs[start..end].iter().zip(&sighted.owned[start..end])
            {
                if is_owned {
                    owned.push(hash);
                }
            }
            writes.push(SegmentWrite::Upsert {
                segment: *segment,
                hashes: fingerprint.distinct_hashes().to_vec(),
                authoritative: owned,
                threshold: threshold.clamp(0.0, 1.0),
                now: meta[index].1,
            });
            // Displacements arrive in submission order, so this entry's
            // are exactly the next ones that fall inside its span.
            while let Some(&&(at, previous)) = displaced.peek() {
                if at as usize >= end {
                    break;
                }
                displaced.next();
                if previous != *segment {
                    writes.push(SegmentWrite::Revoke {
                        segment: previous,
                        hash: pairs[at as usize].0,
                    });
                }
            }
        }
        let mut segment_locks = self.segments.apply_writes_batch(writes);

        // Revalidation, once over the whole batch (see the doc comment for
        // why this matches the per-entry check for a single writer).
        if self.hashes.displacement_epoch() != epoch_before {
            let mut revalidations: Vec<SegmentWrite> = Vec::new();
            for (index, (segment, _, _)) in entries.iter().enumerate() {
                let (start, end) = spans[index];
                for (&(hash, _), &is_owned) in
                    pairs[start..end].iter().zip(&sighted.owned[start..end])
                {
                    if is_owned && self.oldest_segment_with(hash) != Some(*segment) {
                        revalidations.push(SegmentWrite::Revoke {
                            segment: *segment,
                            hash,
                        });
                    }
                }
            }
            if !revalidations.is_empty() {
                segment_locks += self.segments.apply_writes_batch(revalidations);
            }
        }

        self.batched_observes
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        self.batch_lock_acquisitions
            .fetch_add(hash_locks + segment_locks, Ordering::Relaxed);
        self.batch_hashes_recorded
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
    }

    /// Updates just the disclosure threshold of an already-observed
    /// segment. Returns `false` if the segment is unknown.
    pub fn set_threshold(&self, segment: SegmentId, threshold: f64) -> bool {
        self.segments
            .set_threshold(segment, threshold.clamp(0.0, 1.0))
    }

    /// The segment in which `hash` was first observed, if any
    /// (`oldestParagraphWith` of Algorithm 1).
    pub fn oldest_segment_with(&self, hash: u32) -> Option<SegmentId> {
        self.hashes.oldest_with(hash).map(|s| s.segment)
    }

    /// The *authoritative* part of a stored segment's fingerprint: the
    /// hashes of its current fingerprint whose first sighting anywhere was
    /// this segment (§4.3).
    ///
    /// Served from the incrementally maintained index — no `DBhash`
    /// probing (equivalence with the probe-based computation is
    /// property-tested).
    pub fn authoritative_fingerprint(&self, segment: SegmentId) -> HashSet<u32> {
        let Some(stored) = self.segment(segment) else {
            return HashSet::new();
        };
        stored.authoritative().iter().copied().collect()
    }

    /// The disclosure `D(source, target)` of stored segment `source`
    /// towards a fingerprint `target`:
    ///
    /// `|F_authoritative(source) ∩ target| / |F_authoritative(source)|`
    ///
    /// Both sides of the ratio use the authoritative fingerprint, as in
    /// the paper's `computeDisclosure(F_A(p), ·)` — a source is judged on
    /// how much of *its own* content leaked, not on content it borrowed
    /// from older segments (which those segments report themselves).
    ///
    /// Returns 0.0 if the source is unknown or owns no hashes.
    pub fn disclosure_from<S: BuildHasher>(
        &self,
        source: SegmentId,
        target: &HashSet<u32, S>,
    ) -> f64 {
        let Some(stored) = self.segment(source) else {
            return 0.0;
        };
        let authoritative = stored.authoritative();
        if authoritative.is_empty() {
            return 0.0;
        }
        let mut sorted_target: Vec<u32> = target.iter().copied().collect();
        sorted_target.sort_unstable();
        let overlap = intersect::intersection_count(authoritative, &sorted_target);
        overlap as f64 / authoritative.len() as f64
    }

    /// Algorithm 1: the stored source segments whose disclosure
    /// requirement the fingerprint of `target` violates.
    ///
    /// A source `p` with threshold `t` is reported when
    /// `|F_authoritative(p) ∩ F(target)| ≥ max(1, t · |F_authoritative(p)|)`, i.e. the
    /// paper's "at least `t` of the original is found elsewhere" reading of
    /// §4.2/§6.1 (`Dpar ≥ Tpar`), with the extra requirement of at least
    /// one shared hash so that `t = 0` means "any leaked hash" rather than
    /// "everything always".
    ///
    /// `target` itself is never reported, even if stored.
    pub fn disclosing_sources(
        &self,
        target: SegmentId,
        fingerprint: &Fingerprint,
    ) -> Vec<DisclosureReport> {
        // `distinct_hashes` is the cached sorted slice — no allocation and
        // no re-sorting on the hot path.
        self.disclosing_sources_of_sorted(target, fingerprint.distinct_hashes())
    }

    /// [`FingerprintStore::disclosing_sources`] over a pre-computed set of
    /// distinct hashes (sorted once internally).
    pub fn disclosing_sources_of_hashes<S: BuildHasher>(
        &self,
        target: SegmentId,
        target_hashes: &HashSet<u32, S>,
    ) -> Vec<DisclosureReport> {
        let mut sorted: Vec<u32> = target_hashes.iter().copied().collect();
        sorted.sort_unstable();
        self.disclosing_sources_of_sorted(target, &sorted)
    }

    /// [`FingerprintStore::disclosing_sources`] over a sorted,
    /// deduplicated slice of distinct hashes — the zero-copy entry point
    /// for callers that already hold `Fingerprint::distinct_hashes`.
    pub fn disclosing_sources_of_sorted(
        &self,
        target: SegmentId,
        target_sorted: &[u32],
    ) -> Vec<DisclosureReport> {
        disclosure::run_algorithm_1(self, target, target_sorted, disclosure::default_workers())
    }

    /// [`FingerprintStore::disclosing_sources_of_hashes`] with an explicit
    /// worker-thread budget for the candidate-evaluation fan-out.
    ///
    /// `workers <= 1` forces the sequential path; larger values fan the
    /// candidates over the persistent worker pool once there are enough
    /// candidates to amortise the hand-off. The output is byte-identical
    /// across worker counts (property-tested).
    pub fn disclosing_sources_with_workers<S: BuildHasher>(
        &self,
        target: SegmentId,
        target_hashes: &HashSet<u32, S>,
        workers: usize,
    ) -> Vec<DisclosureReport> {
        let mut sorted: Vec<u32> = target_hashes.iter().copied().collect();
        sorted.sort_unstable();
        disclosure::run_algorithm_1(self, target, &sorted, workers)
    }

    /// Removes a segment's stored fingerprint and every first-sighting
    /// record it owns.
    ///
    /// Subsequent observations of those hashes establish fresh ownership.
    /// This backs the periodic removal of old fingerprints recommended in
    /// §4.4. Returns `true` if the segment was stored.
    pub fn remove_segment(&self, segment: SegmentId) -> bool {
        let existed = self.segments.remove(segment);
        if existed {
            self.hashes.remove_sightings_of(segment);
        }
        existed
    }

    /// Evicts every segment last updated strictly before `cutoff`,
    /// returning how many were removed.
    ///
    /// Each call counts one eviction sweep in [`StoreStats`]; the number of
    /// segments the sweep inspected and the number actually evicted are
    /// accumulated alongside, so long-running deployments can tell how much
    /// work the periodic cleanup of §4.4 costs.
    pub fn evict_older_than(&self, cutoff: Timestamp) -> usize {
        self.evict_segments_older_than(cutoff).len()
    }

    /// Like [`FingerprintStore::evict_older_than`], but returns the ids of
    /// the evicted segments so callers holding derived per-segment state
    /// (registries, keystroke sessions, caches) can clean up alongside.
    pub fn evict_segments_older_than(&self, cutoff: Timestamp) -> Vec<SegmentId> {
        self.eviction_scans.fetch_add(1, Ordering::Relaxed);
        self.eviction_scanned
            .fetch_add(self.segments.len() as u64, Ordering::Relaxed);
        let victims = self.segments.segments_older_than(cutoff);
        for &segment in &victims {
            self.remove_segment(segment);
        }
        self.eviction_evicted
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        victims
    }

    /// Number of stored segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of distinct hashes with a first-sighting record.
    pub fn hash_count(&self) -> usize {
        self.hashes.len()
    }

    /// Number of lock stripes in the sharded databases (also the shard
    /// count the v2 codec uses by default).
    pub fn shard_count(&self) -> usize {
        self.hashes.shard_count()
    }

    /// Read access to a stored segment, as an owned handle: no shard lock
    /// is held while the caller inspects it. Cold-tier records are copied
    /// out — use [`FingerprintStore::segment_handle`] for the zero-copy
    /// path.
    pub fn segment(&self, segment: SegmentId) -> Option<Arc<StoredSegment>> {
        self.segments.get(segment)
    }

    /// A zero-copy [`SegmentHandle`] to a stored segment, wherever it
    /// lives: hot records hand out an `Arc` clone, cold records a view
    /// straight into the mapped shard file. This is the handle Algorithm 1
    /// evaluates candidates through.
    pub fn segment_handle(&self, segment: SegmentId) -> Option<SegmentHandle> {
        self.segments.get_handle(segment)
    }

    /// Iterates over all stored segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + 'static {
        self.segments.ids().into_iter()
    }

    /// A snapshot of the shard-occupancy, lock-contention,
    /// parallel-vs-sequential check and eviction counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            shard_count: self.hashes.shard_count(),
            hash_shard_sizes: self.hashes.shard_sizes(),
            segment_shard_sizes: self.segments.shard_sizes(),
            hash_lock_contention: self.hashes.contention_count(),
            segment_lock_contention: self.segments.contention_count(),
            hash_shard_contention: self.hashes.contention_counts(),
            segment_shard_contention: self.segments.contention_counts(),
            parallel_checks: self.parallel_checks.load(Ordering::Relaxed),
            sequential_checks: self.sequential_checks.load(Ordering::Relaxed),
            eviction_scans: self.eviction_scans.load(Ordering::Relaxed),
            eviction_scanned: self.eviction_scanned.load(Ordering::Relaxed),
            eviction_evicted: self.eviction_evicted.load(Ordering::Relaxed),
            cold_shards: self.segments.cold_shard_count(),
            cold_mapped_shards: self.segments.cold_mapped_count(),
            cold_segments: self.segments.cold_live(),
            cold_sightings: self.hashes.cold_live(),
            tier_promoted_segments: self.segments.promoted_count(),
            tier_promoted_sightings: self.hashes.promoted_count(),
            tier_demoted_shards: self.tier_demoted_shards.load(Ordering::Relaxed),
            batched_observes: self.batched_observes.load(Ordering::Relaxed),
            batch_lock_acquisitions: self.batch_lock_acquisitions.load(Ordering::Relaxed),
            batch_hashes_recorded: self.batch_hashes_recorded.load(Ordering::Relaxed),
        }
    }

    /// Counts one Algorithm 1 run against the parallel or sequential path
    /// (called by the disclosure module).
    pub(crate) fn count_check(&self, parallel: bool) {
        if parallel {
            self.parallel_checks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sequential_checks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current logical time (the timestamp the *next* observation will
    /// receive).
    pub fn now(&self) -> Timestamp {
        self.clock.peek()
    }

    /// A snapshot of every first-sighting record (for serialisation).
    pub fn sightings(&self) -> Vec<(u32, Sighting)> {
        self.hashes.entries()
    }

    /// Restores a segment with an explicit timestamp, bypassing the clock
    /// (deserialisation path; see [`codec`]). `hashes` must be sorted and
    /// deduplicated. The authoritative set is left empty: sightings are
    /// replayed in arbitrary shard order during a restore, so ownership is
    /// only known once every record landed —
    /// [`FingerprintStore::rebuild_authoritative_index`] must run after
    /// the last restore call.
    pub(crate) fn restore_segment(
        &self,
        segment: SegmentId,
        hashes: Vec<u32>,
        threshold: f64,
        updated: Timestamp,
    ) {
        self.segments
            .upsert(segment, hashes, Vec::new(), threshold, updated);
    }

    /// Restores a first-sighting record (deserialisation path).
    pub(crate) fn restore_sighting(&self, hash: u32, segment: SegmentId, time: Timestamp) {
        self.hashes.record_sighting(hash, segment, time);
    }

    /// Restores the clock so future observations are timestamped after
    /// every restored record (deserialisation path).
    pub(crate) fn restore_clock(&self, at_least: Timestamp) {
        self.clock.advance_to(at_least);
    }

    /// Recomputes every stored segment's authoritative set from `DBhash`
    /// (one probe per stored hash), fanning segments out over `workers`
    /// scoped threads. Called once at the end of a restore — the per-check
    /// paths never probe.
    pub(crate) fn rebuild_authoritative_index(&self, workers: usize) {
        let ids = self.segments.ids();
        let rebuild_one = |id: SegmentId| {
            let Some(stored) = self.segment(id) else {
                return;
            };
            let owned: Vec<u32> = stored
                .hashes()
                .iter()
                .copied()
                .filter(|&hash| self.oldest_segment_with(hash) == Some(id))
                .collect();
            self.segments.set_authoritative(id, owned);
        };
        if workers > 1 && ids.len() >= workers * 4 {
            let chunk_len = ids.len().div_ceil(workers);
            crossbeam::thread::scope(|scope| {
                for chunk in ids.chunks(chunk_len) {
                    scope.spawn(move |_| chunk.iter().copied().for_each(rebuild_one));
                }
            })
            .expect("index rebuild threads join cleanly");
        } else {
            ids.into_iter().for_each(rebuild_one);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browserflow_fingerprint::{FingerprintConfig, Fingerprinter};

    fn fp() -> Fingerprinter {
        Fingerprinter::new(
            FingerprintConfig::builder()
                .ngram_len(6)
                .window(4)
                .build()
                .unwrap(),
        )
    }

    const SECRET: &str = "the acquisition of initech will be announced on the first of march \
                          at a press event in zurich by the chief executive";

    #[test]
    fn copy_paste_is_detected() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        let pasted = format!("notes from the meeting follow {SECRET} end of notes");
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(&pasted));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].source, SegmentId::new(1));
        assert!(reports[0].disclosure > 0.8);
    }

    #[test]
    fn unrelated_text_is_not_reported() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        let other = "completely unrelated prose about gardening tulips and daffodils in spring";
        assert!(store
            .disclosing_sources(SegmentId::new(2), &fp.fingerprint(other))
            .is_empty());
    }

    #[test]
    fn target_never_reports_itself() {
        let fp = fp();
        let store = FingerprintStore::new();
        let print = fp.fingerprint(SECRET);
        store.observe(SegmentId::new(1), &print, 0.5);
        assert!(store
            .disclosing_sources(SegmentId::new(1), &print)
            .is_empty());
    }

    #[test]
    fn authoritative_fingerprint_excludes_borrowed_hashes() {
        // Figure 7: B is a superset of A; B's authoritative fingerprint
        // contains only B's new text.
        let fp = fp();
        let store = FingerprintStore::new();
        let a_text = SECRET;
        let b_text = format!(
            "{SECRET} additionally the deal includes all overseas subsidiaries and patents"
        );
        let a_print = fp.fingerprint(a_text);
        let b_print = fp.fingerprint(&b_text);
        store.observe(SegmentId::new(1), &a_print, 0.5);
        store.observe(SegmentId::new(2), &b_print, 0.5);

        let b_auth = store.authoritative_fingerprint(SegmentId::new(2));
        let a_hashes = a_print.hash_set();
        // No hash of A's fingerprint is authoritative for B.
        assert!(b_auth.is_disjoint(&a_hashes));
        // A's own fingerprint stays fully authoritative.
        assert_eq!(store.authoritative_fingerprint(SegmentId::new(1)), a_hashes);
    }

    #[test]
    fn overlap_compensation_reports_only_true_source() {
        // Figure 7 end-to-end: paste A's text into C after B (a superset of
        // A) was stored. Only A must be reported.
        let fp = fp();
        let store = FingerprintStore::new();
        let b_text = format!("{SECRET} additionally the deal includes all overseas subsidiaries");
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        store.observe(SegmentId::new(2), &fp.fingerprint(&b_text), 0.5);

        let c_print = fp.fingerprint(SECRET);
        let reports = store.disclosing_sources(SegmentId::new(3), &c_print);
        let sources: Vec<SegmentId> = reports.iter().map(|r| r.source).collect();
        assert_eq!(sources, vec![SegmentId::new(1)]);
    }

    #[test]
    fn editing_a_segment_replaces_its_fingerprint() {
        let fp = fp();
        let store = FingerprintStore::new();
        let id = SegmentId::new(1);
        store.observe(id, &fp.fingerprint(SECRET), 0.5);
        let before = store.segment(id).unwrap().hashes().len();
        assert!(before > 0);
        let rewritten = "entirely different content now lives here with nothing in common";
        store.observe(id, &fp.fingerprint(rewritten), 0.5);
        let stored: HashSet<u32> = store
            .segment(id)
            .unwrap()
            .hashes()
            .iter()
            .copied()
            .collect();
        assert_eq!(stored, fp.fingerprint(rewritten).hash_set());
        // The old hashes still have first-sighting records (DBhash keeps
        // history) but the segment's current fingerprint changed.
        assert!(store.hash_count() >= stored.len());
    }

    #[test]
    fn threshold_zero_fires_on_any_shared_hash() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.0);
        // Take a fragment long enough to guarantee one shared hash.
        let fragment = &SECRET[..60];
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(fragment));
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn threshold_one_requires_full_disclosure() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 1.0);
        // A fragment does not fully disclose.
        let fragment = &SECRET[..SECRET.len() / 2];
        assert!(store
            .disclosing_sources(SegmentId::new(2), &fp.fingerprint(fragment))
            .is_empty());
        // The full text does.
        let reports = store.disclosing_sources(SegmentId::new(2), &fp.fingerprint(SECRET));
        assert_eq!(reports.len(), 1);
        assert!((reports[0].disclosure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remove_segment_releases_hash_ownership() {
        let fp = fp();
        let store = FingerprintStore::new();
        let print = fp.fingerprint(SECRET);
        store.observe(SegmentId::new(1), &print, 0.5);
        assert!(store.remove_segment(SegmentId::new(1)));
        assert!(!store.remove_segment(SegmentId::new(1)));
        assert_eq!(store.segment_count(), 0);
        // Ownership is re-established by the next observer.
        store.observe(SegmentId::new(2), &print, 0.5);
        let some_hash = *print.hash_set().iter().next().unwrap();
        assert_eq!(
            store.oldest_segment_with(some_hash),
            Some(SegmentId::new(2))
        );
    }

    #[test]
    fn eviction_by_age() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        let cutoff = store.now();
        store.observe(
            SegmentId::new(2),
            &fp.fingerprint("some other long enough text to produce a fingerprint"),
            0.5,
        );
        assert_eq!(store.evict_older_than(cutoff), 1);
        assert!(store.segment(SegmentId::new(1)).is_none());
        assert!(store.segment(SegmentId::new(2)).is_some());
    }

    #[test]
    fn eviction_counters_track_sweeps() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint(SECRET), 0.5);
        let cutoff = store.now();
        store.observe(
            SegmentId::new(2),
            &fp.fingerprint("some other long enough text to produce a fingerprint"),
            0.5,
        );
        assert_eq!(store.evict_older_than(cutoff), 1);
        // Second sweep with the same cutoff inspects the survivor and
        // evicts nothing.
        assert_eq!(store.evict_older_than(cutoff), 0);
        let stats = store.stats();
        assert_eq!(stats.eviction_scans, 2);
        assert_eq!(stats.eviction_scanned, 3); // 2 segments, then 1.
        assert_eq!(stats.eviction_evicted, 1);
        // Per-shard contention vectors line up with the shard count and sum
        // to the aggregate counters.
        assert_eq!(stats.hash_shard_contention.len(), stats.shard_count);
        assert_eq!(stats.segment_shard_contention.len(), stats.shard_count);
        assert_eq!(
            stats.hash_shard_contention.iter().sum::<u64>(),
            stats.hash_lock_contention
        );
        assert_eq!(
            stats.segment_shard_contention.iter().sum::<u64>(),
            stats.segment_lock_contention
        );
    }

    #[test]
    fn observe_batch_matches_sequential_observes() {
        let fp = fp();
        let texts = [
            SECRET,
            "notes from the meeting follow with some of the acquisition details repeated",
            "completely unrelated prose about gardening tulips and daffodils in spring",
            SECRET, // duplicate content: ownership stays with the first entry
        ];
        let prints: Vec<_> = texts.iter().map(|t| fp.fingerprint(t)).collect();
        let sequential = FingerprintStore::new();
        for (i, print) in prints.iter().enumerate() {
            sequential.observe(SegmentId::new(i as u64 + 1), print, 0.5);
        }
        let batched = FingerprintStore::new();
        let entries: Vec<(SegmentId, &Fingerprint, f64)> = prints
            .iter()
            .enumerate()
            .map(|(i, print)| (SegmentId::new(i as u64 + 1), print, 0.5))
            .collect();
        batched.observe_batch(&entries);

        assert_eq!(batched.now(), sequential.now());
        assert_eq!(batched.hash_count(), sequential.hash_count());
        for i in 1..=texts.len() as u64 {
            assert_eq!(
                batched.authoritative_fingerprint(SegmentId::new(i)),
                sequential.authoritative_fingerprint(SegmentId::new(i)),
                "authoritative set of segment {i} diverged"
            );
        }
        let probe = fp.fingerprint(SECRET);
        assert_eq!(
            batched.disclosing_sources(SegmentId::new(99), &probe),
            sequential.disclosing_sources(SegmentId::new(99), &probe)
        );

        let stats = batched.stats();
        assert_eq!(stats.batched_observes, texts.len() as u64);
        assert!(stats.batch_hashes_recorded > 0);
        assert!(stats.batch_lock_acquisitions > 0);
        assert!(stats.batch_lock_acquisitions < stats.batch_hashes_recorded);
        // The sequential store never used the batched path.
        assert_eq!(sequential.stats().batched_observes, 0);
    }

    #[test]
    fn observe_batch_of_one_and_empty() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe_batch(&[]);
        assert_eq!(store.now(), Timestamp::ZERO);
        let print = fp.fingerprint(SECRET);
        store.observe_batch(&[(SegmentId::new(1), &print, 0.5)]);
        assert_eq!(store.segment_count(), 1);
        assert_eq!(
            store.authoritative_fingerprint(SegmentId::new(1)),
            print.hash_set()
        );
    }

    #[test]
    fn empty_fingerprints_never_report() {
        let fp = fp();
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fp.fingerprint("tiny"), 0.0);
        assert!(store
            .disclosing_sources(SegmentId::new(2), &fp.fingerprint("tiny"))
            .is_empty());
        assert_eq!(
            store.disclosure_from(SegmentId::new(1), &HashSet::new()),
            0.0
        );
    }
}
