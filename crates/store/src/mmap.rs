//! Read-only file mappings with alignment guarantees for the cold tier.
//!
//! The v3 cold-shard format ([`crate::tier`]) is read **in place**: the
//! segment directory, hash pool and sighting table are interpreted as
//! `&[u64]` / `&[u32]` slices pointing straight into the file bytes, so a
//! cold shard opens without a decode pass. That requires two things this
//! module provides:
//!
//! - a mapping whose base address is at least 8-byte aligned. `mmap`
//!   returns page-aligned addresses; the non-`unix` (or mmap-failure)
//!   fallback reads the file into a `Vec<u64>`-backed buffer, which the
//!   allocator aligns to 8 bytes.
//! - checked reinterpret casts ([`u32_slice`], [`u64_slice`]) that refuse
//!   misaligned or odd-length input instead of producing UB.
//!
//! This is the only module in the crate that uses `unsafe`; the rest of
//! the crate stays `#![deny(unsafe_code)]`-clean. The mapping is strictly
//! read-only (`PROT_READ`, private), so sharing `&[u8]` views across
//! threads is sound — `Mapping` is `Send + Sync` by hand for that reason.
#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An immutable, 8-byte-aligned view of a whole file: an `mmap` where the
/// platform supports it, an aligned heap copy otherwise.
#[derive(Debug)]
pub(crate) struct Mapping {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut u8,
        len: usize,
    },
    Heap {
        buf: Vec<u64>,
        len: usize,
    },
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ,
// MAP_PRIVATE, never written through), so concurrent shared reads from any
// thread are sound, as is dropping from a different thread than the opener.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only. Falls back to an aligned heap read when the
    /// platform has no `mmap`, the file is empty (zero-length maps are
    /// invalid), or the map call itself fails.
    pub(crate) fn open(path: &Path) -> io::Result<Self> {
        #[cfg(unix)]
        {
            if let Ok(mapping) = Self::open_mapped(path) {
                return Ok(mapping);
            }
        }
        Self::open_heap(path)
    }

    #[cfg(unix)]
    fn open_mapped(path: &Path) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;

        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file"));
        }
        // SAFETY: fd is a valid open file descriptor; len > 0; the result
        // is checked against MAP_FAILED before use. The mapping outlives
        // the `File` (POSIX keeps maps valid after close).
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            inner: Inner::Mapped {
                ptr: ptr.cast::<u8>(),
                len,
            },
        })
    }

    /// Reads the file into a `u64`-backed buffer so the bytes start on an
    /// 8-byte boundary, same as a page-aligned map.
    fn open_heap(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to read"))?;
        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: buf owns at least `len` initialised bytes; u64 -> u8
        // reinterpretation of initialised memory is always valid.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(bytes)?;
        // Reject files that grew between metadata() and here: the caller
        // validates exact lengths against the manifest.
        let mut probe = [0u8; 1];
        if file.read(&mut probe)? != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file changed while reading",
            ));
        }
        Ok(Self {
            inner: Inner::Heap { buf, len },
        })
    }

    /// The mapped bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives until
            // Drop; the mapping is never written.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap { buf, len } => {
                // SAFETY: buf holds at least `len` initialised bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Whether the view is a real `mmap` (false: aligned heap copy).
    pub(crate) fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Heap { .. } => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly the region returned by mmap, unmapped once.
            unsafe {
                ffi::munmap(ptr.cast(), len);
            }
        }
    }
}

/// Reinterprets `bytes` as a `u32` slice. Returns `None` (never UB) when
/// the pointer is misaligned or the length is not a multiple of 4.
pub(crate) fn u32_slice(bytes: &[u8]) -> Option<&[u32]> {
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        || !bytes.len().is_multiple_of(4)
    {
        return None;
    }
    // SAFETY: alignment and length were just checked; u32 has no invalid
    // bit patterns; the lifetime is tied to `bytes`.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
}

/// Reinterprets `bytes` as a `u64` slice. Returns `None` (never UB) when
/// the pointer is misaligned or the length is not a multiple of 8.
pub(crate) fn u64_slice(bytes: &[u8]) -> Option<&[u64]> {
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u64>())
        || !bytes.len().is_multiple_of(8)
    {
        return None;
    }
    // SAFETY: alignment and length were just checked; u64 has no invalid
    // bit patterns; the lifetime is tied to `bytes`.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mapping_round_trips_file_bytes() {
        let path = std::env::temp_dir().join(format!("bf-mmap-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096 + 13).collect();
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&payload).unwrap();
        }
        let mapped = Mapping::open(&path).unwrap();
        assert_eq!(mapped.bytes(), &payload[..]);
        assert_eq!(mapped.bytes().as_ptr() as usize % 8, 0);
        let heap = Mapping::open_heap(&path).unwrap();
        assert_eq!(heap.bytes(), &payload[..]);
        assert!(!heap.is_mapped());
        assert_eq!(heap.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn casts_refuse_bad_input() {
        let buf = [0u64; 4];
        // SAFETY(test): u64 -> u8 view of initialised memory.
        let bytes = unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), buf.len() * 8) };
        assert_eq!(u64_slice(bytes).unwrap().len(), 4);
        assert_eq!(u32_slice(bytes).unwrap().len(), 8);
        // Odd length.
        assert!(u64_slice(&bytes[..12]).is_none());
        assert!(u32_slice(&bytes[..3]).is_none());
        // Misaligned start.
        assert!(u64_slice(&bytes[1..9]).is_none());
        assert!(u32_slice(&bytes[2..6]).is_none());
    }
}
