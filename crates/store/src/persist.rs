//! Directory-backed store persistence with torn-write recovery and a
//! tiered (hot/cold) layout.
//!
//! The manifest + per-shard records map one-to-one onto files:
//!
//! ```text
//! <dir>/manifest.bfm     (plain)  or  <dir>/manifest.bfm.sealed
//! <dir>/shard-0000.bfs   (plain)  or  <dir>/shard-0000.bfs.sealed
//! <dir>/shard-0001.bfs   ...
//! ```
//!
//! Two record formats share that layout:
//!
//! * **v2** — length-prefixed records that are decoded into the hot
//!   (in-memory) tier on open. Plain or sealed.
//! * **v3** — alignment-safe records ([`crate::tier`]) that a cold open
//!   maps read-only and queries in place: no decode pass, no heap copy of
//!   the fingerprint data. Plain only — ciphertext cannot be mapped, so
//!   sealing stays a v2 affair (see [`PersistError::Unsupported`]).
//!
//! Every file is written atomically (temp file in the same directory →
//! `fsync` → `rename`), shards before the manifest, so a crash at any
//! point leaves either the previous consistent snapshot or the new one —
//! never a half-written manifest pointing at nothing. If a crash lands
//! between shard writes, the old manifest's CRCs disown the new shard
//! bytes, and opening degrades gracefully: the mismatched shards are
//! reported in the [`RestoreReport`] while every healthy shard loads.
//!
//! # The builder pair
//!
//! [`PersistOptions`] and [`StoreOpenOptions`] replace the former 2×2
//! spread of free functions (`persist_to_dir`/`load_from_dir` ×
//! plain/sealed, which survive as deprecated shims):
//!
//! ```no_run
//! use browserflow_store::{FingerprintStore, PersistOptions, StoreFormat, StoreOpenOptions, TierMode};
//! # fn main() -> Result<(), browserflow_store::PersistError> {
//! let store = FingerprintStore::new();
//! // Write a cold-mappable v3 snapshot…
//! PersistOptions::new()
//!     .format(StoreFormat::V3)
//!     .persist(&store, "state/store".as_ref())?;
//! // …and re-open it without decoding: segments stay in the mapped file.
//! let (reopened, report) = StoreOpenOptions::new()
//!     .tier(TierMode::Cold)
//!     .open("state/store".as_ref())?;
//! assert!(report.is_complete());
//! # let _ = reopened; Ok(()) }
//! ```

use crate::codec::{self, CodecError, Manifest, RestoreReport, ShardMeta};
use crate::tier::{ColdShard, TierState, TierSweep};
use crate::{FingerprintStore, SealedStore, StoreKey, Timestamp};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the snapshot manifest inside a persisted store directory.
/// Public so external tooling (corruption drills, the fuzz harness) can
/// address snapshot files without re-deriving the layout.
pub const MANIFEST_FILE: &str = "manifest.bfm";
const SEALED_SUFFIX: &str = ".sealed";
/// Magic of the single-file sealed container ([`SealedStore`]).
const SEALED_FILE_MAGIC: &[u8; 4] = b"BFSS";
/// Magic of plain serialised stores (v1/v2 single file, and manifests).
const PLAIN_FILE_MAGIC: &[u8; 4] = b"BFST";

pub(crate) fn shard_file(index: usize) -> String {
    format!("shard-{index:04}.bfs")
}

/// Error persisting or loading a store directory.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// The on-disk bytes are not a valid store (or the wrong key was
    /// supplied for a sealed directory).
    Codec(CodecError),
    /// The requested option combination is not supported (for example a
    /// sealed v3 snapshot: cold shards must stay plaintext to be mapped,
    /// or opening a sealed directory without a key).
    Unsupported(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "store persistence I/O error: {e}"),
            PersistError::Codec(e) => write!(f, "store persistence codec error: {e}"),
            PersistError::Unsupported(what) => write!(f, "unsupported store operation: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Codec(e) => Some(e),
            PersistError::Unsupported(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

/// On-disk record format of a persisted snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// Length-prefixed v2 records, decoded into memory on open. The only
    /// format that supports sealing.
    #[default]
    V2,
    /// Alignment-safe v3 records a cold open maps and queries in place.
    V3,
}

/// How [`StoreOpenOptions::open`] materialises the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierMode {
    /// Decode every record into the mutable in-memory tier (v2 behaviour;
    /// also forced for v2 snapshots, which have no mappable layout).
    #[default]
    Hot,
    /// Map v3 shard files read-only and serve them in place; records are
    /// only promoted to memory when first written to. Restart cost and
    /// resident set scale with the hot working set, not the store.
    Cold,
}

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// is written, fsynced, then renamed over the destination, so readers and
/// crash recovery only ever observe the old bytes or the new bytes.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), std::io::Error> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Removes shard files at `first_stale` and above (both plain and sealed
/// spellings) left over from a previous, wider snapshot so they cannot
/// shadow a future layout.
fn remove_stale_shards(dir: &Path, first_stale: usize) {
    let mut stale = first_stale;
    loop {
        let plain = dir.join(shard_file(stale));
        let sealed = dir.join(format!("{}{SEALED_SUFFIX}", shard_file(stale)));
        let removed_plain = fs::remove_file(&plain).is_ok();
        let removed_sealed = fs::remove_file(&sealed).is_ok();
        if !removed_plain && !removed_sealed {
            break;
        }
        stale += 1;
    }
}

fn persist_parts(dir: &Path, manifest: &[u8], records: &[Vec<u8>]) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    // Shards first, manifest last: until the new manifest lands, loaders
    // still see the previous snapshot's directory.
    for (index, record) in records.iter().enumerate() {
        write_atomic(&dir.join(shard_file(index)), record)?;
    }
    write_atomic(&dir.join(MANIFEST_FILE), manifest)?;
    remove_stale_shards(dir, records.len());
    Ok(())
}

fn shard_meta_for(
    bytes: &[u8],
    segments: usize,
    sightings: usize,
) -> Result<ShardMeta, CodecError> {
    Ok(ShardMeta {
        crc: codec::crc32(bytes),
        byte_len: u64::try_from(bytes.len()).map_err(|_| CodecError::TooLarge)?,
        segment_count: segments as u64,
        sighting_count: sightings as u64,
    })
}

/// Encodes every stripe of `store` as a v3 shard record (in parallel) and
/// returns `(manifest, records)` ready for [`persist_parts`].
fn encode_v3_parts(
    store: &FingerprintStore,
    workers: usize,
) -> Result<(Vec<u8>, Vec<Vec<u8>>), PersistError> {
    let shard_count = store.shard_count();
    // Per-stripe snapshots under the stripe read locks: each shard file is
    // internally consistent, matching the v2 encoder's consistency model.
    let snapshots: Vec<_> = (0..shard_count)
        .map(|index| {
            let segments = store.segments.stripe(index).read().merged_segments();
            let sightings = store.hashes.stripe(index).read().merged_sightings();
            (index, segments, sightings)
        })
        .collect();

    let encoded: Vec<Result<Vec<u8>, CodecError>> = if workers > 1 && shard_count > 1 {
        let chunk_len = shard_count.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = snapshots
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|(index, segments, sightings)| {
                                crate::tier::encode_v3_shard(
                                    *index,
                                    shard_count,
                                    segments,
                                    sightings,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard encoding must not panic"))
                .collect()
        })
        .expect("scoped encoding threads join cleanly")
    } else {
        snapshots
            .iter()
            .map(|(index, segments, sightings)| {
                crate::tier::encode_v3_shard(*index, shard_count, segments, sightings)
            })
            .collect()
    };

    let mut records = Vec::with_capacity(shard_count);
    let mut metas = Vec::with_capacity(shard_count);
    for (result, (_, segments, sightings)) in encoded.into_iter().zip(&snapshots) {
        let bytes = result?;
        metas.push(shard_meta_for(&bytes, segments.len(), sightings.len())?);
        records.push(bytes);
    }
    let manifest = codec::encode_manifest(codec::VERSION_V3, store.now().get(), &metas);
    Ok((manifest, records))
}

/// How to write a store snapshot: plain or sealed, v2 or v3.
///
/// Replaces `persist_to_dir` / `persist_sealed_to_dir`; the v3 format knob
/// is the reason the surface was collapsed — tiering slots in as one
/// builder option instead of a third pair of free functions.
#[derive(Debug, Clone, Default)]
pub struct PersistOptions {
    key: Option<StoreKey>,
    format: StoreFormat,
    workers: Option<usize>,
}

impl PersistOptions {
    /// Plain (unsealed) v2 snapshot — the former `persist_to_dir`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sealed snapshot under `key` (encrypted at rest, §4.4) — the former
    /// `persist_sealed_to_dir`. Only valid with [`StoreFormat::V2`].
    pub fn sealed(key: StoreKey) -> Self {
        Self {
            key: Some(key),
            ..Self::default()
        }
    }

    /// Selects the on-disk record format (default [`StoreFormat::V2`]).
    #[must_use]
    pub fn format(mut self, format: StoreFormat) -> Self {
        self.format = format;
        self
    }

    /// Caps the encoder worker threads (default: the disclosure worker
    /// count).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    fn worker_count(&self) -> usize {
        self.workers
            .unwrap_or_else(crate::disclosure::default_workers)
    }

    /// Writes `store` into `dir` per the selected options. Atomic in the
    /// same shards-then-manifest sense as every other writer here.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failure, [`PersistError::Codec`]
    /// if the store exceeds the format's length fields, and
    /// [`PersistError::Unsupported`] for sealed + [`StoreFormat::V3`]
    /// (mapped cold shards must stay plaintext).
    pub fn persist(&self, store: &FingerprintStore, dir: &Path) -> Result<(), PersistError> {
        match (self.format, &self.key) {
            (StoreFormat::V3, Some(_)) => Err(PersistError::Unsupported(
                "sealed v3 snapshots: cold shards are mapped in place and cannot be ciphertext; \
                 seal v2 or persist v3 plain",
            )),
            (StoreFormat::V3, None) => {
                let (manifest, records) = encode_v3_parts(store, self.worker_count())?;
                persist_parts(dir, &manifest, &records)
            }
            (StoreFormat::V2, None) => {
                let (manifest, records) =
                    codec::encode_v2_parts(store, store.shard_count(), self.worker_count())?;
                persist_parts(dir, &manifest, &records)
            }
            (StoreFormat::V2, Some(key)) => {
                let (manifest, records) =
                    codec::encode_v2_parts(store, store.shard_count(), self.worker_count())?;
                fs::create_dir_all(dir)?;
                for (index, record) in records.iter().enumerate() {
                    let sealed = key.seal_auto(record).to_bytes();
                    write_atomic(
                        &dir.join(format!("{}{SEALED_SUFFIX}", shard_file(index))),
                        &sealed,
                    )?;
                }
                write_atomic(
                    &dir.join(format!("{MANIFEST_FILE}{SEALED_SUFFIX}")),
                    &key.seal_auto(&manifest).to_bytes(),
                )?;
                remove_stale_shards(dir, records.len());
                Ok(())
            }
        }
    }
}

/// How to open a persisted snapshot: plain or sealed, hot or cold.
///
/// Replaces `load_from_dir` / `load_sealed_from_dir` and also accepts
/// single-file payloads (plain v1/v2 blobs and sealed containers), so any
/// snapshot ever written by this crate opens through one entry point.
#[derive(Debug, Clone, Default)]
pub struct StoreOpenOptions {
    key: Option<StoreKey>,
    tier: TierMode,
    workers: Option<usize>,
}

impl StoreOpenOptions {
    /// Plain open, hot tier — the former `load_from_dir`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open with `key` available for sealed payloads — the former
    /// `load_sealed_from_dir`.
    pub fn sealed(key: StoreKey) -> Self {
        Self {
            key: Some(key),
            ..Self::default()
        }
    }

    /// Selects the tier records land in (default [`TierMode::Hot`]).
    /// [`TierMode::Cold`] only takes effect for v3 directories; every
    /// other payload has no mappable layout and decodes hot.
    #[must_use]
    pub fn tier(mut self, tier: TierMode) -> Self {
        self.tier = tier;
        self
    }

    /// Caps the decoder worker threads (default: the disclosure worker
    /// count).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    fn worker_count(&self) -> usize {
        self.workers
            .unwrap_or_else(crate::disclosure::default_workers)
    }

    /// Opens the snapshot at `path` — a directory written by
    /// [`PersistOptions::persist`] (or its deprecated predecessors), or a
    /// single-file payload (plain v1/v2 bytes, or a sealed container).
    ///
    /// Degrades gracefully: shards that are missing, truncated, or
    /// checksum-failing are reported lost in the [`RestoreReport`]; every
    /// healthy shard loads (in parallel).
    ///
    /// # Errors
    ///
    /// Fails hard only when nothing can be restored at all: the manifest
    /// is unreadable, malformed, fails its checksum, or a sealed payload
    /// is found and no key was supplied ([`PersistError::Unsupported`]).
    pub fn open(&self, path: &Path) -> Result<(FingerprintStore, RestoreReport), PersistError> {
        if path.is_dir() {
            let plain_manifest = path.join(MANIFEST_FILE);
            let sealed_manifest = path.join(format!("{MANIFEST_FILE}{SEALED_SUFFIX}"));
            if plain_manifest.exists() {
                self.open_plain_dir(path)
            } else if sealed_manifest.exists() {
                self.open_sealed_dir(path)
            } else {
                // Surface the underlying NotFound.
                Err(PersistError::Io(
                    fs::read(&plain_manifest).expect_err("manifest known missing"),
                ))
            }
        } else {
            self.open_file(path)
        }
    }

    fn open_plain_dir(
        &self,
        dir: &Path,
    ) -> Result<(FingerprintStore, RestoreReport), PersistError> {
        let manifest_bytes = fs::read(dir.join(MANIFEST_FILE))?;
        let (version, manifest) = codec::parse_manifest_bytes(&manifest_bytes)?;
        if version == codec::VERSION_V3 {
            match self.tier {
                TierMode::Cold => open_cold_dir(dir, manifest),
                TierMode::Hot => self.open_v3_hot(dir, manifest),
            }
        } else {
            // v2: decode into the hot tier (there is no mappable layout).
            let regions: Vec<Option<Vec<u8>>> = (0..manifest.shards.len())
                .map(|index| fs::read(dir.join(shard_file(index))).ok())
                .collect();
            let (store, report) =
                codec::assemble_from_parts(&manifest, &regions, self.worker_count(), true)?;
            Ok((store, report))
        }
    }

    fn open_sealed_dir(
        &self,
        dir: &Path,
    ) -> Result<(FingerprintStore, RestoreReport), PersistError> {
        let Some(key) = &self.key else {
            return Err(PersistError::Unsupported(
                "directory holds a sealed snapshot; supply a key via StoreOpenOptions::sealed",
            ));
        };
        let manifest_wire = fs::read(dir.join(format!("{MANIFEST_FILE}{SEALED_SUFFIX}")))?;
        let manifest_sealed =
            crate::SealedBytes::from_bytes(&manifest_wire).map_err(CodecError::Sealed)?;
        let manifest_bytes = key.unseal(&manifest_sealed).map_err(CodecError::Sealed)?;
        let (version, manifest) = codec::parse_manifest_bytes(&manifest_bytes)?;
        if version != codec::VERSION_V2 {
            // Sealed directories carry v2 records only (cold v3 shards are
            // plain so they can be mapped).
            return Err(CodecError::UnsupportedVersion { found: version }.into());
        }
        let regions: Vec<Option<Vec<u8>>> = (0..manifest.shards.len())
            .map(|index| {
                let wire =
                    fs::read(dir.join(format!("{}{SEALED_SUFFIX}", shard_file(index)))).ok()?;
                let sealed = crate::SealedBytes::from_bytes(&wire).ok()?;
                key.unseal(&sealed).ok()
            })
            .collect();
        let (store, report) =
            codec::assemble_from_parts(&manifest, &regions, self.worker_count(), true)?;
        Ok((store, report))
    }

    /// Decodes a v3 directory fully into the hot tier (no mapping kept):
    /// the authoritative sets are persisted in v3, so unlike the v2 path
    /// no post-restore index rebuild is needed.
    fn open_v3_hot(
        &self,
        dir: &Path,
        manifest: Manifest,
    ) -> Result<(FingerprintStore, RestoreReport), PersistError> {
        let shard_count = manifest.shards.len();
        let store = FingerprintStore::with_shard_count(shard_count);
        if store.shard_count() != shard_count {
            return Err(CodecError::Truncated.into());
        }
        let shards = open_cold_shards(dir, &manifest, self.worker_count());
        let mut report = RestoreReport::default();
        for (index, result) in shards {
            match result {
                Ok(None) => report.loaded_shards += 1,
                Ok(Some(cold)) => {
                    for entry in 0..cold.segment_count() {
                        store.segments.upsert(
                            cold.dir_id(entry),
                            cold.hashes_at(entry).to_vec(),
                            cold.authoritative_at(entry).to_vec(),
                            cold.dir_threshold(entry),
                            cold.dir_updated(entry),
                        );
                    }
                    for entry in 0..cold.sighting_count() {
                        let (hash, sighting) = cold.sighting_at(entry);
                        store.restore_sighting(hash, sighting.segment, sighting.time);
                    }
                    report.loaded_shards += 1;
                }
                Err(_) => {
                    report.lost_shards.push(index);
                    report.lost_segments += manifest.shards[index].segment_count;
                }
            }
        }
        store.restore_clock(Timestamp::new(manifest.clock));
        Ok((store, report))
    }

    fn open_file(&self, path: &Path) -> Result<(FingerprintStore, RestoreReport), PersistError> {
        let bytes = fs::read(path)?;
        match bytes.get(..4) {
            Some(magic) if magic == PLAIN_FILE_MAGIC => {
                let (store, report) =
                    codec::decode_lossy_with_workers(&bytes, self.worker_count())?;
                Ok((store, report))
            }
            Some(magic) if magic == SEALED_FILE_MAGIC => {
                let Some(key) = &self.key else {
                    return Err(PersistError::Unsupported(
                        "file is a sealed container; supply a key via StoreOpenOptions::sealed",
                    ));
                };
                let sealed = SealedStore::from_bytes(&bytes).map_err(CodecError::Sealed)?;
                let (store, report) = FingerprintStore::import_sealed_lossy(key, &sealed)?;
                Ok((store, report))
            }
            _ => Err(CodecError::BadMagic.into()),
        }
    }
}

/// One shard's cold-open outcome: `Ok(None)` for an empty
/// (`byte_len == 0`) meta, `Ok(Some(shard))` on success, the per-shard
/// error otherwise.
type ColdOpenResult = Result<Option<Arc<ColdShard>>, CodecError>;

/// Opens every non-empty shard file of a v3 directory in parallel,
/// returning each shard's [`ColdOpenResult`] in index order.
fn open_cold_shards(
    dir: &Path,
    manifest: &Manifest,
    workers: usize,
) -> Vec<(usize, ColdOpenResult)> {
    let shard_count = manifest.shards.len();
    let open_one = |index: usize| -> ColdOpenResult {
        let meta = &manifest.shards[index];
        if meta.byte_len == 0 {
            return Ok(None);
        }
        ColdShard::open(&dir.join(shard_file(index)), index, shard_count, meta)
            .map(|shard| Some(Arc::new(shard)))
    };
    let mut results: Vec<(usize, ColdOpenResult)> = if workers > 1 && shard_count > 1 {
        let indices: Vec<usize> = (0..shard_count).collect();
        let chunk_len = shard_count.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            let open_one = &open_one;
            let handles: Vec<_> = indices
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|&index| (index, open_one(index)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard mapping must not panic"))
                .collect()
        })
        .expect("scoped mapping threads join cleanly")
    } else {
        (0..shard_count)
            .map(|index| (index, open_one(index)))
            .collect()
    };
    results.sort_unstable_by_key(|(index, _)| *index);
    results
}

/// The cold open: map every shard file, validate it once, and attach the
/// mapping to both stripe sides — no record is decoded. A shard that
/// fails validation is lost (its meta is zeroed so later demotion sweeps
/// rewrite it from scratch) but never aborts the open.
fn open_cold_dir(
    dir: &Path,
    manifest: Manifest,
) -> Result<(FingerprintStore, RestoreReport), PersistError> {
    let shard_count = manifest.shards.len();
    let store = FingerprintStore::with_shard_count(shard_count);
    if store.shard_count() != shard_count {
        // The stripe count clamps to a power of two; a CRC-valid manifest
        // always records one, so a mismatch means a malformed payload.
        return Err(CodecError::Truncated.into());
    }
    let mut metas = manifest.shards.clone();
    let shards = open_cold_shards(dir, &manifest, crate::disclosure::default_workers());
    let mut report = RestoreReport::default();
    for (index, result) in shards {
        match result {
            Ok(None) => report.loaded_shards += 1,
            Ok(Some(cold)) => {
                store.hashes.attach_cold(index, Arc::clone(&cold));
                store.segments.attach_cold(index, cold);
                report.loaded_shards += 1;
            }
            Err(_) => {
                report.lost_shards.push(index);
                report.lost_segments += manifest.shards[index].segment_count;
                metas[index] = ShardMeta::default();
            }
        }
    }
    store.restore_clock(Timestamp::new(manifest.clock));
    *store.tier.lock() = Some(TierState {
        dir: dir.to_path_buf(),
        metas,
    });
    Ok((store, report))
}

impl FingerprintStore {
    /// Attaches an empty cold tier rooted at `dir` to a store that was not
    /// opened cold, enabling [`demote_idle_shards`] sweeps. Writes an
    /// initial all-empty v3 manifest so the directory is a valid (empty)
    /// snapshot from the first moment.
    ///
    /// [`demote_idle_shards`]: FingerprintStore::demote_idle_shards
    ///
    /// # Errors
    ///
    /// [`PersistError::Unsupported`] if a tier is already attached or
    /// `dir` already holds a snapshot (open that instead), and
    /// [`PersistError::Io`] on filesystem failure.
    pub fn attach_tier(&self, dir: &Path) -> Result<(), PersistError> {
        let mut tier = self.tier.lock();
        if tier.is_some() {
            return Err(PersistError::Unsupported(
                "a cold tier is already attached to this store",
            ));
        }
        if dir.join(MANIFEST_FILE).exists() {
            return Err(PersistError::Unsupported(
                "directory already holds a snapshot; open it with StoreOpenOptions instead",
            ));
        }
        fs::create_dir_all(dir)?;
        let metas = vec![ShardMeta::default(); self.shard_count()];
        let manifest = codec::encode_manifest(codec::VERSION_V3, self.now().get(), &metas);
        write_atomic(&dir.join(MANIFEST_FILE), &manifest)?;
        *tier = Some(TierState {
            dir: dir.to_path_buf(),
            metas,
        });
        Ok(())
    }

    /// The eviction sweep's demotion half: rewrites every *idle* dirty
    /// stripe (no hot segment updated at or after `cutoff`) as a sealed
    /// cold shard file and re-attaches the mapping, dropping the stripe's
    /// hot memory. Stripes that are still hot but whose cold file carries
    /// promotion shadows — records superseded by promoted hot copies —
    /// get a *compaction* rewrite instead: the file is rewritten with
    /// only the live cold records, the hot tier stays put, and the bytes
    /// dropped are reported as [`TierSweep::reclaimed_bytes`]. The
    /// manifest is rewritten once at the end, so a crash mid-sweep leaves
    /// the previous manifest disowning the newer shard bytes — the
    /// standard torn-write story.
    ///
    /// Requires a cold tier (a cold open or [`attach_tier`]).
    ///
    /// [`attach_tier`]: FingerprintStore::attach_tier
    ///
    /// # Errors
    ///
    /// [`PersistError::Unsupported`] without an attached tier;
    /// [`PersistError::Io`] / [`PersistError::Codec`] from writing or
    /// re-mapping a shard file.
    pub fn demote_idle_shards(&self, cutoff: Timestamp) -> Result<TierSweep, PersistError> {
        // The tier mutex serialises sweeps and protects the meta table.
        let mut tier = self.tier.lock();
        let Some(state) = tier.as_mut() else {
            return Err(PersistError::Unsupported(
                "no cold tier attached; open cold or call attach_tier first",
            ));
        };
        let shard_count = self.shard_count();
        debug_assert_eq!(state.metas.len(), shard_count);
        let mut sweep = TierSweep::default();
        for index in 0..shard_count {
            // Lock order (segments, then hashes) is shared with nothing
            // else: all other paths take exactly one stripe lock.
            let mut segments = self.segments.stripe(index).write();
            let mut hashes = self.hashes.stripe(index).write();
            let dirty = segments.is_dirty() || hashes.is_dirty();
            if !dirty || !segments.hot_is_idle(cutoff) {
                // The stripe stays hot, but its cold file may still carry
                // records superseded by promoted hot copies (promotion
                // shadows). Rewrite the file cold-live-only — the hot tier
                // is untouched — and account the bytes dropped.
                if !segments.cold_has_tombstones() && !hashes.cold_has_tombstones() {
                    continue;
                }
                let live_segments = segments.cold_live_segments();
                let live_sightings = hashes.cold_live_sightings();
                let bytes = crate::tier::encode_v3_shard(
                    index,
                    shard_count,
                    &live_segments,
                    &live_sightings,
                )?;
                let path = state.dir.join(shard_file(index));
                write_atomic(&path, &bytes)?;
                let meta = shard_meta_for(&bytes, live_segments.len(), live_sightings.len())?;
                let cold = Arc::new(ColdShard::open(&path, index, shard_count, &meta)?);
                segments.replace_cold(Arc::clone(&cold));
                hashes.replace_cold(cold);
                sweep.reclaimed_bytes += state.metas[index].byte_len.saturating_sub(meta.byte_len);
                state.metas[index] = meta;
                sweep.compacted_shards += 1;
                continue;
            }
            let merged_segments = segments.merged_segments();
            let merged_sightings = hashes.merged_sightings();
            let bytes = crate::tier::encode_v3_shard(
                index,
                shard_count,
                &merged_segments,
                &merged_sightings,
            )?;
            let path = state.dir.join(shard_file(index));
            write_atomic(&path, &bytes)?;
            let meta = shard_meta_for(&bytes, merged_segments.len(), merged_sightings.len())?;
            let cold = Arc::new(ColdShard::open(&path, index, shard_count, &meta)?);
            segments.attach_cold(Arc::clone(&cold));
            hashes.attach_cold(cold);
            sweep.reclaimed_bytes += state.metas[index].byte_len.saturating_sub(meta.byte_len);
            state.metas[index] = meta;
            sweep.demoted_shards += 1;
            sweep.demoted_segments += merged_segments.len();
            sweep.demoted_sightings += merged_sightings.len();
        }
        if sweep.demoted_shards > 0 || sweep.compacted_shards > 0 {
            let manifest =
                codec::encode_manifest(codec::VERSION_V3, self.now().get(), &state.metas);
            write_atomic(&state.dir.join(MANIFEST_FILE), &manifest)?;
            self.tier_demoted_shards.fetch_add(
                sweep.demoted_shards as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
        Ok(sweep)
    }
}

/// Persists the store to `dir` as a plain (unsealed) sharded snapshot.
///
/// # Errors
///
/// See [`PersistOptions::persist`].
#[deprecated(
    since = "0.7.0",
    note = "use PersistOptions::new().persist(store, dir)"
)]
pub fn persist_to_dir(store: &FingerprintStore, dir: &Path) -> Result<(), PersistError> {
    PersistOptions::new().persist(store, dir)
}

/// Persists the store to `dir` with every file sealed under `key`
/// (encrypted at rest, §4.4).
///
/// # Errors
///
/// See [`PersistOptions::persist`].
#[deprecated(
    since = "0.7.0",
    note = "use PersistOptions::sealed(key.clone()).persist(store, dir)"
)]
pub fn persist_sealed_to_dir(
    store: &FingerprintStore,
    key: &StoreKey,
    dir: &Path,
) -> Result<(), PersistError> {
    PersistOptions::sealed(key.clone()).persist(store, dir)
}

/// Loads a plain snapshot, degrading gracefully per shard.
///
/// # Errors
///
/// See [`StoreOpenOptions::open`].
#[deprecated(since = "0.7.0", note = "use StoreOpenOptions::new().open(dir)")]
pub fn load_from_dir(dir: &Path) -> Result<(FingerprintStore, RestoreReport), PersistError> {
    StoreOpenOptions::new().open(dir)
}

/// Loads a sealed snapshot, degrading gracefully per shard.
///
/// # Errors
///
/// See [`StoreOpenOptions::open`].
#[deprecated(
    since = "0.7.0",
    note = "use StoreOpenOptions::sealed(key.clone()).open(dir)"
)]
pub fn load_sealed_from_dir(
    key: &StoreKey,
    dir: &Path,
) -> Result<(FingerprintStore, RestoreReport), PersistError> {
    StoreOpenOptions::sealed(key.clone()).open(dir)
}

/// Persists a [`SealedStore`] container (as produced by
/// [`FingerprintStore::export_sealed`]) into `dir` as one file per entry.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
#[deprecated(
    since = "0.7.0",
    note = "use PersistOptions::sealed(key).persist(store, dir), which seals while writing"
)]
pub fn persist_sealed_store(sealed: &SealedStore, dir: &Path) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let (manifest, shards) = sealed.parts();
    for (index, shard) in shards.iter().enumerate() {
        write_atomic(
            &dir.join(format!("{}{SEALED_SUFFIX}", shard_file(index))),
            &shard.to_bytes(),
        )?;
    }
    write_atomic(
        &dir.join(format!("{MANIFEST_FILE}{SEALED_SUFFIX}")),
        &manifest.to_bytes(),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentId;
    use browserflow_fingerprint::Fingerprinter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bf-persist-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_store() -> FingerprintStore {
        let fp = Fingerprinter::default();
        let store = FingerprintStore::new();
        for i in 0..20u64 {
            store.observe(
                SegmentId::new(i + 1),
                &fp.fingerprint(&format!(
                    "paragraph number {i} with enough distinct words to fingerprint cleanly"
                )),
                0.5,
            );
        }
        store
    }

    #[test]
    fn plain_directory_roundtrip() {
        let dir = temp_dir("plain");
        let store = sample_store();
        PersistOptions::new().persist(&store, &dir).unwrap();
        let (loaded, report) = StoreOpenOptions::new().open(&dir).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.loaded_shards, store.shard_count());
        assert_eq!(loaded.segment_count(), store.segment_count());
        assert_eq!(loaded.hash_count(), store.hash_count());
        assert_eq!(loaded.now(), store.now());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_directory_roundtrip_and_wrong_key() {
        let dir = temp_dir("sealed");
        let mut rng = StdRng::seed_from_u64(11);
        let key = StoreKey::generate(&mut rng);
        let store = sample_store();
        PersistOptions::sealed(key.clone())
            .persist(&store, &dir)
            .unwrap();
        let (loaded, report) = StoreOpenOptions::sealed(key).open(&dir).unwrap();
        assert!(report.is_complete());
        assert_eq!(loaded.segment_count(), store.segment_count());

        let wrong = StoreKey::generate(&mut rng);
        assert!(matches!(
            StoreOpenOptions::sealed(wrong).open(&dir),
            Err(PersistError::Codec(CodecError::Sealed(_)))
        ));
        // And no key at all is rejected up front.
        assert!(matches!(
            StoreOpenOptions::new().open(&dir),
            Err(PersistError::Unsupported(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_shard_is_reported_lost_not_fatal() {
        let dir = temp_dir("missing");
        let store = sample_store();
        PersistOptions::new().persist(&store, &dir).unwrap();
        fs::remove_file(dir.join(shard_file(0))).unwrap();
        let (_, report) = StoreOpenOptions::new().open(&dir).unwrap();
        assert_eq!(report.lost_shards, vec![0]);
        assert_eq!(report.loaded_shards, store.shard_count() - 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repersist_drops_stale_wider_shards() {
        let dir = temp_dir("stale");
        let store = sample_store();
        PersistOptions::new().persist(&store, &dir).unwrap();
        let count = store.shard_count();
        // Fake a leftover shard from a previous, wider snapshot.
        fs::write(dir.join(shard_file(count)), b"stale").unwrap();
        PersistOptions::new().persist(&store, &dir).unwrap();
        assert!(!dir.join(shard_file(count)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_v3_is_unsupported() {
        let dir = temp_dir("sealed-v3");
        let mut rng = StdRng::seed_from_u64(7);
        let key = StoreKey::generate(&mut rng);
        let store = sample_store();
        assert!(matches!(
            PersistOptions::sealed(key)
                .format(StoreFormat::V3)
                .persist(&store, &dir),
            Err(PersistError::Unsupported(_))
        ));
        assert!(!dir.exists());
    }

    #[test]
    fn deprecated_shims_still_work() {
        #![allow(deprecated)]
        let dir = temp_dir("shims");
        let store = sample_store();
        persist_to_dir(&store, &dir).unwrap();
        let (loaded, report) = load_from_dir(&dir).unwrap();
        assert!(report.is_complete());
        assert_eq!(loaded.segment_count(), store.segment_count());
        fs::remove_dir_all(&dir).unwrap();
    }
}
