//! Directory-backed store persistence with torn-write recovery.
//!
//! The v2 codec's manifest + per-shard records map one-to-one onto files:
//!
//! ```text
//! <dir>/manifest.bfm     (plain)  or  <dir>/manifest.bfm.sealed
//! <dir>/shard-0000.bfs   (plain)  or  <dir>/shard-0000.bfs.sealed
//! <dir>/shard-0001.bfs   ...
//! ```
//!
//! Every file is written atomically (temp file in the same directory →
//! `fsync` → `rename`), shards before the manifest, so a crash at any
//! point leaves either the previous consistent snapshot or the new one —
//! never a half-written manifest pointing at nothing. If a crash lands
//! between shard writes, the old manifest's CRCs disown the new shard
//! bytes, and [`load_from_dir`] degrades gracefully: the mismatched shards
//! are reported in the [`RestoreReport`] while every healthy shard loads.

use crate::codec::{self, CodecError, RestoreReport};
use crate::{FingerprintStore, SealedStore, StoreKey};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MANIFEST_FILE: &str = "manifest.bfm";
const SEALED_SUFFIX: &str = ".sealed";

fn shard_file(index: usize) -> String {
    format!("shard-{index:04}.bfs")
}

/// Error persisting or loading a store directory.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// The on-disk bytes are not a valid store (or the wrong key was
    /// supplied for a sealed directory).
    Codec(CodecError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "store persistence I/O error: {e}"),
            PersistError::Codec(e) => write!(f, "store persistence codec error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Codec(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// is written, fsynced, then renamed over the destination, so readers and
/// crash recovery only ever observe the old bytes or the new bytes.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), std::io::Error> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

fn persist_parts(dir: &Path, manifest: &[u8], records: &[Vec<u8>]) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    // Shards first, manifest last: until the new manifest lands, loaders
    // still see the previous snapshot's directory.
    for (index, record) in records.iter().enumerate() {
        write_atomic(&dir.join(shard_file(index)), record)?;
    }
    write_atomic(&dir.join(MANIFEST_FILE), manifest)?;
    // Drop shard files beyond the new count left over from a previous,
    // wider snapshot so they cannot shadow a future layout.
    let mut stale = records.len();
    loop {
        let plain = dir.join(shard_file(stale));
        let sealed = dir.join(format!("{}{SEALED_SUFFIX}", shard_file(stale)));
        let removed_plain = fs::remove_file(&plain).is_ok();
        let removed_sealed = fs::remove_file(&sealed).is_ok();
        if !removed_plain && !removed_sealed {
            break;
        }
        stale += 1;
    }
    Ok(())
}

/// Persists the store to `dir` as a plain (unsealed) sharded snapshot.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure and
/// [`PersistError::Codec`] if the store exceeds the format's length
/// fields.
pub fn persist_to_dir(store: &FingerprintStore, dir: &Path) -> Result<(), PersistError> {
    let (manifest, records) = codec::encode_v2_parts(
        store,
        store.shard_count(),
        crate::disclosure::default_workers(),
    )?;
    persist_parts(dir, &manifest, &records)
}

/// Persists the store to `dir` with every file sealed under `key`
/// (encrypted at rest, §4.4).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure and
/// [`PersistError::Codec`] if the store exceeds the format's length
/// fields.
pub fn persist_sealed_to_dir(
    store: &FingerprintStore,
    key: &StoreKey,
    dir: &Path,
) -> Result<(), PersistError> {
    let (manifest, records) = codec::encode_v2_parts(
        store,
        store.shard_count(),
        crate::disclosure::default_workers(),
    )?;
    fs::create_dir_all(dir)?;
    for (index, record) in records.iter().enumerate() {
        let sealed = key.seal_auto(record).to_bytes();
        write_atomic(
            &dir.join(format!("{}{SEALED_SUFFIX}", shard_file(index))),
            &sealed,
        )?;
    }
    write_atomic(
        &dir.join(format!("{MANIFEST_FILE}{SEALED_SUFFIX}")),
        &key.seal_auto(&manifest).to_bytes(),
    )?;
    let mut stale = records.len();
    loop {
        let plain = dir.join(shard_file(stale));
        let sealed = dir.join(format!("{}{SEALED_SUFFIX}", shard_file(stale)));
        let removed_plain = fs::remove_file(&plain).is_ok();
        let removed_sealed = fs::remove_file(&sealed).is_ok();
        if !removed_plain && !removed_sealed {
            break;
        }
        stale += 1;
    }
    Ok(())
}

/// Loads a plain snapshot written by [`persist_to_dir`], degrading
/// gracefully: shards that are missing, truncated, or checksum-failing
/// are reported as lost in the [`RestoreReport`]; every healthy shard
/// loads (in parallel).
///
/// # Errors
///
/// Fails hard only when nothing can be restored at all: the manifest is
/// unreadable, malformed, or fails its own checksum.
pub fn load_from_dir(dir: &Path) -> Result<(FingerprintStore, RestoreReport), PersistError> {
    let manifest_bytes = fs::read(dir.join(MANIFEST_FILE))?;
    let manifest = codec::parse_manifest_bytes(&manifest_bytes)?;
    let regions: Vec<Option<Vec<u8>>> = (0..manifest.shards.len())
        .map(|index| fs::read(dir.join(shard_file(index))).ok())
        .collect();
    let (store, report) = codec::assemble_from_parts(
        &manifest,
        &regions,
        crate::disclosure::default_workers(),
        true,
    )?;
    Ok((store, report))
}

/// Loads a sealed snapshot written by [`persist_sealed_to_dir`]. Shard
/// files that are missing, unparseable, or fail their integrity tag are
/// reported as lost; the manifest itself must unseal cleanly.
///
/// # Errors
///
/// Fails hard when the manifest file is unreadable, will not unseal under
/// `key`, or is malformed once decrypted.
pub fn load_sealed_from_dir(
    key: &StoreKey,
    dir: &Path,
) -> Result<(FingerprintStore, RestoreReport), PersistError> {
    let manifest_wire = fs::read(dir.join(format!("{MANIFEST_FILE}{SEALED_SUFFIX}")))?;
    let manifest_sealed =
        crate::SealedBytes::from_bytes(&manifest_wire).map_err(CodecError::Sealed)?;
    let manifest_bytes = key.unseal(&manifest_sealed).map_err(CodecError::Sealed)?;
    let manifest = codec::parse_manifest_bytes(&manifest_bytes)?;
    let regions: Vec<Option<Vec<u8>>> = (0..manifest.shards.len())
        .map(|index| {
            let wire = fs::read(dir.join(format!("{}{SEALED_SUFFIX}", shard_file(index)))).ok()?;
            let sealed = crate::SealedBytes::from_bytes(&wire).ok()?;
            key.unseal(&sealed).ok()
        })
        .collect();
    let (store, report) = codec::assemble_from_parts(
        &manifest,
        &regions,
        crate::disclosure::default_workers(),
        true,
    )?;
    Ok((store, report))
}

/// Persists a [`SealedStore`] container (as produced by
/// [`FingerprintStore::export_sealed`]) into `dir` as one file per entry.
/// Equivalent to [`persist_sealed_to_dir`] for callers that already hold
/// the sealed form.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn persist_sealed_store(sealed: &SealedStore, dir: &Path) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let (manifest, shards) = sealed.parts();
    for (index, shard) in shards.iter().enumerate() {
        write_atomic(
            &dir.join(format!("{}{SEALED_SUFFIX}", shard_file(index))),
            &shard.to_bytes(),
        )?;
    }
    write_atomic(
        &dir.join(format!("{MANIFEST_FILE}{SEALED_SUFFIX}")),
        &manifest.to_bytes(),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentId;
    use browserflow_fingerprint::Fingerprinter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bf-persist-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_store() -> FingerprintStore {
        let fp = Fingerprinter::default();
        let store = FingerprintStore::new();
        for i in 0..20u64 {
            store.observe(
                SegmentId::new(i + 1),
                &fp.fingerprint(&format!(
                    "paragraph number {i} with enough distinct words to fingerprint cleanly"
                )),
                0.5,
            );
        }
        store
    }

    #[test]
    fn plain_directory_roundtrip() {
        let dir = temp_dir("plain");
        let store = sample_store();
        persist_to_dir(&store, &dir).unwrap();
        let (loaded, report) = load_from_dir(&dir).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.loaded_shards, store.shard_count());
        assert_eq!(loaded.segment_count(), store.segment_count());
        assert_eq!(loaded.hash_count(), store.hash_count());
        assert_eq!(loaded.now(), store.now());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealed_directory_roundtrip_and_wrong_key() {
        let dir = temp_dir("sealed");
        let mut rng = StdRng::seed_from_u64(11);
        let key = StoreKey::generate(&mut rng);
        let store = sample_store();
        persist_sealed_to_dir(&store, &key, &dir).unwrap();
        let (loaded, report) = load_sealed_from_dir(&key, &dir).unwrap();
        assert!(report.is_complete());
        assert_eq!(loaded.segment_count(), store.segment_count());

        let wrong = StoreKey::generate(&mut rng);
        assert!(matches!(
            load_sealed_from_dir(&wrong, &dir),
            Err(PersistError::Codec(CodecError::Sealed(_)))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_shard_is_reported_lost_not_fatal() {
        let dir = temp_dir("missing");
        let store = sample_store();
        persist_to_dir(&store, &dir).unwrap();
        fs::remove_file(dir.join(shard_file(0))).unwrap();
        let (_, report) = load_from_dir(&dir).unwrap();
        assert_eq!(report.lost_shards, vec![0]);
        assert_eq!(report.loaded_shards, store.shard_count() - 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repersist_drops_stale_wider_shards() {
        let dir = temp_dir("stale");
        let store = sample_store();
        persist_to_dir(&store, &dir).unwrap();
        let count = store.shard_count();
        // Fake a leftover shard from a previous, wider snapshot.
        fs::write(dir.join(shard_file(count)), b"stale").unwrap();
        persist_to_dir(&store, &dir).unwrap();
        assert!(!dir.join(shard_file(count)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
