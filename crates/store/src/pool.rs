//! A persistent worker pool for the candidate-evaluation fan-out.
//!
//! The parallel path of Algorithm 1 used to spawn fresh scoped threads on
//! *every* check — at the paper's per-upload check rate that is a
//! thread-create/join pair per request. The pool spawns
//! `default_workers()` threads once (lazily, on the first parallel check)
//! and keeps them parked on a condvar; a check submits its candidate
//! chunks as owned closures and blocks until all of them report back.
//!
//! Jobs must be `'static`: the disclosure module ships owned
//! `Arc<StoredSegment>` handles and an `Arc<[u32]>` target into each
//! closure, so no job ever borrows from the submitting check (and none
//! takes a shard lock — evaluation runs entirely on the handles).
//! Multiple concurrent checks share the pool; jobs are short and never
//! block on the pool themselves, so the shared queue cannot deadlock.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// The pool: a shared FIFO of jobs drained by long-lived worker threads.
///
/// Besides the candidate-evaluation fan-out, batched document ingest
/// (`browserflow-core`) scatters per-paragraph fingerprinting jobs here —
/// each worker thread carries its own thread-local scratch, so bulk
/// fingerprinting parallelises without per-call allocations.
pub struct WorkerPool {
    shared: &'static Shared,
}

impl WorkerPool {
    /// The process-wide pool, created on first use with one thread per
    /// core ([`WorkerPool::worker_count`]).
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::start(crate::disclosure::default_workers()))
    }

    fn start(workers: usize) -> Self {
        let shared: &'static Shared = Box::leak(Box::new(Shared::default()));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("bf-eval-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        Self { shared }
    }

    /// The number of worker threads the global pool runs (one per core).
    pub fn worker_count() -> usize {
        crate::disclosure::default_workers()
    }

    /// Runs `jobs` on the pool and returns their results in submission
    /// order. Blocks the caller until every job has completed.
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for (index, job) in jobs.into_iter().enumerate() {
                let tx = tx.clone();
                queue.push_back(Box::new(move || {
                    // The receiver outlives every job (the caller blocks on
                    // it below), so a send failure is unreachable.
                    let _ = tx.send((index, job()));
                }));
            }
        }
        drop(tx);
        if n == 1 {
            self.shared.available.notify_one();
        } else {
            self.shared.available.notify_all();
        }
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, value) = rx.recv().expect("pool worker dropped a job");
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job reports exactly once"))
            .collect()
    }
}

fn worker_loop(shared: &'static Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .expect("pool queue poisoned while waiting");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = WorkerPool::global();
        let jobs: Vec<_> = (0..64usize).map(|i| move || i * i).collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (0..64usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let jobs: Vec<_> = (0..16usize).map(|i| move || i).collect();
                    let sum: usize = WorkerPool::global().scatter(jobs).into_iter().sum();
                    total.fetch_add(sum, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            total.load(Ordering::Relaxed),
            4 * (0..16usize).sum::<usize>()
        );
    }

    #[test]
    fn empty_scatter_returns_immediately() {
        let results: Vec<u32> = WorkerPool::global().scatter(Vec::<fn() -> u32>::new());
        assert!(results.is_empty());
    }
}
