//! `DBpar`: segment → last-calculated-fingerprint associations.

use crate::{SegmentId, Timestamp};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A stored segment: its current (distinct) fingerprint hashes, its
/// disclosure threshold, and when it was last updated.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSegment {
    hashes: Box<[u32]>,
    threshold: f64,
    updated: Timestamp,
}

impl StoredSegment {
    /// The distinct hashes of the segment's last fingerprint, sorted.
    pub fn hashes(&self) -> &[u32] {
        &self.hashes
    }

    /// Whether `hash` is in the segment's current fingerprint.
    pub fn contains(&self, hash: u32) -> bool {
        self.hashes.binary_search(&hash).is_ok()
    }

    /// The segment's disclosure threshold `T ∈ [0, 1]`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Logical time of the last fingerprint update.
    pub fn updated(&self) -> Timestamp {
        self.updated
    }
}

/// The segment database (`DBpar` of Algorithm 1): stores, per segment, the
/// last fingerprint that has been calculated for it.
///
/// # Example
///
/// ```rust
/// use browserflow_store::{SegmentDb, SegmentId, Timestamp};
/// use std::collections::HashSet;
///
/// let mut db = SegmentDb::new();
/// db.upsert(SegmentId::new(1), HashSet::from([1, 2, 3]), 0.5, Timestamp::new(0));
/// assert_eq!(db.get(SegmentId::new(1)).unwrap().hashes(), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SegmentDb {
    // Segments are reference-counted so a sharded store can hand out owned
    // handles without holding its shard lock across the caller's use.
    segments: HashMap<SegmentId, Arc<StoredSegment>>,
}

impl SegmentDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the stored fingerprint of `segment`.
    pub fn upsert(
        &mut self,
        segment: SegmentId,
        hashes: HashSet<u32>,
        threshold: f64,
        now: Timestamp,
    ) {
        let mut sorted: Vec<u32> = hashes.into_iter().collect();
        sorted.sort_unstable();
        self.segments.insert(
            segment,
            Arc::new(StoredSegment {
                hashes: sorted.into_boxed_slice(),
                threshold,
                updated: now,
            }),
        );
    }

    /// Updates a segment's threshold; `false` if unknown.
    pub fn set_threshold(&mut self, segment: SegmentId, threshold: f64) -> bool {
        match self.segments.get_mut(&segment) {
            Some(stored) => {
                // Copy-on-write: concurrent readers holding the old handle
                // keep a consistent (if momentarily stale) view.
                Arc::make_mut(stored).threshold = threshold;
                true
            }
            None => false,
        }
    }

    /// Fetches a stored segment.
    pub fn get(&self, segment: SegmentId) -> Option<&StoredSegment> {
        self.segments.get(&segment).map(Arc::as_ref)
    }

    /// Fetches a stored segment as an owned, shareable handle.
    pub fn get_shared(&self, segment: SegmentId) -> Option<Arc<StoredSegment>> {
        self.segments.get(&segment).cloned()
    }

    /// Removes a segment; `true` if it was stored.
    pub fn remove(&mut self, segment: SegmentId) -> bool {
        self.segments.remove(&segment).is_some()
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Iterates over all stored segment ids (arbitrary order).
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.segments.keys().copied()
    }

    /// Ids of segments last updated strictly before `cutoff`.
    pub fn segments_older_than(&self, cutoff: Timestamp) -> Vec<SegmentId> {
        self.segments
            .iter()
            .filter(|(_, s)| s.updated < cutoff)
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_replaces() {
        let mut db = SegmentDb::new();
        let id = SegmentId::new(1);
        db.upsert(id, HashSet::from([3, 1, 2]), 0.5, Timestamp::new(0));
        assert_eq!(db.get(id).unwrap().hashes(), &[1, 2, 3]);
        db.upsert(id, HashSet::from([9]), 0.7, Timestamp::new(1));
        let stored = db.get(id).unwrap();
        assert_eq!(stored.hashes(), &[9]);
        assert_eq!(stored.threshold(), 0.7);
        assert_eq!(stored.updated(), Timestamp::new(1));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn contains_uses_binary_search() {
        let mut db = SegmentDb::new();
        let id = SegmentId::new(1);
        db.upsert(id, (0..100).map(|i| i * 7).collect(), 0.5, Timestamp::ZERO);
        let stored = db.get(id).unwrap();
        assert!(stored.contains(21));
        assert!(!stored.contains(22));
    }

    #[test]
    fn set_threshold_on_unknown_segment_fails() {
        let mut db = SegmentDb::new();
        assert!(!db.set_threshold(SegmentId::new(404), 0.3));
    }

    #[test]
    fn segments_older_than_filters_strictly() {
        let mut db = SegmentDb::new();
        db.upsert(SegmentId::new(1), HashSet::new(), 0.5, Timestamp::new(0));
        db.upsert(SegmentId::new(2), HashSet::new(), 0.5, Timestamp::new(5));
        let old = db.segments_older_than(Timestamp::new(5));
        assert_eq!(old, vec![SegmentId::new(1)]);
        assert!(db.segments_older_than(Timestamp::new(0)).is_empty());
    }
}
