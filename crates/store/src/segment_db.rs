//! `DBpar`: segment → last-calculated-fingerprint associations.
//!
//! Each stored segment carries *two* sorted `u32` slices: the distinct
//! hashes of its last fingerprint, and the **authoritative** subset of
//! those hashes — the ones whose first sighting anywhere was this segment
//! (§4.3). The authoritative set is maintained incrementally by the store
//! (on observe, displacement and eviction replay) instead of being
//! recomputed per check by probing `DBhash` once per hash; candidate
//! evaluation then reduces to one sorted-slice intersection.

use crate::fx::FxHashMap;
use crate::{SegmentId, Timestamp};
use std::sync::Arc;

/// A stored segment: its current (distinct) fingerprint hashes, the
/// authoritative subset of those hashes, its disclosure threshold, and
/// when it was last updated.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSegment {
    hashes: Box<[u32]>,
    authoritative: Box<[u32]>,
    threshold: f64,
    updated: Timestamp,
}

impl StoredSegment {
    /// Builds a segment record from already-validated parts (the cold
    /// tier's promotion path; sortedness is attested by the shard CRC).
    pub(crate) fn from_parts(
        hashes: Vec<u32>,
        authoritative: Vec<u32>,
        threshold: f64,
        updated: Timestamp,
    ) -> Self {
        Self {
            hashes: hashes.into_boxed_slice(),
            authoritative: authoritative.into_boxed_slice(),
            threshold,
            updated,
        }
    }

    /// The distinct hashes of the segment's last fingerprint, sorted.
    pub fn hashes(&self) -> &[u32] {
        &self.hashes
    }

    /// The authoritative hashes `F_A` — the subset of [`hashes`]
    /// first seen in this segment — sorted.
    ///
    /// [`hashes`]: StoredSegment::hashes
    pub fn authoritative(&self) -> &[u32] {
        &self.authoritative
    }

    /// Whether `hash` is in the segment's current fingerprint.
    pub fn contains(&self, hash: u32) -> bool {
        self.hashes.binary_search(&hash).is_ok()
    }

    /// The segment's disclosure threshold `T ∈ [0, 1]`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Logical time of the last fingerprint update.
    pub fn updated(&self) -> Timestamp {
        self.updated
    }
}

fn assert_sorted_dedup(slice: &[u32], what: &str) {
    debug_assert!(
        slice.windows(2).all(|w| w[0] < w[1]),
        "{what} must be sorted and deduplicated"
    );
}

/// The segment database (`DBpar` of Algorithm 1): stores, per segment, the
/// last fingerprint that has been calculated for it.
///
/// # Example
///
/// ```rust
/// use browserflow_store::{SegmentDb, SegmentId, Timestamp};
///
/// let mut db = SegmentDb::new();
/// db.upsert(SegmentId::new(1), vec![1, 2, 3], vec![1, 3], 0.5, Timestamp::new(0));
/// let stored = db.get(SegmentId::new(1)).unwrap();
/// assert_eq!(stored.hashes(), &[1, 2, 3]);
/// assert_eq!(stored.authoritative(), &[1, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SegmentDb {
    // Segments are reference-counted so a sharded store can hand out owned
    // handles without holding its shard lock across the caller's use.
    segments: FxHashMap<SegmentId, Arc<StoredSegment>>,
}

impl SegmentDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the stored fingerprint of `segment`.
    ///
    /// Both `hashes` and `authoritative` must be sorted and deduplicated,
    /// with `authoritative ⊆ hashes` (debug-asserted).
    pub fn upsert(
        &mut self,
        segment: SegmentId,
        hashes: Vec<u32>,
        authoritative: Vec<u32>,
        threshold: f64,
        now: Timestamp,
    ) {
        assert_sorted_dedup(&hashes, "segment hashes");
        assert_sorted_dedup(&authoritative, "authoritative hashes");
        debug_assert!(
            authoritative
                .iter()
                .all(|h| hashes.binary_search(h).is_ok()),
            "authoritative set must be a subset of the fingerprint"
        );
        self.segments.insert(
            segment,
            Arc::new(StoredSegment {
                hashes: hashes.into_boxed_slice(),
                authoritative: authoritative.into_boxed_slice(),
                threshold,
                updated: now,
            }),
        );
    }

    /// Updates a segment's threshold; `false` if unknown.
    pub fn set_threshold(&mut self, segment: SegmentId, threshold: f64) -> bool {
        match self.segments.get_mut(&segment) {
            Some(stored) => {
                // Copy-on-write: concurrent readers holding the old handle
                // keep a consistent (if momentarily stale) view.
                Arc::make_mut(stored).threshold = threshold;
                true
            }
            None => false,
        }
    }

    /// Replaces a segment's authoritative set wholesale (index rebuild
    /// after restore); `false` if the segment is unknown.
    pub fn set_authoritative(&mut self, segment: SegmentId, authoritative: Vec<u32>) -> bool {
        assert_sorted_dedup(&authoritative, "authoritative hashes");
        match self.segments.get_mut(&segment) {
            Some(stored) => {
                Arc::make_mut(stored).authoritative = authoritative.into_boxed_slice();
                true
            }
            None => false,
        }
    }

    /// Removes `hash` from a segment's authoritative set (the hash's first
    /// sighting was displaced to an older observation). Returns `true` if
    /// the hash was present.
    pub fn revoke_authoritative(&mut self, segment: SegmentId, hash: u32) -> bool {
        let Some(stored) = self.segments.get_mut(&segment) else {
            return false;
        };
        let Ok(index) = stored.authoritative.binary_search(&hash) else {
            return false;
        };
        // Displacements are rare (eviction replay / racing observers), so a
        // copy-on-write rebuild of the slice is fine.
        let inner = Arc::make_mut(stored);
        let mut authoritative = std::mem::take(&mut inner.authoritative).into_vec();
        authoritative.remove(index);
        inner.authoritative = authoritative.into_boxed_slice();
        true
    }

    /// Fetches a stored segment.
    pub fn get(&self, segment: SegmentId) -> Option<&StoredSegment> {
        self.segments.get(&segment).map(Arc::as_ref)
    }

    /// Fetches a stored segment as an owned, shareable handle.
    pub fn get_shared(&self, segment: SegmentId) -> Option<Arc<StoredSegment>> {
        self.segments.get(&segment).cloned()
    }

    /// Removes a segment; `true` if it was stored.
    pub fn remove(&mut self, segment: SegmentId) -> bool {
        self.segments.remove(&segment).is_some()
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Iterates over all stored segment ids (arbitrary order).
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.segments.keys().copied()
    }

    /// Ids of segments last updated strictly before `cutoff`.
    pub fn segments_older_than(&self, cutoff: Timestamp) -> Vec<SegmentId> {
        self.segments
            .iter()
            .filter(|(_, s)| s.updated < cutoff)
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_replaces() {
        let mut db = SegmentDb::new();
        let id = SegmentId::new(1);
        db.upsert(id, vec![1, 2, 3], vec![1, 2, 3], 0.5, Timestamp::new(0));
        assert_eq!(db.get(id).unwrap().hashes(), &[1, 2, 3]);
        db.upsert(id, vec![9], vec![], 0.7, Timestamp::new(1));
        let stored = db.get(id).unwrap();
        assert_eq!(stored.hashes(), &[9]);
        assert_eq!(stored.authoritative(), &[] as &[u32]);
        assert_eq!(stored.threshold(), 0.7);
        assert_eq!(stored.updated(), Timestamp::new(1));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn contains_uses_binary_search() {
        let mut db = SegmentDb::new();
        let id = SegmentId::new(1);
        let hashes: Vec<u32> = (0..100).map(|i| i * 7).collect();
        db.upsert(id, hashes.clone(), hashes, 0.5, Timestamp::ZERO);
        let stored = db.get(id).unwrap();
        assert!(stored.contains(21));
        assert!(!stored.contains(22));
    }

    #[test]
    fn set_threshold_on_unknown_segment_fails() {
        let mut db = SegmentDb::new();
        assert!(!db.set_threshold(SegmentId::new(404), 0.3));
    }

    #[test]
    fn revoke_and_set_authoritative() {
        let mut db = SegmentDb::new();
        let id = SegmentId::new(1);
        db.upsert(id, vec![1, 2, 3, 4], vec![1, 2, 4], 0.5, Timestamp::ZERO);
        // A handle taken before the revocation keeps its consistent view.
        let before = db.get_shared(id).unwrap();
        assert!(db.revoke_authoritative(id, 2));
        assert!(!db.revoke_authoritative(id, 2));
        assert!(!db.revoke_authoritative(SegmentId::new(404), 2));
        assert_eq!(db.get(id).unwrap().authoritative(), &[1, 4]);
        assert_eq!(before.authoritative(), &[1, 2, 4]);
        assert!(db.set_authoritative(id, vec![3]));
        assert_eq!(db.get(id).unwrap().authoritative(), &[3]);
        assert!(!db.set_authoritative(SegmentId::new(404), vec![]));
    }

    #[test]
    fn segments_older_than_filters_strictly() {
        let mut db = SegmentDb::new();
        db.upsert(SegmentId::new(1), vec![], vec![], 0.5, Timestamp::new(0));
        db.upsert(SegmentId::new(2), vec![], vec![], 0.5, Timestamp::new(5));
        let old = db.segments_older_than(Timestamp::new(5));
        assert_eq!(old, vec![SegmentId::new(1)]);
        assert!(db.segments_older_than(Timestamp::new(0)).is_empty());
    }
}
