//! Lock-striped, sharded variants of `DBhash` and `DBpar`.
//!
//! §6.2 of the paper measures BrowserFlow against stores holding tens of
//! millions of hashes; a single engine-wide lock serialises every check
//! against every observation. [`ShardedHashDb`] and [`ShardedSegmentDb`]
//! stripe the two databases over `N = next_pow2(cores)` independent
//! [`RwLock`]-protected shards (clamped to `[8, 64]` so even a one-core
//! container exercises real striping), keyed by `hash % N` and
//! `segment % N` respectively. Checks — which are read-dominated — take
//! shared locks on exactly the shards their hashes live in, so concurrent
//! checkers proceed in parallel and writers block only one stripe at a
//! time.
//!
//! Each striped database also counts lock contention *per shard*: every
//! acquisition first tries the lock without blocking and bumps that
//! shard's counter when it has to wait. The counters feed the concurrency
//! metrics in `browserflow-core` and show whether contention concentrates
//! on hot stripes (a skewed hash mix) or spreads evenly (true lock
//! pressure).

use crate::hash_db::{HashDb, Sighting, SightingOutcome};
use crate::segment_db::{SegmentDb, StoredSegment};
use crate::{SegmentId, Timestamp};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of stripes: the next power of two at or above the core count,
/// clamped to `[8, 64]`.
pub(crate) fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.next_power_of_two().clamp(8, 64)
}

/// Acquires a read guard, counting the acquisition as contended if it
/// could not be taken without blocking.
macro_rules! read_shard {
    ($self:expr, $index:expr) => {{
        let index = $index;
        let shard = &$self.shards[index];
        match shard.try_read() {
            Some(guard) => guard,
            None => {
                $self.contended[index].fetch_add(1, Ordering::Relaxed);
                shard.read()
            }
        }
    }};
}

/// Acquires a write guard, counting the acquisition as contended if it
/// could not be taken without blocking.
macro_rules! write_shard {
    ($self:expr, $index:expr) => {{
        let index = $index;
        let shard = &$self.shards[index];
        match shard.try_write() {
            Some(guard) => guard,
            None => {
                $self.contended[index].fetch_add(1, Ordering::Relaxed);
                shard.write()
            }
        }
    }};
}

/// `DBhash` striped over `N` lock-protected shards, keyed by `hash % N`.
///
/// All operations take `&self`; per-shard exclusion preserves the
/// earliest-sighting-wins invariant of [`HashDb`] because each hash lives
/// in exactly one shard.
#[derive(Debug)]
pub struct ShardedHashDb {
    shards: Box<[RwLock<HashDb>]>,
    mask: usize,
    /// One contended-acquisition counter per shard.
    contended: Box<[AtomicU64]>,
    /// Bumped on every ownership displacement (an out-of-order insert that
    /// replaced an existing first sighting). Observers compare the epoch
    /// around an observation to detect racing displacements and
    /// re-validate their authoritative sets; see `FingerprintStore::observe`.
    displacements: AtomicU64,
}

impl Default for ShardedHashDb {
    fn default() -> Self {
        Self::with_shards(default_shard_count())
    }
}

impl ShardedHashDb {
    /// Creates an empty database with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with `shards` stripes (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Vec<RwLock<HashDb>> = (0..count).map(|_| RwLock::new(HashDb::new())).collect();
        let contended: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: count - 1,
            contended: contended.into_boxed_slice(),
            displacements: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, hash: u32) -> usize {
        hash as usize & self.mask
    }

    /// Records that `hash` was observed in `segment` at `time`, unless an
    /// earlier sighting already exists. Returns `true` if this became the
    /// hash's first sighting.
    pub fn record_first_sighting(&self, hash: u32, segment: SegmentId, time: Timestamp) -> bool {
        !matches!(
            self.record_sighting(hash, segment, time),
            SightingOutcome::Kept(_)
        )
    }

    /// Like [`ShardedHashDb::record_first_sighting`], but reports what
    /// happened to the hash's ownership. Displacements bump the
    /// displacement epoch.
    pub fn record_sighting(
        &self,
        hash: u32,
        segment: SegmentId,
        time: Timestamp,
    ) -> SightingOutcome {
        let outcome = write_shard!(self, self.shard_of(hash)).record_sighting(hash, segment, time);
        if matches!(outcome, SightingOutcome::Displaced(_)) {
            self.displacements.fetch_add(1, Ordering::SeqCst);
        }
        outcome
    }

    /// The current displacement epoch: total ownership displacements so
    /// far. An unchanged epoch across an observation proves no concurrent
    /// displacement raced it.
    pub fn displacement_epoch(&self) -> u64 {
        self.displacements.load(Ordering::SeqCst)
    }

    /// `oldestParagraphWith(h)`: the first sighting of `hash`, if any.
    pub fn oldest_with(&self, hash: u32) -> Option<Sighting> {
        read_shard!(self, self.shard_of(hash)).oldest_with(hash)
    }

    /// Number of distinct hashes on record.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .sum()
    }

    /// Whether no hashes are on record.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| read_shard!(self, i).is_empty())
    }

    /// A snapshot of all (hash, sighting) entries in arbitrary order. The
    /// snapshot is per-shard consistent, not globally atomic.
    pub fn entries(&self) -> Vec<(u32, Sighting)> {
        let mut all = Vec::new();
        for i in 0..self.shards.len() {
            all.extend(read_shard!(self, i).entries());
        }
        all
    }

    /// Drops every first-sighting record owned by `segment`.
    pub fn remove_sightings_of(&self, segment: SegmentId) {
        for i in 0..self.shards.len() {
            write_shard!(self, i).remove_sightings_of(segment);
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry counts (occupancy).
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .collect()
    }

    /// Total lock acquisitions that had to wait for another holder.
    pub fn contention_count(&self) -> u64 {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard contended-acquisition counts.
    pub fn contention_counts(&self) -> Vec<u64> {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// `DBpar` striped over `N` lock-protected shards, keyed by `segment % N`.
#[derive(Debug)]
pub struct ShardedSegmentDb {
    shards: Box<[RwLock<SegmentDb>]>,
    mask: usize,
    /// One contended-acquisition counter per shard.
    contended: Box<[AtomicU64]>,
}

impl Default for ShardedSegmentDb {
    fn default() -> Self {
        Self::with_shards(default_shard_count())
    }
}

impl ShardedSegmentDb {
    /// Creates an empty database with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with `shards` stripes (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Vec<RwLock<SegmentDb>> =
            (0..count).map(|_| RwLock::new(SegmentDb::new())).collect();
        let contended: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: count - 1,
            contended: contended.into_boxed_slice(),
        }
    }

    fn shard_of(&self, segment: SegmentId) -> usize {
        segment.get() as usize & self.mask
    }

    /// Inserts or replaces the stored fingerprint of `segment`. Both hash
    /// lists must be sorted and deduplicated, `authoritative ⊆ hashes`.
    pub fn upsert(
        &self,
        segment: SegmentId,
        hashes: Vec<u32>,
        authoritative: Vec<u32>,
        threshold: f64,
        now: Timestamp,
    ) {
        write_shard!(self, self.shard_of(segment)).upsert(
            segment,
            hashes,
            authoritative,
            threshold,
            now,
        );
    }

    /// Replaces a segment's authoritative set; `false` if unknown.
    pub fn set_authoritative(&self, segment: SegmentId, authoritative: Vec<u32>) -> bool {
        write_shard!(self, self.shard_of(segment)).set_authoritative(segment, authoritative)
    }

    /// Removes `hash` from a segment's authoritative set; `true` if it was
    /// present.
    pub fn revoke_authoritative(&self, segment: SegmentId, hash: u32) -> bool {
        write_shard!(self, self.shard_of(segment)).revoke_authoritative(segment, hash)
    }

    /// Updates a segment's threshold; `false` if unknown.
    pub fn set_threshold(&self, segment: SegmentId, threshold: f64) -> bool {
        write_shard!(self, self.shard_of(segment)).set_threshold(segment, threshold)
    }

    /// Fetches a stored segment as an owned handle, so no shard lock is
    /// held while the caller inspects it.
    pub fn get(&self, segment: SegmentId) -> Option<Arc<StoredSegment>> {
        read_shard!(self, self.shard_of(segment)).get_shared(segment)
    }

    /// Removes a segment; `true` if it was stored.
    pub fn remove(&self, segment: SegmentId) -> bool {
        write_shard!(self, self.shard_of(segment)).remove(segment)
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .sum()
    }

    /// Whether no segments are stored.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| read_shard!(self, i).is_empty())
    }

    /// All stored segment ids (arbitrary order; per-shard consistent).
    pub fn ids(&self) -> Vec<SegmentId> {
        let mut all = Vec::new();
        for i in 0..self.shards.len() {
            all.extend(read_shard!(self, i).ids());
        }
        all
    }

    /// Ids of segments last updated strictly before `cutoff`.
    pub fn segments_older_than(&self, cutoff: Timestamp) -> Vec<SegmentId> {
        let mut all = Vec::new();
        for i in 0..self.shards.len() {
            all.extend(read_shard!(self, i).segments_older_than(cutoff));
        }
        all
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry counts (occupancy).
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .collect()
    }

    /// Total lock acquisitions that had to wait for another holder.
    pub fn contention_count(&self) -> u64 {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard contended-acquisition counts.
    pub fn contention_counts(&self) -> Vec<u64> {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_is_power_of_two_and_clamped() {
        let n = default_shard_count();
        assert!(n.is_power_of_two());
        assert!((8..=64).contains(&n));
        assert_eq!(ShardedHashDb::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedSegmentDb::with_shards(0).shard_count(), 1);
    }

    #[test]
    fn sharded_hash_db_behaves_like_plain() {
        let sharded = ShardedHashDb::with_shards(8);
        let mut plain = HashDb::new();
        for i in 0..200u32 {
            let seg = SegmentId::new(u64::from(i % 7));
            let t = Timestamp::new(u64::from(i / 3));
            assert_eq!(
                sharded.record_first_sighting(i % 50, seg, t),
                plain.record_first_sighting(i % 50, seg, t),
                "insert {i} diverged"
            );
        }
        assert_eq!(sharded.len(), plain.len());
        for h in 0..50 {
            assert_eq!(sharded.oldest_with(h), plain.oldest_with(h));
        }
        sharded.remove_sightings_of(SegmentId::new(3));
        plain.remove_sightings_of(SegmentId::new(3));
        assert_eq!(sharded.len(), plain.len());
        let total: usize = sharded.shard_sizes().iter().sum();
        assert_eq!(total, sharded.len());
    }

    #[test]
    fn sharded_segment_db_round_trips() {
        let db = ShardedSegmentDb::with_shards(8);
        for i in 0..32u64 {
            db.upsert(
                SegmentId::new(i),
                vec![i as u32, i as u32 + 1],
                vec![i as u32],
                0.5,
                Timestamp::new(i),
            );
        }
        assert_eq!(db.len(), 32);
        let stored = db.get(SegmentId::new(5)).unwrap();
        assert_eq!(stored.hashes(), &[5, 6]);
        assert!(db.set_threshold(SegmentId::new(5), 0.9));
        assert_eq!(db.get(SegmentId::new(5)).unwrap().threshold(), 0.9);
        // The handle taken before the update still reads consistently.
        assert_eq!(stored.threshold(), 0.5);
        assert!(db.remove(SegmentId::new(5)));
        assert!(db.get(SegmentId::new(5)).is_none());
        assert_eq!(db.segments_older_than(Timestamp::new(2)).len(), 2);
        let mut ids = db.ids();
        ids.sort_unstable();
        assert_eq!(ids.len(), 31);
    }

    #[test]
    fn per_shard_contention_counts_sum_to_total() {
        let db = ShardedHashDb::with_shards(4);
        let counts = db.contention_counts();
        assert_eq!(counts.len(), db.shard_count());
        assert_eq!(counts.iter().sum::<u64>(), db.contention_count());
        // Uncontended single-threaded use never bumps any shard counter.
        for i in 0..100u32 {
            db.record_first_sighting(i, SegmentId::new(1), Timestamp::new(0));
            db.oldest_with(i);
        }
        assert_eq!(db.contention_count(), 0);
        assert!(db.contention_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn concurrent_writers_do_not_lose_entries() {
        let db = Arc::new(ShardedHashDb::with_shards(8));
        std::thread::scope(|s| {
            for worker in 0..4u32 {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let hash = worker * 500 + i;
                        db.record_first_sighting(
                            hash,
                            SegmentId::new(u64::from(worker)),
                            Timestamp::new(u64::from(hash)),
                        );
                    }
                });
            }
        });
        assert_eq!(db.len(), 2000);
    }
}
