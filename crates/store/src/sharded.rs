//! Lock-striped, sharded variants of `DBhash` and `DBpar`, tiered over an
//! optional cold overlay.
//!
//! §6.2 of the paper measures BrowserFlow against stores holding tens of
//! millions of hashes; a single engine-wide lock serialises every check
//! against every observation. [`ShardedHashDb`] and [`ShardedSegmentDb`]
//! stripe the two databases over `N = next_pow2(cores)` independent
//! [`RwLock`]-protected stripes (clamped to `[8, 64]` so even a one-core
//! container exercises real striping), keyed by `hash % N` and
//! `segment % N` respectively. Checks — which are read-dominated — take
//! shared locks on exactly the stripes their hashes live in, so concurrent
//! checkers proceed in parallel and writers block only one stripe at a
//! time.
//!
//! # The hot/cold tiers
//!
//! Each stripe is a [`HashStripe`] / [`SegmentStripe`]: the mutable
//! in-memory **hot** database layered over at most one immutable, mmap'd
//! **cold** shard ([`crate::tier::ColdShard`]). Reads consult hot first and
//! fall through to the cold file; writes always land hot, with the
//! touched cold record suppressed by a tombstone:
//!
//! - a segment write (upsert, threshold/authoritative edit, removal)
//!   tombstones the id in [`ColdSegments::dead`] — edits first copy the
//!   cold record out (*promotion-on-write*);
//! - an earlier-timestamped sighting of a cold-owned hash installs hot and
//!   marks the hash [`ColdHashes::shadowed`]; a removed segment's cold
//!   sightings die with it via [`ColdHashes::dead`]. Shadowed hashes stay
//!   suppressed even if the displacing hot record is later evicted — the
//!   pure-hot store would have dropped the record entirely.
//!
//! The overlay lives *inside* the stripe lock, so the existing
//! single-stripe locking discipline (and the per-stripe contention
//! counters feeding `browserflow-core`'s metrics) carries over unchanged.
//! Demotion (`FingerprintStore::demote_idle_shards`) is the only operation
//! that replaces an overlay: it rewrites the merged stripe as a fresh cold
//! file and swaps it in with empty tombstone sets.

use crate::fx::FxHashSet;
use crate::hash_db::{HashDb, Sighting, SightingOutcome};
use crate::segment_db::{SegmentDb, StoredSegment};
use crate::tier::{ColdShard, SegmentHandle};
use crate::{SegmentId, Timestamp};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of stripes: the next power of two at or above the core count,
/// clamped to `[8, 64]`.
pub(crate) fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.next_power_of_two().clamp(8, 64)
}

/// Acquires a read guard, counting the acquisition as contended if it
/// could not be taken without blocking.
macro_rules! read_shard {
    ($self:expr, $index:expr) => {{
        let index = $index;
        let shard = &$self.shards[index];
        match shard.try_read() {
            Some(guard) => guard,
            None => {
                $self.contended[index].fetch_add(1, Ordering::Relaxed);
                shard.read()
            }
        }
    }};
}

/// Acquires a write guard, counting the acquisition as contended if it
/// could not be taken without blocking.
macro_rules! write_shard {
    ($self:expr, $index:expr) => {{
        let index = $index;
        let shard = &$self.shards[index];
        match shard.try_write() {
            Some(guard) => guard,
            None => {
                $self.contended[index].fetch_add(1, Ordering::Relaxed);
                shard.write()
            }
        }
    }};
}

// --- Hash stripes ----------------------------------------------------------

/// The cold overlay of one hash stripe: an immutable sighting table plus
/// the tombstones that hide records superseded or removed since attach.
#[derive(Debug)]
pub(crate) struct ColdHashes {
    shard: Arc<ColdShard>,
    /// Raw ids of segments whose cold sightings were removed with them.
    dead: FxHashSet<u64>,
    /// Hashes whose cold sighting was displaced by an earlier hot record
    /// (or is otherwise permanently superseded).
    shadowed: FxHashSet<u32>,
    /// Live (non-tombstoned) cold sightings, maintained eagerly so
    /// occupancy reads stay O(1).
    live: usize,
}

/// One lock-protected hash stripe: hot `DBhash` over an optional cold
/// overlay.
#[derive(Debug, Default)]
pub(crate) struct HashStripe {
    hot: HashDb,
    cold: Option<ColdHashes>,
}

impl HashStripe {
    fn cold_live_sighting(&self, hash: u32) -> Option<Sighting> {
        let cold = self.cold.as_ref()?;
        if cold.shadowed.contains(&hash) {
            return None;
        }
        let sighting = cold.shard.oldest_with(hash)?;
        (!cold.dead.contains(&sighting.segment.get())).then_some(sighting)
    }

    /// Records a sighting against the tier pair. The second value reports
    /// whether the write displaced (promoted over) a live cold record.
    pub(crate) fn record_sighting(
        &mut self,
        hash: u32,
        segment: SegmentId,
        time: Timestamp,
    ) -> (SightingOutcome, bool) {
        if self.hot.oldest_with(hash).is_some() {
            // A hot record always predates (or shadows) any cold one.
            return (self.hot.record_sighting(hash, segment, time), false);
        }
        if let Some(existing) = self.cold_live_sighting(hash) {
            if time >= existing.time {
                return (SightingOutcome::Kept(existing.segment), false);
            }
            let cold = self.cold.as_mut().expect("cold sighting implies overlay");
            cold.shadowed.insert(hash);
            cold.live -= 1;
            let installed = self.hot.record_sighting(hash, segment, time);
            debug_assert!(matches!(installed, SightingOutcome::Installed));
            return (SightingOutcome::Displaced(existing.segment), true);
        }
        (self.hot.record_sighting(hash, segment, time), false)
    }

    pub(crate) fn oldest_with(&self, hash: u32) -> Option<Sighting> {
        self.hot
            .oldest_with(hash)
            .or_else(|| self.cold_live_sighting(hash))
    }

    pub(crate) fn len(&self) -> usize {
        self.hot.len() + self.cold.as_ref().map_or(0, |c| c.live)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hot plus live cold entries, arbitrary order.
    pub(crate) fn entries(&self) -> Vec<(u32, Sighting)> {
        let mut all = self.hot.entries();
        if let Some(cold) = &self.cold {
            if cold.live > 0 {
                for index in 0..cold.shard.sighting_count() {
                    let (hash, sighting) = cold.shard.sighting_at(index);
                    if !cold.shadowed.contains(&hash)
                        && !cold.dead.contains(&sighting.segment.get())
                    {
                        all.push((hash, sighting));
                    }
                }
            }
        }
        all
    }

    pub(crate) fn remove_sightings_of(&mut self, segment: SegmentId) {
        self.hot.remove_sightings_of(segment);
        if let Some(cold) = &mut self.cold {
            if cold.dead.insert(segment.get()) {
                let removed = (0..cold.shard.sighting_count())
                    .filter(|&index| {
                        let (hash, sighting) = cold.shard.sighting_at(index);
                        sighting.segment == segment && !cold.shadowed.contains(&hash)
                    })
                    .count();
                cold.live -= removed;
            }
        }
    }

    /// Replaces the stripe with a freshly sealed cold overlay (the hot
    /// side and all tombstones are dropped: the file is the merged truth).
    pub(crate) fn attach_cold(&mut self, shard: Arc<ColdShard>) {
        let live = shard.sighting_count();
        self.hot = HashDb::new();
        self.cold = Some(ColdHashes {
            shard,
            dead: FxHashSet::default(),
            shadowed: FxHashSet::default(),
            live,
        });
    }

    /// Whether the stripe has diverged from its cold file (or has no cold
    /// file at all while holding data).
    pub(crate) fn is_dirty(&self) -> bool {
        !self.hot.is_empty()
            || self
                .cold
                .as_ref()
                .is_some_and(|c| !c.dead.is_empty() || !c.shadowed.is_empty())
    }

    pub(crate) fn cold_live(&self) -> usize {
        self.cold.as_ref().map_or(0, |c| c.live)
    }

    /// The merged stripe contents sorted by hash — the demotion snapshot.
    pub(crate) fn merged_sightings(&self) -> Vec<(u32, Sighting)> {
        let mut all = self.entries();
        all.sort_unstable_by_key(|(hash, _)| *hash);
        all
    }

    /// Whether the cold overlay carries tombstones — sightings shadowed
    /// by promoted hot copies or dead with their segment — that a
    /// compaction rewrite would drop from the shard file.
    pub(crate) fn cold_has_tombstones(&self) -> bool {
        self.cold
            .as_ref()
            .is_some_and(|c| !c.dead.is_empty() || !c.shadowed.is_empty())
    }

    /// The *live* cold sightings only, sorted by hash — the compaction
    /// snapshot. Hot records are deliberately excluded: compaction
    /// rewrites the cold file in place while the hot tier stays put.
    pub(crate) fn cold_live_sightings(&self) -> Vec<(u32, Sighting)> {
        let mut all = Vec::new();
        if let Some(cold) = &self.cold {
            for index in 0..cold.shard.sighting_count() {
                let (hash, sighting) = cold.shard.sighting_at(index);
                if !cold.shadowed.contains(&hash) && !cold.dead.contains(&sighting.segment.get()) {
                    all.push((hash, sighting));
                }
            }
        }
        all.sort_unstable_by_key(|(hash, _)| *hash);
        all
    }

    /// Swaps in a compacted cold overlay, keeping the hot tier in place.
    /// The new file already excludes every tombstoned record, so both
    /// tombstone sets reset to empty.
    pub(crate) fn replace_cold(&mut self, shard: Arc<ColdShard>) {
        let live = shard.sighting_count();
        self.cold = Some(ColdHashes {
            shard,
            dead: FxHashSet::default(),
            shadowed: FxHashSet::default(),
            live,
        });
    }
}

/// Compact result of [`ShardedHashDb::record_sightings_batch`].
///
/// Deliberately *not* a per-sighting [`SightingOutcome`] vector: the
/// batch path only needs "does the sighted segment own this hash" per
/// sighting plus the (rare) displacements, and a one-byte-per-sighting
/// bitmap keeps the writeback near-sequential where a 16-byte outcome
/// vector would stride a cache line per store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSightings {
    /// For each input sighting (same order), whether the sighted segment
    /// owns the hash after its sighting — `true` exactly when the
    /// per-sighting path would have yielded `Installed`, `Displaced(_)`,
    /// or `Kept(owner)` with `owner` equal to the sighted segment.
    pub owned: Vec<bool>,
    /// `(input index, previous owner)` for every sighting that displaced
    /// an existing owner, in submission order.
    pub displaced: Vec<(u32, SegmentId)>,
    /// Stripe locks taken (one per touched stripe).
    pub locks: u64,
}

/// `DBhash` striped over `N` lock-protected stripes, keyed by `hash % N`.
///
/// All operations take `&self`; per-stripe exclusion preserves the
/// earliest-sighting-wins invariant of [`HashDb`] because each hash lives
/// in exactly one stripe (hot or cold).
#[derive(Debug)]
pub struct ShardedHashDb {
    shards: Box<[RwLock<HashStripe>]>,
    mask: usize,
    /// One contended-acquisition counter per stripe.
    contended: Box<[AtomicU64]>,
    /// Bumped on every ownership displacement (an out-of-order insert that
    /// replaced an existing first sighting). Observers compare the epoch
    /// around an observation to detect racing displacements and
    /// re-validate their authoritative sets; see `FingerprintStore::observe`.
    displacements: AtomicU64,
    /// Cold sightings displaced into the hot tier since open.
    promoted: AtomicU64,
}

impl Default for ShardedHashDb {
    fn default() -> Self {
        Self::with_shards(default_shard_count())
    }
}

impl ShardedHashDb {
    /// Creates an empty database with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with `shards` stripes (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Vec<RwLock<HashStripe>> = (0..count)
            .map(|_| RwLock::new(HashStripe::default()))
            .collect();
        let contended: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: count - 1,
            contended: contended.into_boxed_slice(),
            displacements: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, hash: u32) -> usize {
        hash as usize & self.mask
    }

    /// Records that `hash` was observed in `segment` at `time`, unless an
    /// earlier sighting already exists. Returns `true` if this became the
    /// hash's first sighting.
    pub fn record_first_sighting(&self, hash: u32, segment: SegmentId, time: Timestamp) -> bool {
        !matches!(
            self.record_sighting(hash, segment, time),
            SightingOutcome::Kept(_)
        )
    }

    /// Like [`ShardedHashDb::record_first_sighting`], but reports what
    /// happened to the hash's ownership. Displacements bump the
    /// displacement epoch.
    pub fn record_sighting(
        &self,
        hash: u32,
        segment: SegmentId,
        time: Timestamp,
    ) -> SightingOutcome {
        let (outcome, promoted) =
            write_shard!(self, self.shard_of(hash)).record_sighting(hash, segment, time);
        if promoted {
            self.promoted.fetch_add(1, Ordering::Relaxed);
        }
        if matches!(outcome, SightingOutcome::Displaced(_)) {
            self.displacements.fetch_add(1, Ordering::SeqCst);
        }
        outcome
    }

    /// Records a whole batch of sightings, taking each touched stripe lock
    /// **once** instead of once per hash.
    ///
    /// Sightings are partitioned into contiguous per-stripe runs with a
    /// stable counting sort, so all sightings of any given hash are
    /// processed in the order they appear in `sightings` —
    /// outcome-identical to calling [`ShardedHashDb::record_sighting`] for
    /// each tuple in order (per-hash state is independent across hashes,
    /// and every occurrence of a hash lands in the same stripe run). The
    /// contiguous layout matters for throughput as much as the lock
    /// batching: each stripe's pass streams its inputs sequentially and
    /// keeps that stripe's map cache-resident instead of striding across
    /// the whole batch once per stripe. Promotion and displacement
    /// counters advance exactly as the per-sighting path would advance
    /// them.
    pub fn record_sightings_batch(
        &self,
        sightings: &[(u32, SegmentId, Timestamp)],
    ) -> BatchSightings {
        let pairs: Vec<(u32, u32)> = sightings
            .iter()
            .enumerate()
            .map(|(index, &(hash, _, _))| (hash, index as u32))
            .collect();
        let meta: Vec<(SegmentId, Timestamp)> = sightings
            .iter()
            .map(|&(_, segment, time)| (segment, time))
            .collect();
        self.record_sightings_indexed(&pairs, &meta)
    }

    /// The core of [`ShardedHashDb::record_sightings_batch`], with the
    /// per-entry metadata factored out: `pairs` carries `(hash, entry)`
    /// where `entry` indexes into `meta`'s `(segment, timestamp)` rows.
    ///
    /// Bulk callers whose entries each carry many hashes (a fingerprint's
    /// worth) use this directly — 8 bytes per sighting instead of a
    /// 24-byte triple keeps the partitioning pass memory-bound work to a
    /// third. Semantics are exactly the general form's: sighting `i` of
    /// `pairs` behaves like `record_sighting(pairs[i].0, meta[entry].0,
    /// meta[entry].1)` issued in submission order.
    pub fn record_sightings_indexed(
        &self,
        pairs: &[(u32, u32)],
        meta: &[(SegmentId, Timestamp)],
    ) -> BatchSightings {
        let shard_count = self.shards.len();
        let mut counts = vec![0u32; shard_count];
        let mut stripe_of: Vec<u16> = Vec::with_capacity(pairs.len());
        for &(hash, _) in pairs {
            let stripe = self.shard_of(hash);
            stripe_of.push(stripe as u16);
            counts[stripe] += 1;
        }
        let mut bounds = vec![0u32; shard_count + 1];
        for stripe in 0..shard_count {
            bounds[stripe + 1] = bounds[stripe] + counts[stripe];
        }
        // Stable counting sort into contiguous per-stripe runs of
        // `(hash, submission index, entry)`.
        let mut cursor: Vec<u32> = bounds[..shard_count].to_vec();
        let mut ordered: Vec<(u32, u32, u32)> = vec![(0, 0, 0); pairs.len()];
        for (index, &(hash, entry)) in pairs.iter().enumerate() {
            let stripe = stripe_of[index] as usize;
            ordered[cursor[stripe] as usize] = (hash, index as u32, entry);
            cursor[stripe] += 1;
        }

        let mut owned = vec![false; pairs.len()];
        let mut displaced: Vec<(u32, SegmentId)> = Vec::new();
        let mut locks = 0u64;
        let mut promotions = 0u64;
        for stripe in 0..shard_count {
            let (start, end) = (bounds[stripe] as usize, bounds[stripe + 1] as usize);
            if start == end {
                continue;
            }
            locks += 1;
            let mut guard = write_shard!(self, stripe);
            for &(hash, index, entry) in &ordered[start..end] {
                let (segment, time) = meta[entry as usize];
                let (outcome, promoted) = guard.record_sighting(hash, segment, time);
                if promoted {
                    promotions += 1;
                }
                owned[index as usize] = match outcome {
                    SightingOutcome::Installed => true,
                    SightingOutcome::Displaced(previous) => {
                        displaced.push((index, previous));
                        true
                    }
                    SightingOutcome::Kept(owner) => owner == segment,
                };
            }
        }
        if promotions > 0 {
            self.promoted.fetch_add(promotions, Ordering::Relaxed);
        }
        if !displaced.is_empty() {
            self.displacements
                .fetch_add(displaced.len() as u64, Ordering::SeqCst);
        }
        // Stripe runs interleave submissions, so displacements come out in
        // stripe order; restore submission order for callers that replay
        // them as revocations.
        displaced.sort_unstable_by_key(|&(index, _)| index);
        BatchSightings {
            owned,
            displaced,
            locks,
        }
    }

    /// The current displacement epoch: total ownership displacements so
    /// far. An unchanged epoch across an observation proves no concurrent
    /// displacement raced it.
    pub fn displacement_epoch(&self) -> u64 {
        self.displacements.load(Ordering::SeqCst)
    }

    /// `oldestParagraphWith(h)`: the first sighting of `hash`, if any.
    pub fn oldest_with(&self, hash: u32) -> Option<Sighting> {
        read_shard!(self, self.shard_of(hash)).oldest_with(hash)
    }

    /// Number of distinct hashes on record (hot plus live cold).
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .sum()
    }

    /// Whether no hashes are on record.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| read_shard!(self, i).is_empty())
    }

    /// A snapshot of all (hash, sighting) entries in arbitrary order. The
    /// snapshot is per-stripe consistent, not globally atomic.
    pub fn entries(&self) -> Vec<(u32, Sighting)> {
        let mut all = Vec::new();
        for i in 0..self.shards.len() {
            all.extend(read_shard!(self, i).entries());
        }
        all
    }

    /// Drops every first-sighting record owned by `segment`.
    pub fn remove_sightings_of(&self, segment: SegmentId) {
        for i in 0..self.shards.len() {
            write_shard!(self, i).remove_sightings_of(segment);
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-stripe entry counts (hot plus live cold occupancy).
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .collect()
    }

    /// Total lock acquisitions that had to wait for another holder.
    pub fn contention_count(&self) -> u64 {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-stripe contended-acquisition counts.
    pub fn contention_counts(&self) -> Vec<u64> {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Cold sightings displaced into the hot tier since open.
    pub(crate) fn promoted_count(&self) -> u64 {
        self.promoted.load(Ordering::Relaxed)
    }

    /// Live sightings currently served from cold files.
    pub(crate) fn cold_live(&self) -> usize {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).cold_live())
            .sum()
    }

    /// Attaches `shard` as stripe `index`'s cold overlay (replacing hot
    /// contents — the file is the merged truth).
    pub(crate) fn attach_cold(&self, index: usize, shard: Arc<ColdShard>) {
        write_shard!(self, index).attach_cold(shard);
    }

    /// Direct stripe access for the demotion sweep, which must hold the
    /// matching segment and hash stripe locks together.
    pub(crate) fn stripe(&self, index: usize) -> &RwLock<HashStripe> {
        &self.shards[index]
    }
}

// --- Segment stripes --------------------------------------------------------

/// The cold overlay of one segment stripe.
#[derive(Debug)]
pub(crate) struct ColdSegments {
    shard: Arc<ColdShard>,
    /// Raw ids tombstoned since attach. Invariant: every member is
    /// present in the cold directory, so the live count is
    /// `segment_count - dead.len()`.
    dead: FxHashSet<u64>,
}

/// One lock-protected segment stripe: hot `DBpar` over an optional cold
/// overlay.
#[derive(Debug, Default)]
pub(crate) struct SegmentStripe {
    hot: SegmentDb,
    cold: Option<ColdSegments>,
}

impl SegmentStripe {
    fn cold_live_index(&self, segment: SegmentId) -> Option<usize> {
        let cold = self.cold.as_ref()?;
        if cold.dead.contains(&segment.get()) {
            return None;
        }
        cold.shard.find(segment)
    }

    /// Tombstones `segment` in the cold overlay if it lives there.
    fn bury_cold(&mut self, segment: SegmentId) {
        if self.cold_live_index(segment).is_some() {
            let cold = self.cold.as_mut().expect("cold hit implies overlay");
            cold.dead.insert(segment.get());
        }
    }

    /// Copies a live cold record into the hot tier so it can be mutated.
    /// Returns the hot copy; the cold original is tombstoned.
    fn promote(&mut self, segment: SegmentId, index: usize) -> StoredSegment {
        let cold = self.cold.as_mut().expect("cold index implies overlay");
        let copy = cold.shard.materialize(index);
        cold.dead.insert(segment.get());
        copy
    }

    pub(crate) fn upsert(
        &mut self,
        segment: SegmentId,
        hashes: Vec<u32>,
        authoritative: Vec<u32>,
        threshold: f64,
        now: Timestamp,
    ) {
        self.hot
            .upsert(segment, hashes, authoritative, threshold, now);
        self.bury_cold(segment);
    }

    /// Replaces a segment's authoritative set; `false` if unknown. The
    /// second value reports whether a cold record was promoted to do it.
    pub(crate) fn set_authoritative(
        &mut self,
        segment: SegmentId,
        authoritative: Vec<u32>,
    ) -> (bool, bool) {
        if self.hot.set_authoritative(segment, authoritative.clone()) {
            return (true, false);
        }
        let Some(index) = self.cold_live_index(segment) else {
            return (false, false);
        };
        let copy = self.promote(segment, index);
        self.hot.upsert(
            segment,
            copy.hashes().to_vec(),
            authoritative,
            copy.threshold(),
            copy.updated(),
        );
        (true, true)
    }

    /// Removes `hash` from a segment's authoritative set; `true` if it was
    /// present. The second value reports a promotion.
    pub(crate) fn revoke_authoritative(&mut self, segment: SegmentId, hash: u32) -> (bool, bool) {
        if self.hot.revoke_authoritative(segment, hash) {
            return (true, false);
        }
        if self.hot.get(segment).is_some() {
            // Known hot, hash simply absent: no need to consult cold.
            return (false, false);
        }
        let Some(index) = self.cold_live_index(segment) else {
            return (false, false);
        };
        let cold = self.cold.as_ref().expect("cold index implies overlay");
        if cold
            .shard
            .authoritative_at(index)
            .binary_search(&hash)
            .is_err()
        {
            // Absent from the cold authoritative set: nothing to revoke,
            // so leave the record cold.
            return (false, false);
        }
        let copy = self.promote(segment, index);
        let mut authoritative = copy.authoritative().to_vec();
        if let Ok(position) = authoritative.binary_search(&hash) {
            authoritative.remove(position);
        }
        self.hot.upsert(
            segment,
            copy.hashes().to_vec(),
            authoritative,
            copy.threshold(),
            copy.updated(),
        );
        (true, true)
    }

    /// Updates a segment's threshold; `false` if unknown. The second value
    /// reports a promotion.
    pub(crate) fn set_threshold(&mut self, segment: SegmentId, threshold: f64) -> (bool, bool) {
        if self.hot.set_threshold(segment, threshold) {
            return (true, false);
        }
        let Some(index) = self.cold_live_index(segment) else {
            return (false, false);
        };
        let copy = self.promote(segment, index);
        self.hot.upsert(
            segment,
            copy.hashes().to_vec(),
            copy.authoritative().to_vec(),
            threshold,
            copy.updated(),
        );
        (true, true)
    }

    /// A zero-copy handle to the segment, wherever it lives.
    pub(crate) fn get_handle(&self, segment: SegmentId) -> Option<SegmentHandle> {
        if let Some(stored) = self.hot.get_shared(segment) {
            return Some(SegmentHandle::hot(stored));
        }
        let index = self.cold_live_index(segment)?;
        let cold = self.cold.as_ref().expect("cold index implies overlay");
        Some(SegmentHandle::cold(Arc::clone(&cold.shard), index))
    }

    /// An owned copy of the segment (cold records are materialised).
    pub(crate) fn get_shared(&self, segment: SegmentId) -> Option<Arc<StoredSegment>> {
        if let Some(stored) = self.hot.get_shared(segment) {
            return Some(stored);
        }
        let index = self.cold_live_index(segment)?;
        let cold = self.cold.as_ref().expect("cold index implies overlay");
        Some(Arc::new(cold.shard.materialize(index)))
    }

    pub(crate) fn remove(&mut self, segment: SegmentId) -> bool {
        let hot = self.hot.remove(segment);
        if hot {
            // An id never lives in both tiers, but bury defensively.
            self.bury_cold(segment);
            return true;
        }
        if self.cold_live_index(segment).is_some() {
            let cold = self.cold.as_mut().expect("cold hit implies overlay");
            cold.dead.insert(segment.get());
            return true;
        }
        false
    }

    pub(crate) fn len(&self) -> usize {
        self.hot.len() + self.cold_live_count()
    }

    fn cold_live_count(&self) -> usize {
        self.cold
            .as_ref()
            .map_or(0, |c| c.shard.segment_count() - c.dead.len())
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn for_each_cold_live(&self, mut f: impl FnMut(usize, SegmentId)) {
        if let Some(cold) = &self.cold {
            if cold.shard.segment_count() > cold.dead.len() {
                for index in 0..cold.shard.segment_count() {
                    let id = cold.shard.dir_id(index);
                    if !cold.dead.contains(&id.get()) {
                        f(index, id);
                    }
                }
            }
        }
    }

    pub(crate) fn ids(&self) -> Vec<SegmentId> {
        let mut all: Vec<SegmentId> = self.hot.ids().collect();
        self.for_each_cold_live(|_, id| all.push(id));
        all
    }

    pub(crate) fn segments_older_than(&self, cutoff: Timestamp) -> Vec<SegmentId> {
        let mut all = self.hot.segments_older_than(cutoff);
        if let Some(cold) = &self.cold {
            self.for_each_cold_live(|index, id| {
                if cold.shard.dir_updated(index) < cutoff {
                    all.push(id);
                }
            });
        }
        all
    }

    /// Whether every hot segment is idle (updated strictly before
    /// `cutoff`). Vacuously true for an empty hot tier.
    pub(crate) fn hot_is_idle(&self, cutoff: Timestamp) -> bool {
        self.hot.segments_older_than(cutoff).len() == self.hot.len()
    }

    /// Whether the stripe has diverged from its cold file.
    pub(crate) fn is_dirty(&self) -> bool {
        !self.hot.is_empty() || self.cold.as_ref().is_some_and(|c| !c.dead.is_empty())
    }

    pub(crate) fn has_cold(&self) -> bool {
        self.cold.is_some()
    }

    /// The merged stripe contents sorted by id — the demotion snapshot.
    pub(crate) fn merged_segments(&self) -> Vec<(SegmentId, Arc<StoredSegment>)> {
        let hot_ids: Vec<SegmentId> = self.hot.ids().collect();
        let mut all: Vec<(SegmentId, Arc<StoredSegment>)> = hot_ids
            .into_iter()
            .filter_map(|id| self.hot.get_shared(id).map(|s| (id, s)))
            .collect();
        if let Some(cold) = &self.cold {
            self.for_each_cold_live(|index, id| {
                all.push((id, Arc::new(cold.shard.materialize(index))));
            });
        }
        all.sort_unstable_by_key(|(id, _)| *id);
        all
    }

    /// Whether the cold overlay carries tombstones (records superseded by
    /// promoted hot copies or removed outright) that a compaction rewrite
    /// would drop from the shard file.
    pub(crate) fn cold_has_tombstones(&self) -> bool {
        self.cold.as_ref().is_some_and(|c| !c.dead.is_empty())
    }

    /// The *live* cold records only, sorted by id — the compaction
    /// snapshot. Hot records are deliberately excluded: compaction
    /// rewrites the cold file in place while the hot tier stays put.
    pub(crate) fn cold_live_segments(&self) -> Vec<(SegmentId, Arc<StoredSegment>)> {
        let mut all = Vec::new();
        if let Some(cold) = &self.cold {
            self.for_each_cold_live(|index, id| {
                all.push((id, Arc::new(cold.shard.materialize(index))));
            });
        }
        all.sort_unstable_by_key(|(id, _)| *id);
        all
    }

    /// Swaps in a compacted cold overlay, keeping the hot tier in place.
    /// The new file already excludes every tombstoned record, so the dead
    /// set resets to empty.
    pub(crate) fn replace_cold(&mut self, shard: Arc<ColdShard>) {
        self.cold = Some(ColdSegments {
            shard,
            dead: FxHashSet::default(),
        });
    }

    /// Replaces the stripe with a freshly sealed cold overlay.
    pub(crate) fn attach_cold(&mut self, shard: Arc<ColdShard>) {
        self.hot = SegmentDb::new();
        self.cold = Some(ColdSegments {
            shard,
            dead: FxHashSet::default(),
        });
    }
}

/// One deferred `DBpar` write inside a batched ingest pass
/// ([`ShardedSegmentDb::apply_writes_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentWrite {
    /// Insert or replace a segment's stored fingerprint
    /// ([`ShardedSegmentDb::upsert`]).
    Upsert {
        /// The segment being written.
        segment: SegmentId,
        /// Sorted, deduplicated fingerprint hashes.
        hashes: Vec<u32>,
        /// Sorted authoritative subset (`authoritative ⊆ hashes`).
        authoritative: Vec<u32>,
        /// The segment's disclosure threshold.
        threshold: f64,
        /// The observation's logical timestamp.
        now: Timestamp,
    },
    /// Remove `hash` from a segment's authoritative set
    /// ([`ShardedSegmentDb::revoke_authoritative`]).
    Revoke {
        /// The segment losing authority.
        segment: SegmentId,
        /// The hash being revoked.
        hash: u32,
    },
}

impl SegmentWrite {
    fn segment(&self) -> SegmentId {
        match self {
            SegmentWrite::Upsert { segment, .. } | SegmentWrite::Revoke { segment, .. } => *segment,
        }
    }
}

/// `DBpar` striped over `N` lock-protected stripes, keyed by `segment % N`.
#[derive(Debug)]
pub struct ShardedSegmentDb {
    shards: Box<[RwLock<SegmentStripe>]>,
    mask: usize,
    /// One contended-acquisition counter per stripe.
    contended: Box<[AtomicU64]>,
    /// Cold records copied into the hot tier for mutation since open.
    promoted: AtomicU64,
}

impl Default for ShardedSegmentDb {
    fn default() -> Self {
        Self::with_shards(default_shard_count())
    }
}

impl ShardedSegmentDb {
    /// Creates an empty database with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with `shards` stripes (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Vec<RwLock<SegmentStripe>> = (0..count)
            .map(|_| RwLock::new(SegmentStripe::default()))
            .collect();
        let contended: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: count - 1,
            contended: contended.into_boxed_slice(),
            promoted: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, segment: SegmentId) -> usize {
        segment.get() as usize & self.mask
    }

    fn count_promotion(&self, promoted: bool) {
        if promoted {
            self.promoted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Inserts or replaces the stored fingerprint of `segment`. Both hash
    /// lists must be sorted and deduplicated, `authoritative ⊆ hashes`.
    pub fn upsert(
        &self,
        segment: SegmentId,
        hashes: Vec<u32>,
        authoritative: Vec<u32>,
        threshold: f64,
        now: Timestamp,
    ) {
        write_shard!(self, self.shard_of(segment)).upsert(
            segment,
            hashes,
            authoritative,
            threshold,
            now,
        );
    }

    /// Applies a batch of deferred writes, taking each touched stripe lock
    /// **once** instead of once per write.
    ///
    /// Writes are bucketed by stripe in submission order, so all writes
    /// against any given segment apply in the order they appear in
    /// `writes` — outcome-identical to issuing them one by one (writes to
    /// different segments commute, and every write against a segment lands
    /// in the same stripe bucket). Returns the number of stripe locks
    /// taken; the promotion counter advances exactly as the per-write path
    /// would advance it.
    pub fn apply_writes_batch(&self, mut writes: Vec<SegmentWrite>) -> u64 {
        // Stable counting sort of write *indices* by stripe: the enum
        // values stay in place (their heap payloads never move) and each
        // stripe's pass pulls its writes out with `mem::replace`, so
        // grouping costs index traffic only, not a payload shuffle.
        let shard_count = self.shards.len();
        let mut counts = vec![0u32; shard_count];
        let stripe_of: Vec<u16> = writes
            .iter()
            .map(|write| {
                let stripe = self.shard_of(write.segment());
                counts[stripe] += 1;
                stripe as u16
            })
            .collect();
        let mut bounds = vec![0u32; shard_count + 1];
        for stripe in 0..shard_count {
            bounds[stripe + 1] = bounds[stripe] + counts[stripe];
        }
        let mut cursor: Vec<u32> = bounds[..shard_count].to_vec();
        let mut order: Vec<u32> = vec![0; writes.len()];
        for (index, &stripe) in stripe_of.iter().enumerate() {
            let at = &mut cursor[stripe as usize];
            order[*at as usize] = index as u32;
            *at += 1;
        }
        let placeholder = || SegmentWrite::Revoke {
            segment: SegmentId::new(u64::MAX),
            hash: 0,
        };
        let mut locks = 0u64;
        let mut promotions = 0u64;
        for stripe in 0..shard_count {
            let (start, end) = (bounds[stripe] as usize, bounds[stripe + 1] as usize);
            if start == end {
                continue;
            }
            locks += 1;
            let mut guard = write_shard!(self, stripe);
            for &index in &order[start..end] {
                let write = std::mem::replace(&mut writes[index as usize], placeholder());
                match write {
                    SegmentWrite::Upsert {
                        segment,
                        hashes,
                        authoritative,
                        threshold,
                        now,
                    } => guard.upsert(segment, hashes, authoritative, threshold, now),
                    SegmentWrite::Revoke { segment, hash } => {
                        let (_, promoted) = guard.revoke_authoritative(segment, hash);
                        if promoted {
                            promotions += 1;
                        }
                    }
                }
            }
        }
        if promotions > 0 {
            self.promoted.fetch_add(promotions, Ordering::Relaxed);
        }
        locks
    }

    /// Replaces a segment's authoritative set; `false` if unknown.
    pub fn set_authoritative(&self, segment: SegmentId, authoritative: Vec<u32>) -> bool {
        let (found, promoted) =
            write_shard!(self, self.shard_of(segment)).set_authoritative(segment, authoritative);
        self.count_promotion(promoted);
        found
    }

    /// Removes `hash` from a segment's authoritative set; `true` if it was
    /// present.
    pub fn revoke_authoritative(&self, segment: SegmentId, hash: u32) -> bool {
        let (revoked, promoted) =
            write_shard!(self, self.shard_of(segment)).revoke_authoritative(segment, hash);
        self.count_promotion(promoted);
        revoked
    }

    /// Updates a segment's threshold; `false` if unknown.
    pub fn set_threshold(&self, segment: SegmentId, threshold: f64) -> bool {
        let (found, promoted) =
            write_shard!(self, self.shard_of(segment)).set_threshold(segment, threshold);
        self.count_promotion(promoted);
        found
    }

    /// Fetches a stored segment as an owned handle, so no stripe lock is
    /// held while the caller inspects it. Cold records are copied out;
    /// use [`ShardedSegmentDb::get_handle`] for the zero-copy path.
    pub fn get(&self, segment: SegmentId) -> Option<Arc<StoredSegment>> {
        read_shard!(self, self.shard_of(segment)).get_shared(segment)
    }

    /// Fetches a zero-copy [`SegmentHandle`] to the segment, wherever it
    /// lives: an `Arc` clone for hot records, a (shard, index) view for
    /// cold ones.
    pub fn get_handle(&self, segment: SegmentId) -> Option<SegmentHandle> {
        read_shard!(self, self.shard_of(segment)).get_handle(segment)
    }

    /// Removes a segment; `true` if it was stored.
    pub fn remove(&self, segment: SegmentId) -> bool {
        write_shard!(self, self.shard_of(segment)).remove(segment)
    }

    /// Number of stored segments (hot plus live cold).
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .sum()
    }

    /// Whether no segments are stored.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| read_shard!(self, i).is_empty())
    }

    /// All stored segment ids (arbitrary order; per-stripe consistent).
    pub fn ids(&self) -> Vec<SegmentId> {
        let mut all = Vec::new();
        for i in 0..self.shards.len() {
            all.extend(read_shard!(self, i).ids());
        }
        all
    }

    /// Ids of segments last updated strictly before `cutoff`.
    pub fn segments_older_than(&self, cutoff: Timestamp) -> Vec<SegmentId> {
        let mut all = Vec::new();
        for i in 0..self.shards.len() {
            all.extend(read_shard!(self, i).segments_older_than(cutoff));
        }
        all
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-stripe entry counts (hot plus live cold occupancy).
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).len())
            .collect()
    }

    /// Total lock acquisitions that had to wait for another holder.
    pub fn contention_count(&self) -> u64 {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-stripe contended-acquisition counts.
    pub fn contention_counts(&self) -> Vec<u64> {
        self.contended
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Cold records copied into the hot tier for mutation since open.
    pub(crate) fn promoted_count(&self) -> u64 {
        self.promoted.load(Ordering::Relaxed)
    }

    /// Live segments currently served from cold files.
    pub(crate) fn cold_live(&self) -> usize {
        (0..self.shards.len())
            .map(|i| read_shard!(self, i).cold_live_count())
            .sum()
    }

    /// Stripes currently backed by a cold file.
    pub(crate) fn cold_shard_count(&self) -> usize {
        (0..self.shards.len())
            .filter(|&i| read_shard!(self, i).has_cold())
            .count()
    }

    /// Cold stripes served by a real `mmap` (the rest fell back to an
    /// aligned heap copy).
    pub(crate) fn cold_mapped_count(&self) -> usize {
        (0..self.shards.len())
            .filter(|&i| {
                read_shard!(self, i)
                    .cold
                    .as_ref()
                    .is_some_and(|c| c.shard.is_mapped())
            })
            .count()
    }

    /// Attaches `shard` as stripe `index`'s cold overlay.
    pub(crate) fn attach_cold(&self, index: usize, shard: Arc<ColdShard>) {
        write_shard!(self, index).attach_cold(shard);
    }

    /// Direct stripe access for the demotion sweep.
    pub(crate) fn stripe(&self, index: usize) -> &RwLock<SegmentStripe> {
        &self.shards[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_is_power_of_two_and_clamped() {
        let n = default_shard_count();
        assert!(n.is_power_of_two());
        assert!((8..=64).contains(&n));
        assert_eq!(ShardedHashDb::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedSegmentDb::with_shards(0).shard_count(), 1);
    }

    #[test]
    fn sharded_hash_db_behaves_like_plain() {
        let sharded = ShardedHashDb::with_shards(8);
        let mut plain = HashDb::new();
        for i in 0..200u32 {
            let seg = SegmentId::new(u64::from(i % 7));
            let t = Timestamp::new(u64::from(i / 3));
            assert_eq!(
                sharded.record_first_sighting(i % 50, seg, t),
                plain.record_first_sighting(i % 50, seg, t),
                "insert {i} diverged"
            );
        }
        assert_eq!(sharded.len(), plain.len());
        for h in 0..50 {
            assert_eq!(sharded.oldest_with(h), plain.oldest_with(h));
        }
        sharded.remove_sightings_of(SegmentId::new(3));
        plain.remove_sightings_of(SegmentId::new(3));
        assert_eq!(sharded.len(), plain.len());
        let total: usize = sharded.shard_sizes().iter().sum();
        assert_eq!(total, sharded.len());
    }

    #[test]
    fn sharded_segment_db_round_trips() {
        let db = ShardedSegmentDb::with_shards(8);
        for i in 0..32u64 {
            db.upsert(
                SegmentId::new(i),
                vec![i as u32, i as u32 + 1],
                vec![i as u32],
                0.5,
                Timestamp::new(i),
            );
        }
        assert_eq!(db.len(), 32);
        let stored = db.get(SegmentId::new(5)).unwrap();
        assert_eq!(stored.hashes(), &[5, 6]);
        assert!(db.set_threshold(SegmentId::new(5), 0.9));
        assert_eq!(db.get(SegmentId::new(5)).unwrap().threshold(), 0.9);
        // The handle taken before the update still reads consistently.
        assert_eq!(stored.threshold(), 0.5);
        assert!(db.remove(SegmentId::new(5)));
        assert!(db.get(SegmentId::new(5)).is_none());
        assert_eq!(db.segments_older_than(Timestamp::new(2)).len(), 2);
        let mut ids = db.ids();
        ids.sort_unstable();
        assert_eq!(ids.len(), 31);
        // Hot handles report hot.
        assert!(!db.get_handle(SegmentId::new(6)).unwrap().is_cold());
    }

    #[test]
    fn per_shard_contention_counts_sum_to_total() {
        let db = ShardedHashDb::with_shards(4);
        let counts = db.contention_counts();
        assert_eq!(counts.len(), db.shard_count());
        assert_eq!(counts.iter().sum::<u64>(), db.contention_count());
        // Uncontended single-threaded use never bumps any shard counter.
        for i in 0..100u32 {
            db.record_first_sighting(i, SegmentId::new(1), Timestamp::new(0));
            db.oldest_with(i);
        }
        assert_eq!(db.contention_count(), 0);
        assert!(db.contention_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn batched_sightings_match_sequential_and_count_locks() {
        let sequential = ShardedHashDb::with_shards(8);
        let batched = ShardedHashDb::with_shards(8);
        let sightings: Vec<(u32, SegmentId, Timestamp)> = (0..200u32)
            .map(|i| {
                (
                    i % 37,
                    SegmentId::new(u64::from(i % 5)),
                    Timestamp::new(u64::from(i)),
                )
            })
            .collect();
        let expected: Vec<SightingOutcome> = sightings
            .iter()
            .map(|&(h, s, t)| sequential.record_sighting(h, s, t))
            .collect();
        let sighted = batched.record_sightings_batch(&sightings);
        let expected_owned: Vec<bool> = expected
            .iter()
            .zip(&sightings)
            .map(|(outcome, &(_, segment, _))| match *outcome {
                SightingOutcome::Installed | SightingOutcome::Displaced(_) => true,
                SightingOutcome::Kept(owner) => owner == segment,
            })
            .collect();
        let expected_displaced: Vec<(u32, SegmentId)> = expected
            .iter()
            .enumerate()
            .filter_map(|(index, outcome)| match *outcome {
                SightingOutcome::Displaced(previous) => Some((index as u32, previous)),
                _ => None,
            })
            .collect();
        assert_eq!(sighted.owned, expected_owned);
        assert_eq!(sighted.displaced, expected_displaced);
        assert_eq!(batched.len(), sequential.len());
        for h in 0..37 {
            assert_eq!(batched.oldest_with(h), sequential.oldest_with(h));
        }
        // 37 distinct hashes over 8 stripes touch every stripe, but each
        // lock is taken once — far fewer round-trips than 200 sightings.
        assert_eq!(sighted.locks, 8);
        assert_eq!(
            batched.displacement_epoch(),
            sequential.displacement_epoch()
        );
    }

    #[test]
    fn batched_segment_writes_match_sequential() {
        let sequential = ShardedSegmentDb::with_shards(8);
        let batched = ShardedSegmentDb::with_shards(8);
        let mut writes: Vec<SegmentWrite> = Vec::new();
        for i in 0..16u64 {
            writes.push(SegmentWrite::Upsert {
                segment: SegmentId::new(i % 6),
                hashes: vec![i as u32, i as u32 + 1, i as u32 + 2],
                authoritative: vec![i as u32],
                threshold: 0.25 + (i as f64) / 32.0,
                now: Timestamp::new(i),
            });
            writes.push(SegmentWrite::Revoke {
                segment: SegmentId::new(i % 6),
                hash: i as u32,
            });
        }
        for write in &writes {
            match write.clone() {
                SegmentWrite::Upsert {
                    segment,
                    hashes,
                    authoritative,
                    threshold,
                    now,
                } => sequential.upsert(segment, hashes, authoritative, threshold, now),
                SegmentWrite::Revoke { segment, hash } => {
                    sequential.revoke_authoritative(segment, hash);
                }
            }
        }
        let locks = batched.apply_writes_batch(writes);
        assert!(locks <= 6, "6 distinct segments need at most 6 stripes");
        assert_eq!(batched.len(), sequential.len());
        for i in 0..6u64 {
            let a = batched.get(SegmentId::new(i)).unwrap();
            let b = sequential.get(SegmentId::new(i)).unwrap();
            assert_eq!(a.hashes(), b.hashes());
            assert_eq!(a.authoritative(), b.authoritative());
            assert_eq!(a.threshold(), b.threshold());
            assert_eq!(a.updated(), b.updated());
        }
    }

    #[test]
    fn concurrent_writers_do_not_lose_entries() {
        let db = Arc::new(ShardedHashDb::with_shards(8));
        std::thread::scope(|s| {
            for worker in 0..4u32 {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let hash = worker * 500 + i;
                        db.record_first_sighting(
                            hash,
                            SegmentId::new(u64::from(worker)),
                            Timestamp::new(u64::from(hash)),
                        );
                    }
                });
            }
        });
        assert_eq!(db.len(), 2000);
    }
}
