//! The cold tier: sealed, immutable v3 shard files read in place.
//!
//! A v3 shard file lays the data of one lock stripe out so the in-memory
//! read paths — `oldestParagraphWith` binary search, segment lookup, and
//! the merge/galloping intersection kernel of [`crate::intersect`] — run
//! **directly against the file bytes** behind an [`crate::mmap::Mapping`].
//! Nothing is decoded at open; the file is validated once and then served
//! as-is, so a cold shard opens in time proportional to one checksum pass
//! instead of a full decode + index rebuild.
//!
//! # On-disk layout (little-endian, all sections 8-byte aligned)
//!
//! ```text
//! header (64 bytes):
//!   magic "BF3S" | u16 version=3 | u16 reserved=0
//!   u32 shard_index | u32 shard_count
//!   u32 segment_count | u32 sighting_count
//!   u64 dir_off (=64) | u64 pool_off | u64 pool_len (u32 count)
//!   u64 sight_off | u64 total_len
//! segment directory @dir_off, segment_count x 40 bytes, sorted by id:
//!   u64 id | f64 threshold (IEEE bits) | u64 updated
//!   u64 hash_off | hash_len<<32   (u32 indices into the pool)
//!   u64 auth_off | auth_len<<32
//! hash pool @pool_off: pool_len x u32 (per-segment hash and
//!   authoritative slices, each sorted ascending; 4 zero pad bytes when
//!   pool_len is odd so the sighting table stays 8-aligned)
//! sightings @sight_off, sighting_count x 24 bytes, sorted by hash:
//!   u64 hash (upper 32 bits zero) | u64 segment | u64 time
//! ```
//!
//! Unlike v2, the **authoritative subsets are persisted**: a cold open
//! needs no `rebuild_authoritative_index` pass, and promotion replays the
//! stored sets instead of re-probing `DBhash`.
//!
//! # Validation model
//!
//! [`ColdShard::open`] verifies the manifest CRC of the whole file, the
//! header geometry (offsets, alignment, exact total length), and scans the
//! segment directory and sighting table: ids and hashes strictly
//! increasing (binary search soundness), every record keyed into this
//! shard, every pool range in bounds. Pool *contents* are attested by the
//! CRC — the writer only emits sorted slices — so no per-hash scan is
//! needed. Any failure rejects the shard as a whole; the caller records it
//! in a [`crate::RestoreReport`] and the store fails closed to "that shard
//! is lost", never to a panic or a wrong verdict from garbage bytes.

use crate::codec::{CodecError, ShardMeta};
use crate::hash_db::Sighting;
use crate::mmap::{u32_slice, u64_slice, Mapping};
use crate::segment_db::StoredSegment;
use crate::{SegmentId, Timestamp};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// The zero-copy read path interprets file bytes (written little-endian)
// through native-endian slices.
#[cfg(target_endian = "big")]
compile_error!("the tiered cold store reads little-endian file bytes in place");

/// Magic of a v3 cold shard file.
pub(crate) const SHARD_MAGIC: &[u8; 4] = b"BF3S";
/// Version tag shared with the v3 manifest.
pub(crate) const VERSION_V3: u16 = 3;
const HEADER_LEN: usize = 64;
const DIR_ENTRY_WORDS: usize = 5; // 40 bytes
const SIGHT_ENTRY_WORDS: usize = 3; // 24 bytes

fn align8(value: u64) -> u64 {
    (value + 7) & !7
}

// --- Encoding -------------------------------------------------------------

/// Encodes one stripe's merged (hot + cold-live) records as a v3 shard
/// file. `segments` must be sorted by id and `sightings` by hash, both
/// strictly (debug-asserted); the store's stripe snapshots provide that.
///
/// # Errors
///
/// Returns [`CodecError::TooLarge`] when a count exceeds the format's u32
/// fields.
pub(crate) fn encode_v3_shard(
    shard: usize,
    shard_count: usize,
    segments: &[(SegmentId, Arc<StoredSegment>)],
    sightings: &[(u32, Sighting)],
) -> Result<Vec<u8>, CodecError> {
    debug_assert!(
        segments.windows(2).all(|w| w[0].0 < w[1].0),
        "segments must be sorted by id"
    );
    debug_assert!(
        sightings.windows(2).all(|w| w[0].0 < w[1].0),
        "sightings must be sorted by hash"
    );
    let seg_count = crate::codec::len_u32(segments.len())?;
    let sight_count = crate::codec::len_u32(sightings.len())?;
    let pool_len: usize = segments
        .iter()
        .map(|(_, s)| s.hashes().len() + s.authoritative().len())
        .sum();
    let pool_len = crate::codec::len_u32(pool_len)?;

    let dir_off = HEADER_LEN as u64;
    let pool_off = dir_off + u64::from(seg_count) * 40;
    let sight_off = align8(pool_off + u64::from(pool_len) * 4);
    let total_len = sight_off + u64::from(sight_count) * 24;
    let mut out = Vec::with_capacity(total_len as usize);

    out.extend_from_slice(SHARD_MAGIC);
    out.extend_from_slice(&VERSION_V3.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(shard as u32).to_le_bytes());
    out.extend_from_slice(&(shard_count as u32).to_le_bytes());
    out.extend_from_slice(&seg_count.to_le_bytes());
    out.extend_from_slice(&sight_count.to_le_bytes());
    out.extend_from_slice(&dir_off.to_le_bytes());
    out.extend_from_slice(&pool_off.to_le_bytes());
    out.extend_from_slice(&u64::from(pool_len).to_le_bytes());
    out.extend_from_slice(&sight_off.to_le_bytes());
    out.extend_from_slice(&total_len.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);

    // Directory, with a running cursor into the pool.
    let mut cursor: u32 = 0;
    for (id, segment) in segments {
        let hash_len = crate::codec::len_u32(segment.hashes().len())?;
        let auth_len = crate::codec::len_u32(segment.authoritative().len())?;
        out.extend_from_slice(&id.get().to_le_bytes());
        out.extend_from_slice(&segment.threshold().to_bits().to_le_bytes());
        out.extend_from_slice(&segment.updated().get().to_le_bytes());
        out.extend_from_slice(&(u64::from(cursor) | (u64::from(hash_len) << 32)).to_le_bytes());
        cursor += hash_len;
        out.extend_from_slice(&(u64::from(cursor) | (u64::from(auth_len) << 32)).to_le_bytes());
        cursor += auth_len;
    }

    // Pool: each segment's hashes then its authoritative subset.
    for (_, segment) in segments {
        for &hash in segment.hashes() {
            out.extend_from_slice(&hash.to_le_bytes());
        }
        for &hash in segment.authoritative() {
            out.extend_from_slice(&hash.to_le_bytes());
        }
    }
    while !(out.len() as u64).is_multiple_of(8) {
        out.push(0);
    }
    debug_assert_eq!(out.len() as u64, sight_off);

    for (hash, sighting) in sightings {
        out.extend_from_slice(&u64::from(*hash).to_le_bytes());
        out.extend_from_slice(&sighting.segment.get().to_le_bytes());
        out.extend_from_slice(&sighting.time.get().to_le_bytes());
    }
    debug_assert_eq!(out.len() as u64, total_len);
    Ok(out)
}

// --- The validated zero-copy view ----------------------------------------

/// A sealed cold shard: one stripe's immutable records, served straight
/// from the mapped file bytes.
#[derive(Debug)]
pub(crate) struct ColdShard {
    map: Mapping,
    seg_count: usize,
    sight_count: usize,
    dir_off: usize,
    pool_off: usize,
    pool_len: usize,
    sight_off: usize,
}

impl ColdShard {
    /// Maps and validates `path` as shard `shard` of `shard_count`,
    /// against the manifest entry `meta`. See the module docs for the
    /// validation model; every failure is a [`CodecError`] naming the
    /// shard so lossy opens degrade per shard.
    pub(crate) fn open(
        path: &Path,
        shard: usize,
        shard_count: usize,
        meta: &ShardMeta,
    ) -> Result<Self, CodecError> {
        let map = Mapping::open(path).map_err(|_| CodecError::Truncated)?;
        let bytes = map.bytes();
        if bytes.len() as u64 != meta.byte_len {
            return Err(CodecError::ShardMismatch { shard });
        }
        if crate::codec::crc32(bytes) != meta.crc {
            return Err(CodecError::ShardChecksum { shard });
        }
        if bytes.len() < HEADER_LEN {
            return Err(CodecError::Truncated);
        }
        if &bytes[0..4] != SHARD_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let u16_at = |off: usize| u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap());
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let version = u16_at(4);
        if version != VERSION_V3 {
            return Err(CodecError::UnsupportedVersion { found: version });
        }
        if u32_at(8) as usize != shard || u32_at(12) as usize != shard_count {
            return Err(CodecError::ShardMismatch { shard });
        }
        let seg_count = u32_at(16) as u64;
        let sight_count = u32_at(20) as u64;
        if seg_count != meta.segment_count || sight_count != meta.sighting_count {
            return Err(CodecError::ShardMismatch { shard });
        }
        let dir_off = u64_at(24);
        let pool_off = u64_at(32);
        let pool_len = u64_at(40);
        let sight_off = u64_at(48);
        let total_len = u64_at(56);
        // Exact geometry: every offset is derived, aligned, and the file
        // length matches to the byte, so no later slice can go out of
        // bounds and no reinterpret cast can be misaligned.
        let expect_pool = seg_count
            .checked_mul(40)
            .and_then(|d| d.checked_add(HEADER_LEN as u64));
        let expect_sight = pool_len
            .checked_mul(4)
            .and_then(|p| pool_off.checked_add(p))
            .map(align8);
        let expect_total = sight_count
            .checked_mul(24)
            .and_then(|s| sight_off.checked_add(s));
        if dir_off != HEADER_LEN as u64
            || expect_pool != Some(pool_off)
            || expect_sight != Some(sight_off)
            || expect_total != Some(total_len)
            || total_len != bytes.len() as u64
        {
            return Err(CodecError::Truncated);
        }
        let cold = Self {
            seg_count: seg_count as usize,
            sight_count: sight_count as usize,
            dir_off: dir_off as usize,
            pool_off: pool_off as usize,
            pool_len: pool_len as usize,
            sight_off: sight_off as usize,
            map,
        };
        // The casts themselves re-check alignment and fail closed.
        let dir = u64_slice(&cold.map.bytes()[cold.dir_off..cold.pool_off])
            .ok_or(CodecError::Truncated)?;
        if u32_slice(&cold.map.bytes()[cold.pool_off..cold.pool_off + cold.pool_len * 4]).is_none()
        {
            return Err(CodecError::Truncated);
        }
        let sights = u64_slice(&cold.map.bytes()[cold.sight_off..total_len as usize])
            .ok_or(CodecError::Truncated)?;

        let mask = (shard_count - 1) as u64;
        // Directory scan: sorted ids, shard membership, in-bounds pool
        // ranges (binary-search soundness + panic-free slicing).
        let mut previous_id: Option<u64> = None;
        for entry in dir.chunks_exact(DIR_ENTRY_WORDS) {
            let id = entry[0];
            if id & mask != shard as u64 || previous_id.is_some_and(|p| p >= id) {
                return Err(CodecError::ShardMismatch { shard });
            }
            previous_id = Some(id);
            for &word in &entry[3..5] {
                let (off, len) = (word & 0xFFFF_FFFF, word >> 32);
                if off.checked_add(len).is_none_or(|end| end > pool_len) {
                    return Err(CodecError::ShardMismatch { shard });
                }
            }
        }
        // Sighting scan: sorted hashes with clean upper words, shard
        // membership.
        let mut previous_hash: Option<u64> = None;
        for entry in sights.chunks_exact(SIGHT_ENTRY_WORDS) {
            let hash = entry[0];
            if hash > u64::from(u32::MAX)
                || hash & mask != shard as u64
                || previous_hash.is_some_and(|p| p >= hash)
            {
                return Err(CodecError::ShardMismatch { shard });
            }
            previous_hash = Some(hash);
        }
        Ok(cold)
    }

    fn dir_words(&self) -> &[u64] {
        u64_slice(&self.map.bytes()[self.dir_off..self.pool_off])
            .expect("cold shard geometry validated at open")
    }

    fn pool(&self) -> &[u32] {
        u32_slice(&self.map.bytes()[self.pool_off..self.pool_off + self.pool_len * 4])
            .expect("cold shard geometry validated at open")
    }

    fn sight_words(&self) -> &[u64] {
        u64_slice(&self.map.bytes()[self.sight_off..self.sight_off + self.sight_count * 24])
            .expect("cold shard geometry validated at open")
    }

    /// Number of segment records in the file (live or tombstoned).
    pub(crate) fn segment_count(&self) -> usize {
        self.seg_count
    }

    /// Number of first-sighting records in the file.
    pub(crate) fn sighting_count(&self) -> usize {
        self.sight_count
    }

    /// Whether the view is a real `mmap` (false: aligned heap copy).
    pub(crate) fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Binary-searches the segment directory for `id`.
    pub(crate) fn find(&self, id: SegmentId) -> Option<usize> {
        let dir = self.dir_words();
        let raw = id.get();
        let mut lo = 0usize;
        let mut hi = self.seg_count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match dir[mid * DIR_ENTRY_WORDS].cmp(&raw) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// The id of directory entry `index`.
    pub(crate) fn dir_id(&self, index: usize) -> SegmentId {
        SegmentId::new(self.dir_words()[index * DIR_ENTRY_WORDS])
    }

    /// The threshold of directory entry `index`.
    pub(crate) fn dir_threshold(&self, index: usize) -> f64 {
        f64::from_bits(self.dir_words()[index * DIR_ENTRY_WORDS + 1])
    }

    /// The last-update time of directory entry `index`.
    pub(crate) fn dir_updated(&self, index: usize) -> Timestamp {
        Timestamp::new(self.dir_words()[index * DIR_ENTRY_WORDS + 2])
    }

    fn pool_range(&self, word: u64) -> &[u32] {
        let off = (word & 0xFFFF_FFFF) as usize;
        let len = (word >> 32) as usize;
        &self.pool()[off..off + len]
    }

    /// The sorted fingerprint hashes of directory entry `index`, straight
    /// from the file bytes.
    pub(crate) fn hashes_at(&self, index: usize) -> &[u32] {
        self.pool_range(self.dir_words()[index * DIR_ENTRY_WORDS + 3])
    }

    /// The sorted authoritative subset of directory entry `index`.
    pub(crate) fn authoritative_at(&self, index: usize) -> &[u32] {
        self.pool_range(self.dir_words()[index * DIR_ENTRY_WORDS + 4])
    }

    /// Copies directory entry `index` out into an owned [`StoredSegment`]
    /// (the promotion path).
    pub(crate) fn materialize(&self, index: usize) -> StoredSegment {
        StoredSegment::from_parts(
            self.hashes_at(index).to_vec(),
            self.authoritative_at(index).to_vec(),
            self.dir_threshold(index),
            self.dir_updated(index),
        )
    }

    /// `oldestParagraphWith(h)` over the file's sighting table.
    pub(crate) fn oldest_with(&self, hash: u32) -> Option<Sighting> {
        let words = self.sight_words();
        let raw = u64::from(hash);
        let mut lo = 0usize;
        let mut hi = self.sight_count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match words[mid * SIGHT_ENTRY_WORDS].cmp(&raw) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return Some(Sighting {
                        segment: SegmentId::new(words[mid * SIGHT_ENTRY_WORDS + 1]),
                        time: Timestamp::new(words[mid * SIGHT_ENTRY_WORDS + 2]),
                    })
                }
            }
        }
        None
    }

    /// The `index`-th sighting record (ascending hash order).
    pub(crate) fn sighting_at(&self, index: usize) -> (u32, Sighting) {
        let words = self.sight_words();
        (
            words[index * SIGHT_ENTRY_WORDS] as u32,
            Sighting {
                segment: SegmentId::new(words[index * SIGHT_ENTRY_WORDS + 1]),
                time: Timestamp::new(words[index * SIGHT_ENTRY_WORDS + 2]),
            },
        )
    }
}

// --- Handles and tier bookkeeping -----------------------------------------

/// A zero-copy handle to a stored segment: either an owned in-memory
/// record (hot tier) or a view into a mapped cold shard. Candidate
/// evaluation reads hashes, authoritative set and threshold through the
/// same accessors either way, so Algorithm 1 never copies cold data.
#[derive(Debug, Clone)]
pub struct SegmentHandle(Repr);

#[derive(Debug, Clone)]
enum Repr {
    Hot(Arc<StoredSegment>),
    Cold(Arc<ColdShard>, usize),
}

impl SegmentHandle {
    pub(crate) fn hot(segment: Arc<StoredSegment>) -> Self {
        Self(Repr::Hot(segment))
    }

    pub(crate) fn cold(shard: Arc<ColdShard>, index: usize) -> Self {
        Self(Repr::Cold(shard, index))
    }

    /// The segment's sorted distinct fingerprint hashes.
    pub fn hashes(&self) -> &[u32] {
        match &self.0 {
            Repr::Hot(s) => s.hashes(),
            Repr::Cold(shard, index) => shard.hashes_at(*index),
        }
    }

    /// The segment's sorted authoritative subset (`F_A`, §4.3).
    pub fn authoritative(&self) -> &[u32] {
        match &self.0 {
            Repr::Hot(s) => s.authoritative(),
            Repr::Cold(shard, index) => shard.authoritative_at(*index),
        }
    }

    /// The segment's disclosure threshold.
    pub fn threshold(&self) -> f64 {
        match &self.0 {
            Repr::Hot(s) => s.threshold(),
            Repr::Cold(shard, index) => shard.dir_threshold(*index),
        }
    }

    /// Logical time of the segment's last fingerprint update.
    pub fn updated(&self) -> Timestamp {
        match &self.0 {
            Repr::Hot(s) => s.updated(),
            Repr::Cold(shard, index) => shard.dir_updated(*index),
        }
    }

    /// Whether the handle reads from a mapped cold shard.
    pub fn is_cold(&self) -> bool {
        matches!(self.0, Repr::Cold(..))
    }
}

/// Outcome of one [`crate::FingerprintStore::demote_idle_shards`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierSweep {
    /// Stripes rewritten as cold shard files this sweep.
    pub demoted_shards: usize,
    /// Segment records those stripes now serve from cold files.
    pub demoted_segments: usize,
    /// First-sighting records those stripes now serve from cold files.
    pub demoted_sightings: usize,
    /// Still-hot stripes whose cold shard file was rewritten to drop
    /// records superseded by promoted hot copies (promotion shadows).
    pub compacted_shards: usize,
    /// On-disk bytes reclaimed this sweep by dropping superseded cold
    /// records (old shard file size minus new, summed over rewrites).
    pub reclaimed_bytes: u64,
}

/// The store's attachment to a cold directory: where demoted shards are
/// written and the manifest entries describing the current on-disk state.
#[derive(Debug)]
pub(crate) struct TierState {
    pub(crate) dir: PathBuf,
    pub(crate) metas: Vec<ShardMeta>,
}
