//! Concurrency tests of the sharded [`FingerprintStore`]: the parallel
//! Algorithm 1 fan-out must be byte-identical to the sequential path, and
//! the store must survive concurrent writers and checkers without losing
//! entries or panicking.

use browserflow_fingerprint::{Fingerprint, SelectedHash};
use browserflow_store::{FingerprintStore, SegmentId};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn fingerprint_of(hashes: &[u32]) -> Fingerprint {
    hashes
        .iter()
        .enumerate()
        .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
        .collect()
}

/// Many small segments drawn from a narrow hash space, so a broad target
/// yields well over the parallel cutoff (32) of candidate sources.
fn populated_store(seed_sets: &[Vec<u32>]) -> FingerprintStore {
    let store = FingerprintStore::new();
    for (i, hashes) in seed_sets.iter().enumerate() {
        store.observe(SegmentId::new(i as u64), &fingerprint_of(hashes), 0.1);
    }
    store
}

/// Quiescent consistency of the authoritative-set index: once the racing
/// threads have joined, every segment's incrementally maintained
/// authoritative set must equal the pre-index derivation (one `DBhash`
/// probe per stored hash) — races may only ever delay revocation, never
/// leave it wrong at rest.
fn assert_index_quiescent(store: &FingerprintStore) {
    for id in store.segment_ids() {
        let stored = store.segment(id).expect("listed segment exists");
        let probed: HashSet<u32> = stored
            .hashes()
            .iter()
            .copied()
            .filter(|&h| store.oldest_segment_with(h) == Some(id))
            .collect();
        assert_eq!(
            store.authoritative_fingerprint(id),
            probed,
            "authoritative index diverged for segment {id:?} after the race"
        );
    }
}

proptest! {
    /// Parallel Algorithm 1 returns exactly the sequential reports, in the
    /// same order, for every worker count — the determinism contract of
    /// the fan-out.
    #[test]
    fn parallel_reports_match_sequential(
        seed_sets in proptest::collection::vec(
            proptest::collection::vec(0u32..300, 1..8), 40..120),
        target in proptest::collection::vec(0u32..300, 1..200),
    ) {
        let store = populated_store(&seed_sets);
        let target_id = SegmentId::new(10_000);
        let target_hashes: HashSet<u32> = target.iter().copied().collect();
        let sequential =
            store.disclosing_sources_with_workers(target_id, &target_hashes, 1);
        for workers in [2usize, 3, 4, 8] {
            let parallel =
                store.disclosing_sources_with_workers(target_id, &target_hashes, workers);
            prop_assert_eq!(
                &sequential, &parallel,
                "worker count {} diverged from sequential", workers
            );
        }
    }
}

#[test]
fn parallel_path_is_actually_taken_and_counted() {
    // 64 single-hash segments -> 64 candidates for a target containing
    // every hash, comfortably past the 32-candidate cutoff.
    let seed_sets: Vec<Vec<u32>> = (0..64u32).map(|h| vec![h]).collect();
    let store = populated_store(&seed_sets);
    let all: HashSet<u32> = (0..64u32).collect();
    let reports = store.disclosing_sources_with_workers(SegmentId::new(999), &all, 4);
    assert_eq!(reports.len(), 64);
    let stats = store.stats();
    assert_eq!(stats.parallel_checks, 1);
    assert_eq!(stats.sequential_checks, 0);
    // Below the cutoff (or with one worker) the run is counted sequential.
    store.disclosing_sources_with_workers(SegmentId::new(999), &all, 1);
    assert_eq!(store.stats().sequential_checks, 1);
}

#[test]
fn concurrent_writers_and_checkers_converge() {
    const WRITERS: usize = 4;
    const CHECKERS: usize = 3;
    const PER_WRITER: u64 = 50;

    let store = Arc::new(FingerprintStore::new());
    std::thread::scope(|s| {
        for w in 0..WRITERS as u64 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    let id = w * PER_WRITER + i;
                    // Writer-disjoint hash ranges keep final ownership easy
                    // to assert; interleaving still contends on shards.
                    let hashes: Vec<u32> = (0..4u32).map(|k| (id as u32) * 4 + k).collect();
                    store.observe(SegmentId::new(id), &fingerprint_of(&hashes), 0.5);
                }
            });
        }
        for c in 0..CHECKERS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let probe: HashSet<u32> = (0..200u32).collect();
                for round in 0..20 {
                    // Checks racing the writers must never panic and must
                    // only ever report stored sources.
                    let reports = store.disclosing_sources_with_workers(
                        SegmentId::new(90_000 + c as u64),
                        &probe,
                        if round % 2 == 0 { 1 } else { 4 },
                    );
                    for report in &reports {
                        assert!(report.disclosure > 0.0 && report.disclosure <= 1.0);
                        assert!(report.source.get() < WRITERS as u64 * PER_WRITER);
                    }
                }
            });
        }
    });

    // Quiescent state: nothing was lost and ownership is exact.
    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(store.segment_count(), total as usize);
    assert_eq!(store.hash_count(), total as usize * 4);
    for id in 0..total {
        assert_eq!(
            store.oldest_segment_with(id as u32 * 4),
            Some(SegmentId::new(id))
        );
    }
    // And a full check after the dust settles is deterministic across
    // worker counts.
    let probe: HashSet<u32> = (0..total as u32 * 4).collect();
    let sequential = store.disclosing_sources_with_workers(SegmentId::new(70_000), &probe, 1);
    let parallel = store.disclosing_sources_with_workers(SegmentId::new(70_000), &probe, 8);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.len(), total as usize);
    assert_index_quiescent(&store);
}

#[test]
fn concurrent_observers_of_the_same_hash_agree_on_one_owner() {
    // The same hash observed by many threads at once: exactly one segment
    // must end up owning it, and that ownership must be internally
    // consistent with the sighting's timestamp ordering.
    const THREADS: u64 = 8;
    let store = Arc::new(FingerprintStore::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                store.observe(SegmentId::new(t), &fingerprint_of(&[42]), 0.5);
            });
        }
    });
    let owner = store.oldest_segment_with(42).expect("hash was observed");
    assert!(owner.get() < THREADS);
    // All eight segments stored their fingerprint.
    assert_eq!(store.segment_count(), THREADS as usize);
    // Exactly one segment holds 42 in its authoritative set, and it is
    // the owner DBhash names.
    assert_index_quiescent(&store);
}

#[test]
fn racing_overlapping_observers_keep_index_consistent() {
    // Every hash is contested by several threads at once, so ownership is
    // displaced repeatedly while other observers are mid-flight — the
    // exact race the displacement-epoch revalidation exists for.
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 25;
    let store = Arc::new(FingerprintStore::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let base = ((t + r) % THREADS) as u32 * 8;
                    let hashes: Vec<u32> = (base..base + 16).collect();
                    store.observe(
                        SegmentId::new(t * ROUNDS + r),
                        &fingerprint_of(&hashes),
                        0.4,
                    );
                }
            });
        }
    });
    assert_eq!(store.segment_count(), (THREADS * ROUNDS) as usize);
    assert_index_quiescent(&store);
}
