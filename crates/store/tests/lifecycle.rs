//! Store lifecycle tests: eviction and re-observation cycles, and codec
//! robustness against arbitrary input.

use browserflow_fingerprint::Fingerprinter;
use browserflow_store::{codec, FingerprintStore, SegmentId};
use proptest::prelude::*;

const TEXTS: [&str; 3] = [
    "the first confidential paragraph about quarterly earnings and the margin outlook",
    "the second paragraph describing the reorganisation plan and its timeline in detail",
    "the third paragraph covering the incident postmortem and the remediation steps",
];

fn filled() -> FingerprintStore {
    let fp = Fingerprinter::default();
    let store = FingerprintStore::new();
    for (i, text) in TEXTS.iter().enumerate() {
        store.observe(SegmentId::new(i as u64), &fp.fingerprint(text), 0.3);
    }
    store
}

#[test]
fn eviction_and_reobservation_cycles_preserve_correctness() {
    let fp = Fingerprinter::default();
    let store = filled();
    for cycle in 0..5 {
        // Evict everything...
        let cutoff = store.now();
        let evicted = store.evict_older_than(cutoff);
        assert_eq!(evicted, 3, "cycle {cycle}");
        assert_eq!(store.segment_count(), 0);
        assert!(store
            .disclosing_sources(SegmentId::new(99), &fp.fingerprint(TEXTS[0]))
            .is_empty());
        // ...re-observe, and detection works again with fresh ownership.
        for (i, text) in TEXTS.iter().enumerate() {
            store.observe(SegmentId::new(i as u64), &fp.fingerprint(text), 0.3);
        }
        let reports = store.disclosing_sources(SegmentId::new(99), &fp.fingerprint(TEXTS[1]));
        assert_eq!(reports.len(), 1, "cycle {cycle}");
        assert_eq!(reports[0].source, SegmentId::new(1));
    }
}

#[test]
fn partial_eviction_transfers_nothing_but_forgets_the_victim() {
    let fp = Fingerprinter::default();
    let store = FingerprintStore::new();
    store.observe(SegmentId::new(0), &fp.fingerprint(TEXTS[0]), 0.3);
    let cutoff = store.now();
    store.observe(SegmentId::new(1), &fp.fingerprint(TEXTS[1]), 0.3);
    assert_eq!(store.evict_older_than(cutoff), 1);
    // The survivor still reports; the victim never does.
    let reports = store.disclosing_sources(SegmentId::new(99), &fp.fingerprint(TEXTS[1]));
    assert_eq!(reports.len(), 1);
    assert!(store
        .disclosing_sources(SegmentId::new(99), &fp.fingerprint(TEXTS[0]))
        .is_empty());
}

#[test]
fn encode_is_stable_across_identical_stores() {
    // Deterministic serialisation: same construction -> same bytes.
    assert_eq!(
        codec::encode(&filled()).unwrap(),
        codec::encode(&filled()).unwrap()
    );
}

proptest! {
    /// Decoding arbitrary bytes never panics — it either produces a store
    /// or a structured error.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = codec::decode(&bytes);
    }

    /// Decoding a corrupted valid payload never panics either.
    #[test]
    fn decode_survives_bit_flips(index in 0usize..1000, flip in any::<u8>()) {
        let mut bytes = codec::encode(&filled()).unwrap();
        if !bytes.is_empty() {
            let at = index % bytes.len();
            bytes[at] ^= flip;
            let _ = codec::decode(&bytes);
        }
    }

    /// Truncating a valid payload at any point yields an error, never a
    /// silently-partial store (except truncating nothing).
    #[test]
    fn decode_rejects_truncations(cut in 0usize..1000) {
        let bytes = codec::encode(&filled()).unwrap();
        let cut = cut % bytes.len();
        if cut < bytes.len() {
            let result = codec::decode(&bytes[..cut]);
            prop_assert!(result.is_err(), "truncation at {cut} decoded successfully");
        }
    }
}
