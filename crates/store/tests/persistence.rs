//! Persistence tests: proptest round-trips over arbitrary stores and
//! shard counts, the corruption matrix (torn shards, flipped manifest
//! CRCs, swapped shard records) for both the v2 and the v3 (cold,
//! mmap'd) formats, v1 back-compat, cross-version opens through the
//! unified [`StoreOpenOptions`] entry point, and the sealed-export
//! nonce-reuse regression.
//!
//! `scripts/ci.sh` runs this file explicitly as the corruption gate.

use browserflow_fingerprint::Fingerprinter;
use browserflow_store::{
    codec, CodecError, FingerprintStore, PersistError, PersistOptions, SegmentId, StoreFormat,
    StoreKey, StoreOpenOptions, TierMode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

const WORDS: [&str; 16] = [
    "acquisition",
    "initech",
    "margin",
    "outlook",
    "reorganisation",
    "timeline",
    "incident",
    "postmortem",
    "remediation",
    "quarterly",
    "earnings",
    "zurich",
    "press",
    "event",
    "subsidiaries",
    "patents",
];

/// Builds a store from (segment id, word-index seed) pairs — enough
/// variety for the round-trip property without fingerprinting megabytes.
fn build_store(specs: &[(u64, usize)]) -> FingerprintStore {
    let fp = Fingerprinter::default();
    let store = FingerprintStore::new();
    for &(id, seed) in specs {
        let text: Vec<&str> = (0..12)
            .map(|i| WORDS[(seed + i * 3) % WORDS.len()])
            .collect();
        store.observe(
            SegmentId::new(id),
            &fp.fingerprint(&text.join(" ")),
            (seed % 10) as f64 / 10.0,
        );
    }
    store
}

fn assert_equivalent(a: &FingerprintStore, b: &FingerprintStore) {
    assert_eq!(a.segment_count(), b.segment_count());
    assert_eq!(a.hash_count(), b.hash_count());
    assert_eq!(a.now(), b.now());
    let mut ids: Vec<SegmentId> = a.segment_ids().collect();
    ids.sort_unstable();
    for id in ids {
        let sa = a.segment(id).unwrap();
        let sb = b.segment(id).unwrap();
        assert_eq!(sa.hashes(), sb.hashes());
        assert_eq!(sa.threshold(), sb.threshold());
        assert_eq!(sa.updated(), sb.updated());
        assert_eq!(
            a.authoritative_fingerprint(id),
            b.authoritative_fingerprint(id)
        );
    }
}

/// Byte offsets of the v2 layout pieces, derived from the manifest header:
/// magic(4) + version(2) + clock(8) + shard_count(4) = 18, then 28 bytes
/// per shard entry, then the 4-byte manifest CRC, then the records.
struct Layout {
    shard_count: usize,
    shard_lens: Vec<usize>,
    records_start: usize,
}

fn layout_of(bytes: &[u8]) -> Layout {
    let shard_count = u32::from_le_bytes(bytes[14..18].try_into().unwrap()) as usize;
    let mut shard_lens = Vec::with_capacity(shard_count);
    for i in 0..shard_count {
        let entry = 18 + i * 28;
        shard_lens
            .push(u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize);
    }
    Layout {
        shard_count,
        shard_lens,
        records_start: 18 + shard_count * 28 + 4,
    }
}

fn shard_range(layout: &Layout, shard: usize) -> std::ops::Range<usize> {
    let start = layout.records_start + layout.shard_lens[..shard].iter().sum::<usize>();
    start..start + layout.shard_lens[shard]
}

#[test]
fn corruption_matrix_isolates_damage_to_one_shard() {
    let store = build_store(&[
        (1, 0),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 9),
        (6, 11),
        (7, 13),
        (8, 2),
    ]);
    let blob = codec::encode_v2_with_shards(&store, 8).unwrap();
    let layout = layout_of(&blob);
    assert_eq!(layout.shard_count, 8);

    // Flip a byte inside each shard record in turn: exactly that shard is
    // reported lost, every other shard still loads, and the strict
    // decoder rejects the whole blob.
    for shard in 0..layout.shard_count {
        let range = shard_range(&layout, shard);
        if range.is_empty() {
            continue;
        }
        let mut damaged = blob.clone();
        damaged[range.start + range.len() / 2] ^= 0xA5;
        assert!(codec::decode(&damaged).is_err(), "shard {shard}");
        let (_, report) = codec::decode_lossy(&damaged).unwrap();
        assert_eq!(report.lost_shards, vec![shard]);
        assert_eq!(report.loaded_shards, layout.shard_count - 1);
    }

    // Truncate inside each shard's record region: the cut shard and every
    // shard after it are lost; the shards before it load.
    for shard in 0..layout.shard_count {
        let range = shard_range(&layout, shard);
        if range.is_empty() {
            continue;
        }
        let truncated = &blob[..range.start + range.len() / 2];
        assert!(codec::decode(truncated).is_err());
        let (_, report) = codec::decode_lossy(truncated).unwrap();
        assert!(report.lost_shards.contains(&shard), "shard {shard}");
        assert_eq!(
            report.loaded_shards + report.lost_shards.len(),
            layout.shard_count
        );
    }

    // Flip a manifest CRC byte: nothing can be trusted, lossy or not.
    let mut bad_manifest = blob.clone();
    bad_manifest[18 + layout.shard_count * 28] ^= 0xFF;
    assert_eq!(
        codec::decode(&bad_manifest).unwrap_err(),
        CodecError::ManifestChecksum
    );
    assert_eq!(
        codec::decode_lossy(&bad_manifest).unwrap_err(),
        CodecError::ManifestChecksum
    );

    // Swap two equal-length shard records: both land in foreign slots and
    // both are reported lost (by CRC or membership check), nothing else.
    let (a, b) = {
        let mut found = None;
        'outer: for i in 0..layout.shard_count {
            for j in i + 1..layout.shard_count {
                if layout.shard_lens[i] == layout.shard_lens[j] && layout.shard_lens[i] > 0 {
                    found = Some((i, j));
                    break 'outer;
                }
            }
        }
        // With 8 segments over 8 shards equal lengths can be rare; fall
        // back to shards 0 and 1 and skip the swap if they differ in size.
        found.unwrap_or((0, 1))
    };
    let ra = shard_range(&layout, a);
    let rb = shard_range(&layout, b);
    if ra.len() == rb.len() {
        let mut swapped = blob.clone();
        let tmp = swapped[ra.clone()].to_vec();
        let rb_bytes = swapped[rb.clone()].to_vec();
        swapped[ra.clone()].copy_from_slice(&rb_bytes);
        swapped[rb].copy_from_slice(&tmp);
        assert!(codec::decode(&swapped).is_err());
        let (_, report) = codec::decode_lossy(&swapped).unwrap();
        assert_eq!(report.lost_shards, vec![a, b]);
        assert_eq!(report.loaded_shards, layout.shard_count - 2);
    }
}

#[test]
fn torn_directory_loads_healthy_shards_and_reports_the_torn_one() {
    // The acceptance-criteria scenario: persist to a directory, tear one
    // shard file mid-write (truncate it), and the load still brings up
    // every other shard while reporting exactly one lost shard.
    let dir = std::env::temp_dir().join(format!("bf-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = build_store(&[(1, 0), (2, 3), (3, 5), (4, 7), (5, 9), (6, 11)]);
    PersistOptions::new().persist(&store, &dir).unwrap();

    // Find a shard file with content and tear it.
    let mut torn_index = None;
    for index in 0..store.shard_count() {
        let path = dir.join(format!("shard-{index:04}.bfs"));
        let len = std::fs::metadata(&path).unwrap().len();
        if len > 16 {
            std::fs::write(&path, &std::fs::read(&path).unwrap()[..len as usize / 2]).unwrap();
            torn_index = Some(index);
            break;
        }
    }
    let torn_index = torn_index.expect("at least one shard holds data");

    let (loaded, report) = StoreOpenOptions::new().open(&dir).unwrap();
    assert_eq!(report.lost_shards, vec![torn_index]);
    assert_eq!(report.loaded_shards, store.shard_count() - 1);
    assert!(report.lost_segments > 0);
    assert!(loaded.segment_count() < store.segment_count());
    assert!(loaded.segment_count() > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_blob_still_decodes_byte_identically() {
    let store = build_store(&[(10, 1), (11, 4), (12, 8)]);
    let v1 = codec::encode_v1(&store).unwrap();
    let decoded = codec::decode(&v1).unwrap();
    assert_equivalent(&store, &decoded);
}

#[test]
fn consecutive_sealed_exports_use_fresh_nonces() {
    // Nonce-reuse regression: under the old API both exports sealed with
    // the same caller-supplied nonce, handing an attacker the XOR of two
    // plaintexts. seal_auto must make consecutive exports differ.
    let mut rng = StdRng::seed_from_u64(77);
    let key = StoreKey::generate(&mut rng);
    let store = build_store(&[(1, 0), (2, 3)]);
    let first = store.export_sealed(&key).unwrap();
    let second = store.export_sealed(&key).unwrap();
    assert_ne!(first, second, "two exports of the same store must differ");
    // Both still unseal to equivalent stores.
    assert_equivalent(
        &FingerprintStore::import_sealed(&key, &first).unwrap(),
        &FingerprintStore::import_sealed(&key, &second).unwrap(),
    );
}

#[test]
fn sealed_shard_tamper_degrades_gracefully() {
    let mut rng = StdRng::seed_from_u64(78);
    let key = StoreKey::generate(&mut rng);
    let store = build_store(&[(1, 0), (2, 3), (3, 5), (4, 7)]);
    let sealed = store.export_sealed(&key).unwrap();
    // Round-trip through the wire format, then tamper with one shard's
    // ciphertext bytes in the container.
    let mut wire = sealed.to_bytes();
    let target = wire.len() - 4; // inside the last shard's ciphertext
    wire[target] ^= 0x5A;
    let tampered = browserflow_store::SealedStore::from_bytes(&wire).unwrap();
    assert!(FingerprintStore::import_sealed(&key, &tampered).is_err());
    let (_, report) = FingerprintStore::import_sealed_lossy(&key, &tampered).unwrap();
    assert_eq!(report.lost_shards.len(), 1);
    assert_eq!(report.loaded_shards, sealed.shard_count() - 1);
}

#[test]
fn truncation_matrix_no_decode_path_panics() {
    // Fuzz-style truncation sweep over every untrusted decode surface the
    // daemon relies on when restoring tenant state: every strict prefix of
    // a valid encoding must come back as a typed error (or a lossy report),
    // never a slice panic.
    let store = build_store(&[(1, 0), (2, 5), (9, 11), (42, 13)]);
    let key = StoreKey::from_bytes([7u8; 32]);

    // Plain v2 blob.
    let blob = codec::encode(&store).unwrap();
    for len in 0..blob.len() {
        assert!(
            codec::decode(&blob[..len]).is_err(),
            "strict decode accepted a {len}-byte prefix of {}",
            blob.len()
        );
        // Lossy decode may salvage shards once the manifest is intact,
        // but must also never panic and never report a torn shard loaded.
        if let Ok((_, report)) = codec::decode_lossy(&blob[..len]) {
            assert!(
                !report.is_complete(),
                "lossy decode called a {len}-byte prefix complete"
            );
        }
    }

    // Sealed container wire format.
    let sealed = store.export_sealed(&key).unwrap().to_bytes();
    for len in 0..sealed.len() {
        assert!(
            browserflow_store::SealedStore::from_bytes(&sealed[..len]).is_err(),
            "SealedStore::from_bytes accepted a {len}-byte prefix of {}",
            sealed.len()
        );
    }

    // Single sealed payload wire format.
    let one = key.seal_auto(b"short payload").to_bytes();
    for len in 0..one.len() {
        assert!(
            browserflow_store::SealedBytes::from_bytes(&one[..len]).is_err(),
            "SealedBytes::from_bytes accepted a {len}-byte prefix"
        );
    }
}

#[test]
fn hostile_length_fields_fail_closed() {
    // A container whose entry length field points far past the buffer
    // (and near usize::MAX once added to the cursor) must be rejected,
    // not panic or allocate unboundedly.
    let store = build_store(&[(1, 0)]);
    let key = StoreKey::from_bytes([9u8; 32]);
    let mut wire = store.export_sealed(&key).unwrap().to_bytes();
    // First entry length field sits right after magic+version+count.
    wire[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(browserflow_store::SealedStore::from_bytes(&wire).is_err());
}

// ---------------------------------------------------------------------------
// v3 (cold/mmap) corruption matrix
// ---------------------------------------------------------------------------

/// Reference CRC-32 (reflected, 0xEDB88320) — used to re-sign manifests
/// after deliberate tampering so geometry checks are exercised *past* the
/// checksum gate.
fn crc32_ref(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn v3_temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bf-v3mx-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:04}.bfs"))
}

/// Patches shard `index`'s manifest entry (crc at +0, byte_len at +4) and
/// re-signs the manifest CRC, simulating an adversary — or a buggy writer —
/// that produces internally *consistent* metadata for damaged bytes.
fn resign_manifest(dir: &Path, index: usize, crc: u32, byte_len: u64) {
    let path = dir.join("manifest.bfm");
    let mut bytes = std::fs::read(&path).unwrap();
    let count = u32::from_le_bytes(bytes[14..18].try_into().unwrap()) as usize;
    assert!(index < count);
    let entry = 18 + index * 28;
    bytes[entry..entry + 4].copy_from_slice(&crc.to_le_bytes());
    bytes[entry + 4..entry + 12].copy_from_slice(&byte_len.to_le_bytes());
    let crc_pos = 18 + count * 28;
    let manifest_crc = crc32_ref(&bytes[..crc_pos]);
    bytes[crc_pos..crc_pos + 4].copy_from_slice(&manifest_crc.to_le_bytes());
    std::fs::write(&path, bytes).unwrap();
}

fn v3_fixture(tag: &str) -> (FingerprintStore, PathBuf, Vec<usize>) {
    let specs: Vec<(u64, usize)> = (1..=48).map(|i| (i, i as usize)).collect();
    let store = build_store(&specs);
    let dir = v3_temp_dir(tag);
    PersistOptions::new()
        .format(StoreFormat::V3)
        .persist(&store, &dir)
        .unwrap();
    let populated: Vec<usize> = (0..store.shard_count())
        .filter(|&index| std::fs::metadata(shard_path(&dir, index)).unwrap().len() > 64)
        .collect();
    assert!(!populated.is_empty());
    (store, dir, populated)
}

/// After a lossy cold open, every surviving segment must answer exactly
/// like the reference and every lost segment must be absent — damaged
/// shards fail closed, they never produce wrong verdicts.
fn assert_fails_closed(reference: &FingerprintStore, opened: &FingerprintStore) {
    let mut ids: Vec<SegmentId> = reference.segment_ids().collect();
    ids.sort_unstable();
    for id in ids {
        let expected = reference.segment(id).unwrap();
        // An absent segment was lost with its shard: closed, not wrong.
        if let Some(handle) = opened.segment_handle(id) {
            assert_eq!(handle.hashes(), expected.hashes());
            assert_eq!(handle.authoritative(), expected.authoritative());
            assert_eq!(handle.threshold(), expected.threshold());
        }
    }
}

#[test]
fn v3_bit_flips_fail_closed_per_shard() {
    let (store, dir, populated) = v3_fixture("flip");
    for &index in &populated {
        let path = shard_path(&dir, index);
        let original = std::fs::read(&path).unwrap();
        // Flip a byte in each region of the file: header, directory/pool,
        // and the tail (sighting records).
        for position in [8, original.len() / 2, original.len() - 8] {
            let mut damaged = original.clone();
            damaged[position] ^= 0xA5;
            std::fs::write(&path, &damaged).unwrap();
            for tier in [TierMode::Cold, TierMode::Hot] {
                let (opened, report) = StoreOpenOptions::new().tier(tier).open(&dir).unwrap();
                assert_eq!(
                    report.lost_shards,
                    vec![index],
                    "shard {index} @ {position}"
                );
                assert_eq!(report.loaded_shards, store.shard_count() - 1);
                assert!(report.lost_segments > 0);
                assert_fails_closed(&store, &opened);
            }
        }
        std::fs::write(&path, &original).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v3_truncation_fails_closed_per_shard() {
    let (store, dir, populated) = v3_fixture("trunc");
    for &index in &populated {
        let path = shard_path(&dir, index);
        let original = std::fs::read(&path).unwrap();
        for keep in [0, 1, 63, 64, original.len() / 2, original.len() - 1] {
            std::fs::write(&path, &original[..keep]).unwrap();
            let (opened, report) = StoreOpenOptions::new()
                .tier(TierMode::Cold)
                .open(&dir)
                .unwrap();
            assert_eq!(report.lost_shards, vec![index], "shard {index} keep {keep}");
            assert_fails_closed(&store, &opened);
        }
        std::fs::write(&path, &original).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v3_misaligned_lengths_fail_closed_even_with_consistent_metadata() {
    // The nasty corner for a zero-copy reader: the manifest agrees with
    // the file bytes (CRC and length re-signed), but the length no longer
    // matches the geometry the header declares — including lengths that
    // break the 8-byte alignment a mapped view relies on. Open must
    // reject the shard via its geometry validation, not trust the CRC.
    let (store, dir, populated) = v3_fixture("align");
    let index = populated[0];
    let path = shard_path(&dir, index);
    let original = std::fs::read(&path).unwrap();
    let manifest = std::fs::read(dir.join("manifest.bfm")).unwrap();

    // (a) Shave 4 bytes: length is no longer a multiple of 8.
    // (b) Shave a whole trailing record: aligned, but short of the header.
    // (c) Append 8 zero bytes: aligned, but long of the header.
    let mut variants: Vec<Vec<u8>> = vec![
        original[..original.len() - 4].to_vec(),
        original[..original.len() - 24].to_vec(),
    ];
    let mut padded = original.clone();
    padded.extend_from_slice(&[0u8; 8]);
    variants.push(padded);

    for (case, damaged) in variants.iter().enumerate() {
        std::fs::write(&path, damaged).unwrap();
        resign_manifest(&dir, index, crc32_ref(damaged), damaged.len() as u64);
        let (opened, report) = StoreOpenOptions::new()
            .tier(TierMode::Cold)
            .open(&dir)
            .unwrap();
        assert!(
            report.lost_shards.contains(&index),
            "case {case}: consistent-but-misaligned shard must be rejected"
        );
        assert_fails_closed(&store, &opened);
        // Restore pristine state for the next variant.
        std::fs::write(&path, &original).unwrap();
        std::fs::write(dir.join("manifest.bfm"), &manifest).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v3_manifest_corruption_is_fatal_not_a_panic() {
    let (_, dir, _) = v3_fixture("manifest");
    let path = dir.join("manifest.bfm");
    let original = std::fs::read(&path).unwrap();
    // Flip the trailing CRC: nothing can be trusted.
    let mut damaged = original.clone();
    let last = damaged.len() - 1;
    damaged[last] ^= 0xFF;
    std::fs::write(&path, &damaged).unwrap();
    assert!(matches!(
        StoreOpenOptions::new().tier(TierMode::Cold).open(&dir),
        Err(PersistError::Codec(CodecError::ManifestChecksum))
    ));
    // Every strict prefix is a typed error as well, never a panic.
    for keep in 0..original.len() {
        std::fs::write(&path, &original[..keep]).unwrap();
        assert!(StoreOpenOptions::new()
            .tier(TierMode::Cold)
            .open(&dir)
            .is_err());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Cross-version opens through the unified entry point
// ---------------------------------------------------------------------------

#[test]
fn every_historic_snapshot_format_opens_through_store_open_options() {
    let store = build_store(&[(1, 0), (2, 3), (3, 5), (4, 7), (5, 9)]);
    let mut rng = StdRng::seed_from_u64(21);
    let key = StoreKey::generate(&mut rng);
    let base = std::env::temp_dir().join(format!("bf-xver-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // Single-file payloads: v1 blob, v2 blob, sealed container.
    let v1_file = base.join("store.v1.bfst");
    std::fs::write(&v1_file, codec::encode_v1(&store).unwrap()).unwrap();
    let v2_file = base.join("store.v2.bfst");
    std::fs::write(&v2_file, codec::encode(&store).unwrap()).unwrap();
    let sealed_file = base.join("store.bfss");
    std::fs::write(&sealed_file, store.export_sealed(&key).unwrap().to_bytes()).unwrap();

    // Directory payloads: plain v2, sealed v2, plain v3.
    let v2_dir = base.join("dir-v2");
    PersistOptions::new().persist(&store, &v2_dir).unwrap();
    let sealed_dir = base.join("dir-sealed");
    PersistOptions::sealed(key.clone())
        .persist(&store, &sealed_dir)
        .unwrap();
    let v3_dir = base.join("dir-v3");
    PersistOptions::new()
        .format(StoreFormat::V3)
        .persist(&store, &v3_dir)
        .unwrap();

    let opts = StoreOpenOptions::sealed(key.clone());
    for (label, path) in [
        ("v1 file", &v1_file),
        ("v2 file", &v2_file),
        ("sealed file", &sealed_file),
        ("v2 dir", &v2_dir),
        ("sealed dir", &sealed_dir),
        ("v3 dir", &v3_dir),
    ] {
        // Both tier modes must open every payload (cold only takes effect
        // for the v3 directory; the rest decode hot).
        for tier in [TierMode::Hot, TierMode::Cold] {
            let (opened, report) = opts.clone().tier(tier).open(path).unwrap();
            assert!(report.is_complete(), "{label} ({tier:?}): {report}");
            assert_eq!(
                opened.segment_count(),
                store.segment_count(),
                "{label} ({tier:?})"
            );
            assert_eq!(
                opened.hash_count(),
                store.hash_count(),
                "{label} ({tier:?})"
            );
            assert_equivalent(&store, &opened);
        }
    }

    // Sealed payloads without a key are a typed refusal, not garbage.
    for path in [&sealed_file, &sealed_dir] {
        assert!(matches!(
            StoreOpenOptions::new().open(path),
            Err(PersistError::Unsupported(_))
        ));
    }
    std::fs::remove_dir_all(&base).unwrap();
}

proptest! {
    /// encode_v2 ∘ decode_v2 == id over arbitrary stores and shard counts.
    #[test]
    fn v2_roundtrip_is_identity(
        specs in proptest::collection::vec((1u64..200, 0usize..16), 0..24),
        shards_log2 in 0u32..7,
        workers in 1usize..5,
    ) {
        let store = build_store(&specs);
        let shards = 1usize << shards_log2;
        let blob = codec::encode_v2_with_shards(&store, shards).unwrap();
        let decoded = codec::decode_with_workers(&blob, workers).unwrap();
        assert_equivalent(&store, &decoded);
        let (lossy, report) = codec::decode_lossy(&blob).unwrap();
        assert_equivalent(&store, &lossy);
        prop_assert!(report.is_complete());
        prop_assert_eq!(report.loaded_shards, shards);
    }

    /// The v1 and v2 encodings of the same store decode to equivalent
    /// stores (cross-version agreement).
    #[test]
    fn v1_and_v2_agree(specs in proptest::collection::vec((1u64..200, 0usize..16), 0..12)) {
        let store = build_store(&specs);
        let from_v1 = codec::decode(&codec::encode_v1(&store).unwrap()).unwrap();
        let from_v2 = codec::decode(&codec::encode(&store).unwrap()).unwrap();
        assert_equivalent(&from_v1, &from_v2);
    }
}
