//! Property-based tests of fingerprint-store invariants.

use browserflow_fingerprint::{Fingerprint, SelectedHash};
use browserflow_store::{disclosure_between, FingerprintStore, SegmentId};
use proptest::prelude::*;
use std::collections::HashSet;

fn fingerprint_of(hashes: &[u32]) -> Fingerprint {
    hashes
        .iter()
        .enumerate()
        .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
        .collect()
}

fn hash_vec() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..500, 0..40)
}

proptest! {
    /// The first observer of a hash stays its authoritative owner no
    /// matter how many later segments also contain it.
    #[test]
    fn first_observer_owns_hashes(first in hash_vec(), later in proptest::collection::vec(hash_vec(), 0..5)) {
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(0), &fingerprint_of(&first), 0.5);
        for (i, hashes) in later.iter().enumerate() {
            store.observe(SegmentId::new(i as u64 + 1), &fingerprint_of(hashes), 0.5);
        }
        for &h in &first {
            prop_assert_eq!(store.oldest_segment_with(h), Some(SegmentId::new(0)));
        }
    }

    /// Authoritative fingerprints of distinct segments are disjoint.
    #[test]
    fn authoritative_fingerprints_are_disjoint(sets in proptest::collection::vec(hash_vec(), 1..6)) {
        let store = FingerprintStore::new();
        for (i, hashes) in sets.iter().enumerate() {
            store.observe(SegmentId::new(i as u64), &fingerprint_of(hashes), 0.5);
        }
        let auth: Vec<HashSet<u32>> = (0..sets.len())
            .map(|i| store.authoritative_fingerprint(SegmentId::new(i as u64)))
            .collect();
        for i in 0..auth.len() {
            for j in i + 1..auth.len() {
                prop_assert!(auth[i].is_disjoint(&auth[j]),
                    "segments {i} and {j} share authoritative hashes");
            }
        }
        // And each authoritative fingerprint is a subset of the stored one.
        for (i, hashes) in sets.iter().enumerate() {
            let full: HashSet<u32> = hashes.iter().copied().collect();
            prop_assert!(auth[i].is_subset(&full));
        }
    }

    /// Reported disclosures always lie in (0, 1], meet the source's
    /// threshold, and never include the target itself.
    #[test]
    fn reports_respect_threshold_and_bounds(
        stored in proptest::collection::vec(hash_vec(), 0..6),
        target in hash_vec(),
        threshold in 0.0f64..=1.0,
    ) {
        let store = FingerprintStore::new();
        for (i, hashes) in stored.iter().enumerate() {
            store.observe(SegmentId::new(i as u64), &fingerprint_of(hashes), threshold);
        }
        let target_id = SegmentId::new(999);
        let reports = store.disclosing_sources(target_id, &fingerprint_of(&target));
        for report in &reports {
            prop_assert!(report.source != target_id);
            prop_assert!(report.disclosure > 0.0 && report.disclosure <= 1.0);
            prop_assert!(report.shared_hashes >= 1);
            prop_assert!(report.disclosure >= report.threshold - 1e-12);
        }
        // Output is sorted by decreasing disclosure.
        for pair in reports.windows(2) {
            prop_assert!(pair[0].disclosure >= pair[1].disclosure);
        }
    }

    /// With a single stored segment there is no overlap compensation, so
    /// Algorithm 1 agrees with the plain pairwise metric of §4.2.
    #[test]
    fn single_source_matches_plain_containment(source in hash_vec(), target in hash_vec()) {
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fingerprint_of(&source), 0.0);
        let reports = store.disclosing_sources(SegmentId::new(2), &fingerprint_of(&target));
        let source_set: HashSet<u32> = source.iter().copied().collect();
        let target_set: HashSet<u32> = target.iter().copied().collect();
        let plain = disclosure_between(&source_set, &target_set);
        if plain > 0.0 {
            prop_assert_eq!(reports.len(), 1);
            prop_assert!((reports[0].disclosure - plain).abs() < 1e-12);
        } else {
            prop_assert!(reports.is_empty());
        }
    }

    /// Removing a segment means it is never reported again, and its hashes
    /// become ownable by others.
    #[test]
    fn removed_segments_do_not_report(hashes in hash_vec()) {
        prop_assume!(!hashes.is_empty());
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fingerprint_of(&hashes), 0.0);
        store.remove_segment(SegmentId::new(1));
        let reports = store.disclosing_sources(SegmentId::new(2), &fingerprint_of(&hashes));
        prop_assert!(reports.is_empty());
        store.observe(SegmentId::new(3), &fingerprint_of(&hashes), 0.0);
        prop_assert_eq!(store.oldest_segment_with(hashes[0]), Some(SegmentId::new(3)));
    }

    /// Re-observing the same fingerprint for the same segment is
    /// idempotent with respect to disclosure results.
    #[test]
    fn observation_is_idempotent(source in hash_vec(), target in hash_vec()) {
        let store_once = FingerprintStore::new();
        store_once.observe(SegmentId::new(1), &fingerprint_of(&source), 0.3);
        let store_twice = FingerprintStore::new();
        store_twice.observe(SegmentId::new(1), &fingerprint_of(&source), 0.3);
        store_twice.observe(SegmentId::new(1), &fingerprint_of(&source), 0.3);
        let target_fp = fingerprint_of(&target);
        prop_assert_eq!(
            store_once.disclosing_sources(SegmentId::new(2), &target_fp),
            store_twice.disclosing_sources(SegmentId::new(2), &target_fp)
        );
    }
}

mod incremental_equivalence {
    use browserflow_fingerprint::{Fingerprint, SelectedHash};
    use browserflow_store::{FingerprintStore, IncrementalChecker, SegmentId};
    use proptest::prelude::*;

    fn fingerprint_of(hashes: &[u32]) -> Fingerprint {
        hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
            .collect()
    }

    proptest! {
        /// After any interleaving of adds and removes, the incremental
        /// checker reports exactly what a full Algorithm 1 run over the
        /// current hash set reports (§4.3's incrementality claim).
        #[test]
        fn incremental_equals_full_recompute(
            stored in proptest::collection::vec(proptest::collection::vec(0u32..300, 0..30), 0..5),
            deltas in proptest::collection::vec(
                (proptest::collection::vec(0u32..300, 0..10),
                 proptest::collection::vec(0u32..300, 0..10)),
                1..12,
            ),
        ) {
            let store = FingerprintStore::new();
            for (i, hashes) in stored.iter().enumerate() {
                store.observe(SegmentId::new(i as u64), &fingerprint_of(hashes), 0.3);
            }
            let target = SegmentId::new(999);
            let mut checker = IncrementalChecker::new(target);
            for (added, removed) in &deltas {
                let incremental = checker.update(&store, added, removed);
                let full = store.disclosing_sources_of_hashes(target, checker.hashes());
                prop_assert_eq!(incremental, full);
            }
        }
    }
}
