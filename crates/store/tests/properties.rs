//! Property-based tests of fingerprint-store invariants.

use browserflow_fingerprint::{Fingerprint, SelectedHash};
use browserflow_store::{disclosure_between, FingerprintStore, SegmentId};
use proptest::prelude::*;
use std::collections::HashSet;

fn fingerprint_of(hashes: &[u32]) -> Fingerprint {
    hashes
        .iter()
        .enumerate()
        .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
        .collect()
}

fn hash_vec() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..500, 0..40)
}

proptest! {
    /// The first observer of a hash stays its authoritative owner no
    /// matter how many later segments also contain it.
    #[test]
    fn first_observer_owns_hashes(first in hash_vec(), later in proptest::collection::vec(hash_vec(), 0..5)) {
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(0), &fingerprint_of(&first), 0.5);
        for (i, hashes) in later.iter().enumerate() {
            store.observe(SegmentId::new(i as u64 + 1), &fingerprint_of(hashes), 0.5);
        }
        for &h in &first {
            prop_assert_eq!(store.oldest_segment_with(h), Some(SegmentId::new(0)));
        }
    }

    /// Authoritative fingerprints of distinct segments are disjoint.
    #[test]
    fn authoritative_fingerprints_are_disjoint(sets in proptest::collection::vec(hash_vec(), 1..6)) {
        let store = FingerprintStore::new();
        for (i, hashes) in sets.iter().enumerate() {
            store.observe(SegmentId::new(i as u64), &fingerprint_of(hashes), 0.5);
        }
        let auth: Vec<HashSet<u32>> = (0..sets.len())
            .map(|i| store.authoritative_fingerprint(SegmentId::new(i as u64)))
            .collect();
        for i in 0..auth.len() {
            for j in i + 1..auth.len() {
                prop_assert!(auth[i].is_disjoint(&auth[j]),
                    "segments {i} and {j} share authoritative hashes");
            }
        }
        // And each authoritative fingerprint is a subset of the stored one.
        for (i, hashes) in sets.iter().enumerate() {
            let full: HashSet<u32> = hashes.iter().copied().collect();
            prop_assert!(auth[i].is_subset(&full));
        }
    }

    /// Reported disclosures always lie in (0, 1], meet the source's
    /// threshold, and never include the target itself.
    #[test]
    fn reports_respect_threshold_and_bounds(
        stored in proptest::collection::vec(hash_vec(), 0..6),
        target in hash_vec(),
        threshold in 0.0f64..=1.0,
    ) {
        let store = FingerprintStore::new();
        for (i, hashes) in stored.iter().enumerate() {
            store.observe(SegmentId::new(i as u64), &fingerprint_of(hashes), threshold);
        }
        let target_id = SegmentId::new(999);
        let reports = store.disclosing_sources(target_id, &fingerprint_of(&target));
        for report in &reports {
            prop_assert!(report.source != target_id);
            prop_assert!(report.disclosure > 0.0 && report.disclosure <= 1.0);
            prop_assert!(report.shared_hashes >= 1);
            prop_assert!(report.disclosure >= report.threshold - 1e-12);
        }
        // Output is sorted by decreasing disclosure.
        for pair in reports.windows(2) {
            prop_assert!(pair[0].disclosure >= pair[1].disclosure);
        }
    }

    /// With a single stored segment there is no overlap compensation, so
    /// Algorithm 1 agrees with the plain pairwise metric of §4.2.
    #[test]
    fn single_source_matches_plain_containment(source in hash_vec(), target in hash_vec()) {
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fingerprint_of(&source), 0.0);
        let reports = store.disclosing_sources(SegmentId::new(2), &fingerprint_of(&target));
        let source_set: HashSet<u32> = source.iter().copied().collect();
        let target_set: HashSet<u32> = target.iter().copied().collect();
        let plain = disclosure_between(&source_set, &target_set);
        if plain > 0.0 {
            prop_assert_eq!(reports.len(), 1);
            prop_assert!((reports[0].disclosure - plain).abs() < 1e-12);
        } else {
            prop_assert!(reports.is_empty());
        }
    }

    /// Removing a segment means it is never reported again, and its hashes
    /// become ownable by others.
    #[test]
    fn removed_segments_do_not_report(hashes in hash_vec()) {
        prop_assume!(!hashes.is_empty());
        let store = FingerprintStore::new();
        store.observe(SegmentId::new(1), &fingerprint_of(&hashes), 0.0);
        store.remove_segment(SegmentId::new(1));
        let reports = store.disclosing_sources(SegmentId::new(2), &fingerprint_of(&hashes));
        prop_assert!(reports.is_empty());
        store.observe(SegmentId::new(3), &fingerprint_of(&hashes), 0.0);
        prop_assert_eq!(store.oldest_segment_with(hashes[0]), Some(SegmentId::new(3)));
    }

    /// Re-observing the same fingerprint for the same segment is
    /// idempotent with respect to disclosure results.
    #[test]
    fn observation_is_idempotent(source in hash_vec(), target in hash_vec()) {
        let store_once = FingerprintStore::new();
        store_once.observe(SegmentId::new(1), &fingerprint_of(&source), 0.3);
        let store_twice = FingerprintStore::new();
        store_twice.observe(SegmentId::new(1), &fingerprint_of(&source), 0.3);
        store_twice.observe(SegmentId::new(1), &fingerprint_of(&source), 0.3);
        let target_fp = fingerprint_of(&target);
        prop_assert_eq!(
            store_once.disclosing_sources(SegmentId::new(2), &target_fp),
            store_twice.disclosing_sources(SegmentId::new(2), &target_fp)
        );
    }
}

mod batched_ingest_equivalence {
    use browserflow_fingerprint::{Fingerprint, SelectedHash};
    use browserflow_store::{
        FingerprintStore, SegmentId, ShardedHashDb, SightingOutcome, Timestamp,
    };
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn fingerprint_of(hashes: &[u32]) -> Fingerprint {
        hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
            .collect()
    }

    /// One batch entry: a segment id from a deliberately small range (so
    /// duplicate segments are common), a hash set from a small universe
    /// (so cross-segment collisions are common), and a threshold.
    fn entry() -> impl Strategy<Value = (u64, Vec<u32>, f64)> {
        (
            0u64..8,
            proptest::collection::vec(0u32..200, 0..24),
            0.0f64..=1.0,
        )
    }

    /// Both stores must agree on every observable surface Algorithm 1
    /// reads: first sightings, authoritative sets, stored records and
    /// disclosure reports.
    fn assert_stores_agree(
        batched: &FingerprintStore,
        sequential: &FingerprintStore,
        probe: &[u32],
    ) -> Result<(), TestCaseError> {
        prop_assert_eq!(batched.now(), sequential.now());
        let sort = |mut v: Vec<(u32, browserflow_store::Sighting)>| {
            v.sort_unstable_by_key(|&(h, s)| (h, s.segment, s.time));
            v
        };
        prop_assert_eq!(sort(batched.sightings()), sort(sequential.sightings()));
        let mut ids: Vec<SegmentId> = sequential.segment_ids().collect();
        ids.sort_unstable();
        let mut batched_ids: Vec<SegmentId> = batched.segment_ids().collect();
        batched_ids.sort_unstable();
        prop_assert_eq!(&batched_ids, &ids);
        for id in ids {
            prop_assert_eq!(
                batched.authoritative_fingerprint(id),
                sequential.authoritative_fingerprint(id),
                "authoritative set diverged for {:?}",
                id
            );
            let a = batched.segment(id).expect("stored");
            let b = sequential.segment(id).expect("stored");
            prop_assert_eq!(a.hashes(), b.hashes());
            prop_assert_eq!(a.authoritative(), b.authoritative());
            prop_assert_eq!(a.threshold(), b.threshold());
            prop_assert_eq!(a.updated(), b.updated());
        }
        let target: HashSet<u32> = probe.iter().copied().collect();
        prop_assert_eq!(
            batched.disclosing_sources_of_hashes(SegmentId::new(999), &target),
            sequential.disclosing_sources_of_hashes(SegmentId::new(999), &target)
        );
        Ok(())
    }

    proptest! {
        /// `observe_batch` over an arbitrary entry sequence — duplicate
        /// segments and colliding hashes included — leaves `DBhash`,
        /// authoritative sets and subsequent disclosure reports identical
        /// to sequential `observe` calls in the same order.
        #[test]
        fn observe_batch_equals_sequential_observes(
            entries in proptest::collection::vec(entry(), 0..24),
            probe in proptest::collection::vec(0u32..200, 0..40),
        ) {
            let prints: Vec<(SegmentId, Fingerprint, f64)> = entries
                .iter()
                .map(|(id, hashes, t)| (SegmentId::new(*id), fingerprint_of(hashes), *t))
                .collect();
            let sequential = FingerprintStore::new();
            for (id, print, threshold) in &prints {
                sequential.observe(*id, print, *threshold);
            }
            let batched = FingerprintStore::new();
            let refs: Vec<(SegmentId, &Fingerprint, f64)> =
                prints.iter().map(|(id, p, t)| (*id, p, *t)).collect();
            batched.observe_batch(&refs);
            assert_stores_agree(&batched, &sequential, &probe)?;
        }

        /// Splitting the same sequence into consecutive `observe_batch`
        /// calls (arbitrary chunking, interleaving batch sizes of one)
        /// changes nothing either.
        #[test]
        fn chunked_batches_equal_sequential_observes(
            entries in proptest::collection::vec(entry(), 0..24),
            chunk in 1usize..6,
            probe in proptest::collection::vec(0u32..200, 0..40),
        ) {
            let prints: Vec<(SegmentId, Fingerprint, f64)> = entries
                .iter()
                .map(|(id, hashes, t)| (SegmentId::new(*id), fingerprint_of(hashes), *t))
                .collect();
            let sequential = FingerprintStore::new();
            for (id, print, threshold) in &prints {
                sequential.observe(*id, print, *threshold);
            }
            let batched = FingerprintStore::new();
            let refs: Vec<(SegmentId, &Fingerprint, f64)> =
                prints.iter().map(|(id, p, t)| (*id, p, *t)).collect();
            for piece in refs.chunks(chunk) {
                batched.observe_batch(piece);
            }
            assert_stores_agree(&batched, &sequential, &probe)?;
        }

        /// At the `DBhash` level the batched pass must reproduce the
        /// sequential outcomes even for *displacement-inducing* inputs:
        /// arbitrary timestamps make later tuples steal ownership with
        /// earlier times, exactly what racing observers produce.
        #[test]
        fn batched_sightings_equal_sequential_with_displacements(
            tuples in proptest::collection::vec((0u32..100, 0u64..8, 0u64..50), 0..80),
        ) {
            let sightings: Vec<(u32, SegmentId, Timestamp)> = tuples
                .iter()
                .map(|&(h, s, t)| (h, SegmentId::new(s), Timestamp::new(t)))
                .collect();
            let sequential = ShardedHashDb::with_shards(8);
            let expected: Vec<_> = sightings
                .iter()
                .map(|&(h, s, t)| sequential.record_sighting(h, s, t))
                .collect();
            let batched = ShardedHashDb::with_shards(8);
            let sighted = batched.record_sightings_batch(&sightings);
            // The compact form must agree with the sequential outcomes:
            // ownership bit per sighting, displacements in submission order.
            let expected_owned: Vec<bool> = expected
                .iter()
                .zip(&sightings)
                .map(|(outcome, &(_, segment, _))| match *outcome {
                    SightingOutcome::Installed | SightingOutcome::Displaced(_) => true,
                    SightingOutcome::Kept(owner) => owner == segment,
                })
                .collect();
            let expected_displaced: Vec<(u32, SegmentId)> = expected
                .iter()
                .enumerate()
                .filter_map(|(index, outcome)| match *outcome {
                    SightingOutcome::Displaced(previous) => Some((index as u32, previous)),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(sighted.owned, expected_owned);
            prop_assert_eq!(sighted.displaced, expected_displaced);
            prop_assert_eq!(batched.displacement_epoch(), sequential.displacement_epoch());
            for h in 0..100 {
                prop_assert_eq!(batched.oldest_with(h), sequential.oldest_with(h));
            }
        }
    }
}

mod incremental_equivalence {
    use browserflow_fingerprint::{Fingerprint, SelectedHash};
    use browserflow_store::{FingerprintStore, IncrementalChecker, SegmentId};
    use proptest::prelude::*;

    fn fingerprint_of(hashes: &[u32]) -> Fingerprint {
        hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
            .collect()
    }

    proptest! {
        /// After any interleaving of adds and removes, the incremental
        /// checker reports exactly what a full Algorithm 1 run over the
        /// current hash set reports (§4.3's incrementality claim).
        #[test]
        fn incremental_equals_full_recompute(
            stored in proptest::collection::vec(proptest::collection::vec(0u32..300, 0..30), 0..5),
            deltas in proptest::collection::vec(
                (proptest::collection::vec(0u32..300, 0..10),
                 proptest::collection::vec(0u32..300, 0..10)),
                1..12,
            ),
        ) {
            let store = FingerprintStore::new();
            for (i, hashes) in stored.iter().enumerate() {
                store.observe(SegmentId::new(i as u64), &fingerprint_of(hashes), 0.3);
            }
            let target = SegmentId::new(999);
            let mut checker = IncrementalChecker::new(target);
            for (added, removed) in &deltas {
                let incremental = checker.update(&store, added, removed);
                let full = store.disclosing_sources_of_hashes(target, checker.hashes());
                prop_assert_eq!(incremental, full);
            }
        }
    }
}

mod indexed_evaluation {
    use browserflow_fingerprint::{Fingerprint, SelectedHash};
    use browserflow_store::{
        codec, intersection_count, probe_disclosing_sources, FingerprintStore, SegmentId,
    };
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn fingerprint_of(hashes: &[u32]) -> Fingerprint {
        hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| SelectedHash::new(h, i, i..i + 1))
            .collect()
    }

    fn sorted_dedup(mut values: Vec<u32>) -> Vec<u32> {
        values.sort_unstable();
        values.dedup();
        values
    }

    /// The pre-index definition of a segment's authoritative set: one
    /// `DBhash` probe per stored hash.
    fn probe_authoritative(store: &FingerprintStore, id: SegmentId) -> HashSet<u32> {
        let stored = store.segment(id).expect("segment exists");
        stored
            .hashes()
            .iter()
            .copied()
            .filter(|&h| store.oldest_segment_with(h) == Some(id))
            .collect()
    }

    /// Every segment's incrementally maintained authoritative set must
    /// equal the probe-derived one.
    fn assert_index_matches_probe(store: &FingerprintStore) -> Result<(), TestCaseError> {
        for id in store.segment_ids() {
            prop_assert_eq!(
                store.authoritative_fingerprint(id),
                probe_authoritative(store, id),
                "authoritative index diverged for segment {:?}",
                id
            );
        }
        Ok(())
    }

    /// One random op against the store.
    #[derive(Debug, Clone)]
    enum Op {
        Observe(u64, Vec<u32>),
        Remove(u64),
    }

    fn op() -> impl Strategy<Value = Op> {
        // Remove is rare-ish: ids 8..40 in the second arm are mapped back
        // into 0..8, biasing the mix toward observations via the id range.
        (0u64..40, proptest::collection::vec(0u32..200, 0..24)).prop_map(|(id, hashes)| {
            if id < 32 {
                Op::Observe(id % 8, hashes)
            } else {
                Op::Remove(id % 8)
            }
        })
    }

    #[test]
    fn kernel_edge_cases() {
        assert_eq!(intersection_count(&[], &[]), 0);
        assert_eq!(intersection_count(&[1, 2, 3], &[]), 0);
        assert_eq!(intersection_count(&[], &[1, 2, 3]), 0);
        // Disjoint, interleaved and block-separated.
        assert_eq!(intersection_count(&[1, 3, 5], &[2, 4, 6]), 0);
        assert_eq!(intersection_count(&[1, 2, 3], &[100, 200]), 0);
        // Subset (exercises the galloping path when sizes diverge).
        let big: Vec<u32> = (0..4096).map(|i| i * 3).collect();
        let small: Vec<u32> = big.iter().copied().step_by(97).collect();
        assert_eq!(intersection_count(&small, &big), small.len());
        assert_eq!(intersection_count(&big, &small), small.len());
        // Identity.
        assert_eq!(intersection_count(&big, &big), big.len());
    }

    proptest! {
        /// The merge/galloping kernel equals the `HashSet` intersection
        /// size on arbitrary sorted-dedup inputs, in both argument orders.
        #[test]
        fn kernel_matches_hashset_reference(
            a in proptest::collection::vec(0u32..400, 0..300),
            b in proptest::collection::vec(0u32..400, 0..300),
        ) {
            let a = sorted_dedup(a);
            let b = sorted_dedup(b);
            let sa: HashSet<u32> = a.iter().copied().collect();
            let sb: HashSet<u32> = b.iter().copied().collect();
            let expected = sa.intersection(&sb).count();
            prop_assert_eq!(intersection_count(&a, &b), expected);
            prop_assert_eq!(intersection_count(&b, &a), expected);
        }

        /// Galloping is forced by blowing one side up; the count still
        /// equals the set-semantics reference.
        #[test]
        fn kernel_gallops_correctly(
            small in proptest::collection::vec(0u32..10_000, 0..12),
            seed in 0u32..1000,
        ) {
            let small = sorted_dedup(small);
            let big: Vec<u32> = (0..2_000u32).map(|i| i * 5 + seed % 5).collect();
            let sb: HashSet<u32> = big.iter().copied().collect();
            let expected = small.iter().filter(|h| sb.contains(h)).count();
            prop_assert_eq!(intersection_count(&small, &big), expected);
            prop_assert_eq!(intersection_count(&big, &small), expected);
        }

        /// After any sequence of observations (with displacement-heavy
        /// hash overlap) and removals, the incrementally maintained
        /// authoritative index equals the per-hash-probe derivation, and
        /// full Algorithm 1 reports equal the probe-based reference.
        #[test]
        fn index_matches_probe_after_random_ops(
            ops in proptest::collection::vec(op(), 1..40),
            target in proptest::collection::vec(0u32..200, 0..60),
        ) {
            let store = FingerprintStore::new();
            for op in &ops {
                match op {
                    Op::Observe(id, hashes) => {
                        store.observe(SegmentId::new(*id), &fingerprint_of(hashes), 0.3);
                    }
                    Op::Remove(id) => {
                        store.remove_segment(SegmentId::new(*id));
                    }
                }
            }
            assert_index_matches_probe(&store)?;
            let target_id = SegmentId::new(999);
            let target: HashSet<u32> = target.into_iter().collect();
            prop_assert_eq!(
                store.disclosing_sources_of_hashes(target_id, &target),
                probe_disclosing_sources(&store, target_id, &target)
            );
        }

        /// The index is derived state: a v2 encode→decode roundtrip (which
        /// replays sightings shard by shard, i.e. out of observation
        /// order) rebuilds an index identical to the probe derivation and
        /// to the original store's.
        #[test]
        fn index_survives_codec_roundtrip(
            ops in proptest::collection::vec(op(), 1..30),
            shards in 1usize..8,
            workers in 1usize..4,
        ) {
            let store = FingerprintStore::new();
            for op in &ops {
                match op {
                    Op::Observe(id, hashes) => {
                        store.observe(SegmentId::new(*id), &fingerprint_of(hashes), 0.3);
                    }
                    Op::Remove(id) => {
                        store.remove_segment(SegmentId::new(*id));
                    }
                }
            }
            let blob = codec::encode_v2_with_shards(&store, shards).expect("encodes");
            let restored = codec::decode_with_workers(&blob, workers).expect("decodes");
            assert_index_matches_probe(&restored)?;
            let mut ids: Vec<SegmentId> = store.segment_ids().collect();
            ids.sort_unstable();
            for id in ids {
                prop_assert_eq!(
                    restored.authoritative_fingerprint(id),
                    store.authoritative_fingerprint(id)
                );
            }
        }
    }
}
