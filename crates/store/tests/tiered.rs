//! Tiered (hot/cold) store tests: v3 round-trips through both tier
//! modes, promotion-on-write, demotion sweeps, and the property that a
//! cold-opened store answers Algorithm 1 byte-identically to the hot
//! reference it was persisted from.

use browserflow_fingerprint::Fingerprinter;
use browserflow_store::{
    DisclosureReport, FingerprintStore, PersistError, PersistOptions, SegmentId, StoreFormat,
    StoreOpenOptions, TierMode, Timestamp,
};
use proptest::prelude::*;
use std::path::PathBuf;

const WORDS: [&str; 16] = [
    "acquisition",
    "initech",
    "margin",
    "outlook",
    "reorganisation",
    "timeline",
    "incident",
    "postmortem",
    "remediation",
    "quarterly",
    "earnings",
    "zurich",
    "press",
    "event",
    "subsidiaries",
    "patents",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bf-tiered-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn segment_text(seed: usize) -> String {
    let words: Vec<&str> = (0..12)
        .map(|i| WORDS[(seed + i * 3) % WORDS.len()])
        .collect();
    words.join(" ")
}

fn build_store(specs: &[(u64, usize)]) -> FingerprintStore {
    let fp = Fingerprinter::default();
    let store = FingerprintStore::new();
    for &(id, seed) in specs {
        store.observe(
            SegmentId::new(id),
            &fp.fingerprint(&segment_text(seed)),
            (seed % 10) as f64 / 10.0,
        );
    }
    store
}

fn assert_equivalent(a: &FingerprintStore, b: &FingerprintStore) {
    assert_eq!(a.segment_count(), b.segment_count());
    assert_eq!(a.hash_count(), b.hash_count());
    assert_eq!(a.now(), b.now());
    let mut ids: Vec<SegmentId> = a.segment_ids().collect();
    ids.sort_unstable();
    for id in ids {
        let sa = a.segment(id).unwrap();
        let sb = b.segment(id).unwrap();
        assert_eq!(sa.hashes(), sb.hashes());
        assert_eq!(sa.threshold(), sb.threshold());
        assert_eq!(sa.updated(), sb.updated());
        // v3 persists the authoritative subset, so it must survive both
        // tier modes exactly.
        assert_eq!(sa.authoritative(), sb.authoritative());
    }
}

fn persist_v3(store: &FingerprintStore, dir: &std::path::Path) {
    PersistOptions::new()
        .format(StoreFormat::V3)
        .persist(store, dir)
        .unwrap();
}

fn open_cold(dir: &std::path::Path) -> FingerprintStore {
    let (store, report) = StoreOpenOptions::new()
        .tier(TierMode::Cold)
        .open(dir)
        .unwrap();
    assert!(report.is_complete(), "cold open lost shards: {report}");
    store
}

#[test]
fn v3_roundtrip_cold_and_hot_modes_are_equivalent() {
    let dir = temp_dir("roundtrip");
    let specs: Vec<(u64, usize)> = (1..=40).map(|i| (i, i as usize)).collect();
    let store = build_store(&specs);
    persist_v3(&store, &dir);

    let cold = open_cold(&dir);
    assert_equivalent(&store, &cold);
    let stats = cold.stats();
    assert!(stats.cold_shards > 0, "cold open must attach mapped shards");
    assert_eq!(stats.cold_segments, store.segment_count());
    assert_eq!(stats.cold_sightings, store.hash_count());
    assert_eq!(stats.tier_promoted_segments, 0);

    // Hot mode decodes the same files fully into memory.
    let (hot, report) = StoreOpenOptions::new().open(&dir).unwrap();
    assert!(report.is_complete());
    assert_equivalent(&store, &hot);
    assert_eq!(hot.stats().cold_shards, 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_segment_handles_read_the_mapped_file() {
    let dir = temp_dir("handles");
    let store = build_store(&[(1, 2), (2, 5), (3, 9)]);
    persist_v3(&store, &dir);
    let cold = open_cold(&dir);
    for id in [1u64, 2, 3] {
        let handle = cold.segment_handle(SegmentId::new(id)).unwrap();
        assert!(handle.is_cold(), "segment {id} should be served cold");
        let reference = store.segment(SegmentId::new(id)).unwrap();
        assert_eq!(handle.hashes(), reference.hashes());
        assert_eq!(handle.authoritative(), reference.authoritative());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn promotion_on_write_keeps_verdicts_and_counts() {
    let dir = temp_dir("promotion");
    let fp = Fingerprinter::default();
    let specs: Vec<(u64, usize)> = (1..=16).map(|i| (i, i as usize)).collect();
    let store = build_store(&specs);
    persist_v3(&store, &dir);
    let cold = open_cold(&dir);

    // Mutations against cold records promote them into the hot tier…
    assert!(cold.set_threshold(SegmentId::new(3), 0.9));
    let refreshed = segment_text(99);
    cold.observe(SegmentId::new(5), &fp.fingerprint(&refreshed), 0.4);
    let stats = cold.stats();
    assert!(
        stats.tier_promoted_segments >= 1,
        "threshold change must promote, got {}",
        stats.tier_promoted_segments
    );
    assert!(!cold.segment_handle(SegmentId::new(3)).unwrap().is_cold());
    assert!(!cold.segment_handle(SegmentId::new(5)).unwrap().is_cold());
    assert_eq!(cold.segment(SegmentId::new(3)).unwrap().threshold(), 0.9);

    // …while a pure-hot store given the same history agrees on verdicts.
    let reference = build_store(&specs);
    assert!(reference.set_threshold(SegmentId::new(3), 0.9));
    reference.observe(SegmentId::new(5), &fp.fingerprint(&refreshed), 0.4);
    let probe = fp.fingerprint(&segment_text(7));
    assert_eq!(
        cold.disclosing_sources(SegmentId::new(999), &probe),
        reference.disclosing_sources(SegmentId::new(999), &probe),
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn removal_of_cold_segments_tombstones_without_rewrite() {
    let dir = temp_dir("remove");
    let store = build_store(&[(1, 1), (2, 4), (3, 8), (4, 12)]);
    persist_v3(&store, &dir);
    let cold = open_cold(&dir);
    assert!(cold.remove_segment(SegmentId::new(2)));
    assert!(!cold.remove_segment(SegmentId::new(2)));
    assert_eq!(cold.segment_count(), 3);
    assert!(cold.segment_handle(SegmentId::new(2)).is_none());
    assert!(cold.oldest_segment_with(u32::MAX).is_none());
    // The file on disk is untouched; only the overlay changed.
    let reopened = open_cold(&dir);
    assert_eq!(reopened.segment_count(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn eviction_sweep_covers_cold_records() {
    let dir = temp_dir("evict");
    let specs: Vec<(u64, usize)> = (1..=10).map(|i| (i, i as usize)).collect();
    let store = build_store(&specs);
    let cutoff = store.now();
    persist_v3(&store, &dir);
    let cold = open_cold(&dir);
    // Every record is strictly older than the post-build clock, so an
    // age sweep at `cutoff` tombstones every cold record.
    let evicted = cold.evict_older_than(cutoff);
    assert_eq!(evicted, specs.len());
    assert_eq!(cold.segment_count(), 0);
    assert_eq!(cold.hash_count(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn demote_idle_shards_drains_hot_into_cold_files() {
    let dir = temp_dir("demote");
    let specs: Vec<(u64, usize)> = (1..=32).map(|i| (i, i as usize)).collect();
    let store = build_store(&specs);
    store.attach_tier(&dir).unwrap();
    // Attaching twice is an error, as is attaching over a snapshot.
    assert!(matches!(
        store.attach_tier(&dir),
        Err(PersistError::Unsupported(_))
    ));

    // Everything is idle relative to a future cutoff: the sweep demotes
    // every dirty stripe.
    let sweep = store
        .demote_idle_shards(Timestamp::new(store.now().get() + 1))
        .unwrap();
    assert!(sweep.demoted_shards > 0);
    assert_eq!(sweep.demoted_segments, specs.len());
    let stats = store.stats();
    assert_eq!(stats.cold_segments, specs.len());
    assert_eq!(stats.tier_demoted_shards, sweep.demoted_shards as u64);
    assert_eq!(stats.total_entries(), specs.len());

    // A second sweep with nothing dirty is a no-op.
    let again = store
        .demote_idle_shards(Timestamp::new(store.now().get() + 1))
        .unwrap();
    assert_eq!(again.demoted_shards, 0);

    // The directory is now a complete cold snapshot.
    let reopened = open_cold(&dir);
    assert_equivalent(&store, &reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn demotion_skips_stripes_with_fresh_hot_writes() {
    let dir = temp_dir("demote-busy");
    let fp = Fingerprinter::default();
    let store = build_store(&[(1, 1), (2, 2)]);
    let cutoff = store.now(); // strictly after segments 1 and 2
    store.attach_tier(&dir).unwrap();
    // Segment 3 lands at/after the cutoff: its stripe must stay hot.
    store.observe(SegmentId::new(3), &fp.fingerprint(&segment_text(3)), 0.5);
    let sweep = store.demote_idle_shards(cutoff).unwrap();
    let stats = store.stats();
    assert!(
        stats.cold_segments <= 2,
        "the fresh segment must not be demoted"
    );
    assert_eq!(stats.total_entries(), 3, "no record may be lost");
    assert!(sweep.demoted_segments <= 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn demotion_after_cold_open_rewrites_only_dirty_stripes() {
    let dir = temp_dir("demote-cycle");
    let fp = Fingerprinter::default();
    let specs: Vec<(u64, usize)> = (1..=24).map(|i| (i, i as usize)).collect();
    let store = build_store(&specs);
    persist_v3(&store, &dir);

    let cold = open_cold(&dir);
    // Touch one segment; only its stripe (and the hash stripes the new
    // fingerprint dirtied) should be rewritten by the sweep.
    cold.observe(SegmentId::new(7), &fp.fingerprint(&segment_text(70)), 0.3);
    let sweep = cold
        .demote_idle_shards(Timestamp::new(cold.now().get() + 1))
        .unwrap();
    assert!(sweep.demoted_shards >= 1);
    assert!(
        sweep.demoted_shards < cold.shard_count(),
        "a single write must not force a full rewrite"
    );
    // After the sweep the store is fully cold again and reopens equal.
    let reopened = open_cold(&dir);
    assert_equivalent(&cold, &reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_compacts_promotion_shadows_in_busy_stripes() {
    let dir = temp_dir("compact");
    let fp = Fingerprinter::default();
    let specs: Vec<(u64, usize)> = (1..=32).map(|i| (i, i as usize)).collect();
    let store = build_store(&specs);
    persist_v3(&store, &dir);

    let cold = open_cold(&dir);
    // The next observation stamps exactly this instant, so it lands
    // at-or-after the cutoff and keeps its stripe busy.
    let cutoff = cold.now();
    // Re-observing a cold segment promotes it: a fresh hot copy shadows
    // the cold record, which becomes a tombstone in the overlay but dead
    // bytes in the shard file.
    cold.observe(SegmentId::new(7), &fp.fingerprint(&segment_text(70)), 0.3);

    // The write landed at/after the cutoff, so demotion must skip the
    // stripe — but the sweep compacts the shadowed record out of the file
    // and reports the bytes it dropped.
    let sweep = cold.demote_idle_shards(cutoff).unwrap();
    assert!(
        sweep.compacted_shards >= 1,
        "promotion shadow must trigger a compaction rewrite: {sweep:?}"
    );
    assert!(
        sweep.reclaimed_bytes > 0,
        "dropping a superseded record must reclaim bytes: {sweep:?}"
    );

    // The live store is untouched: the hot copy still serves reads and
    // no record was lost.
    assert_eq!(cold.segment_count(), specs.len());
    let refreshed = fp.fingerprint(&segment_text(70));
    assert_eq!(
        cold.segment(SegmentId::new(7)).unwrap().hashes(),
        refreshed.distinct_hashes()
    );

    // Tombstones were consumed by the rewrite: sweeping again with the
    // same cutoff finds nothing left to compact.
    let again = cold.demote_idle_shards(cutoff).unwrap();
    assert_eq!(again.compacted_shards, 0, "{again:?}");
    assert_eq!(again.reclaimed_bytes, 0, "{again:?}");

    // Once the stripe goes idle a normal demotion folds the hot copy in,
    // and the directory round-trips the post-promotion state exactly.
    let full = cold
        .demote_idle_shards(Timestamp::new(cold.now().get() + 1))
        .unwrap();
    assert!(full.demoted_shards >= 1);
    let reopened = open_cold(&dir);
    assert_equivalent(&cold, &reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn demotion_without_tier_is_rejected() {
    let store = build_store(&[(1, 1)]);
    assert!(matches!(
        store.demote_idle_shards(Timestamp::new(u64::MAX)),
        Err(PersistError::Unsupported(_))
    ));
}

proptest! {
    /// Algorithm 1 verdicts from a cold-opened v3 snapshot are
    /// byte-identical to the hot store they were persisted from — the
    /// acceptance property pinning the mmap'd intersection path to the
    /// in-memory reference.
    #[test]
    fn cold_checks_match_hot_reference(
        specs in proptest::collection::vec((1u64..200, 0usize..16), 1..24),
        probe_seed in 0usize..16,
        mutate in proptest::collection::vec((1u64..200, 0usize..16), 0..4),
    ) {
        let dir = temp_dir(&format!("prop-{probe_seed}-{}", specs.len()));
        let fp = Fingerprinter::default();
        let hot = build_store(&specs);
        persist_v3(&hot, &dir);
        let cold = open_cold(&dir);

        let probe = fp.fingerprint(&segment_text(probe_seed));
        let target = SegmentId::new(10_000);
        let from_hot: Vec<DisclosureReport> = hot.disclosing_sources(target, &probe);
        let from_cold: Vec<DisclosureReport> = cold.disclosing_sources(target, &probe);
        prop_assert_eq!(&from_hot, &from_cold);

        // And the equivalence survives promotion: replay extra writes on
        // both sides, then compare again.
        for &(id, seed) in &mutate {
            let fingerprint = fp.fingerprint(&segment_text(seed + 7));
            hot.observe(SegmentId::new(id), &fingerprint, 0.2);
            cold.observe(SegmentId::new(id), &fingerprint, 0.2);
        }
        let from_hot: Vec<DisclosureReport> = hot.disclosing_sources(target, &probe);
        let from_cold: Vec<DisclosureReport> = cold.disclosing_sources(target, &probe);
        prop_assert_eq!(&from_hot, &from_cold);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// persist(v3) ∘ open is the identity for both tier modes.
    #[test]
    fn v3_roundtrip_is_identity(
        specs in proptest::collection::vec((1u64..200, 0usize..16), 0..24),
    ) {
        let dir = temp_dir(&format!("prop-rt-{}", specs.len()));
        let store = build_store(&specs);
        persist_v3(&store, &dir);
        let cold = open_cold(&dir);
        assert_equivalent(&store, &cold);
        let (hot, report) = StoreOpenOptions::new().open(&dir).unwrap();
        prop_assert!(report.is_complete());
        assert_equivalent(&store, &hot);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
