//! Audit trail of tag suppressions.
//!
//! Tag suppression declassifies data, so every suppression is recorded:
//! which tag, which user, their justification, and a monotonically
//! increasing sequence number (§3.1). The log is append-only.

use crate::{Tag, UserId};

/// One recorded tag suppression.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SuppressionRecord {
    sequence: u64,
    tag: Tag,
    user: UserId,
    justification: String,
}

impl SuppressionRecord {
    /// Position in the append-only log (0-based, strictly increasing).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// The suppressed tag.
    pub fn tag(&self) -> &Tag {
        &self.tag
    }

    /// The user who performed the suppression.
    pub fn user(&self) -> &UserId {
        &self.user
    }

    /// The justification the user supplied.
    pub fn justification(&self) -> &str {
        &self.justification
    }
}

/// Append-only log of [`SuppressionRecord`]s.
///
/// # Example
///
/// ```rust
/// use browserflow_tdm::{AuditLog, Tag};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut log = AuditLog::new();
/// log.record_suppression(Tag::new("interview-data")?, "alice".into(), "approved by legal".into());
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.by_user(&"alice".into()).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct AuditLog {
    records: Vec<SuppressionRecord>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a suppression record and returns its sequence number.
    pub fn record_suppression(&mut self, tag: Tag, user: UserId, justification: String) -> u64 {
        let sequence = self.records.len() as u64;
        self.records.push(SuppressionRecord {
            sequence,
            tag,
            user,
            justification,
        });
        sequence
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records in order.
    pub fn iter(&self) -> std::slice::Iter<'_, SuppressionRecord> {
        self.records.iter()
    }

    /// Records created by `user`.
    pub fn by_user<'a>(
        &'a self,
        user: &'a UserId,
    ) -> impl Iterator<Item = &'a SuppressionRecord> + 'a {
        self.records.iter().filter(move |r| &r.user == user)
    }

    /// Records suppressing `tag`.
    pub fn by_tag<'a>(&'a self, tag: &'a Tag) -> impl Iterator<Item = &'a SuppressionRecord> + 'a {
        self.records.iter().filter(move |r| &r.tag == tag)
    }

    /// Serialises the log to pretty JSON for export to external audit
    /// tooling.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.records).expect("audit records always serialise")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(name: &str) -> Tag {
        Tag::new(name).unwrap()
    }

    #[test]
    fn sequences_are_strictly_increasing() {
        let mut log = AuditLog::new();
        for i in 0..5 {
            let seq = log.record_suppression(tag("t"), "u".into(), format!("reason {i}"));
            assert_eq!(seq, i);
        }
        let seqs: Vec<u64> = log.iter().map(|r| r.sequence()).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn filters_by_user_and_tag() {
        let mut log = AuditLog::new();
        log.record_suppression(tag("a"), "alice".into(), "r1".into());
        log.record_suppression(tag("b"), "bob".into(), "r2".into());
        log.record_suppression(tag("a"), "bob".into(), "r3".into());
        assert_eq!(log.by_user(&"bob".into()).count(), 2);
        assert_eq!(log.by_tag(&tag("a")).count(), 2);
        assert_eq!(log.by_tag(&tag("c")).count(), 0);
    }

    #[test]
    fn json_export_contains_justifications() {
        let mut log = AuditLog::new();
        log.record_suppression(tag("a"), "alice".into(), "approved by legal".into());
        let json = log.to_json();
        assert!(json.contains("approved by legal"));
        let parsed: Vec<SuppressionRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 1);
    }
}
