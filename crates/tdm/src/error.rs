//! Error types of the TDM crate.

use crate::{ServiceId, Tag};
use std::fmt;

/// Error creating a [`Tag`](crate::Tag).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TagError {
    /// The tag name was empty.
    Empty,
    /// The tag name contained characters other than lowercase
    /// alphanumerics, `-` and `_`.
    InvalidCharacter {
        /// The offending character.
        character: char,
    },
}

impl fmt::Display for TagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagError::Empty => write!(f, "tag name must not be empty"),
            TagError::InvalidCharacter { character } => write!(
                f,
                "tag name may only contain lowercase alphanumerics, '-' and '_' (found {character:?})"
            ),
        }
    }
}

impl std::error::Error for TagError {}

/// Error manipulating a [`Policy`](crate::Policy).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// No service with the given id is registered.
    UnknownService {
        /// The id that failed to resolve.
        id: ServiceId,
    },
    /// A service with the given id is already registered.
    DuplicateService {
        /// The id that collided.
        id: ServiceId,
    },
    /// A custom tag with this name was already allocated.
    DuplicateTag {
        /// The tag that collided.
        tag: Tag,
    },
    /// The acting user does not own the custom tag they tried to manage.
    NotTagOwner {
        /// The tag in question.
        tag: Tag,
    },
    /// The tag is not a custom tag (e.g. an administrator-assigned default
    /// tag), so users cannot manage its service privileges.
    NotCustomTag {
        /// The tag in question.
        tag: Tag,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownService { id } => write!(f, "unknown service {id}"),
            PolicyError::DuplicateService { id } => {
                write!(f, "service {id} is already registered")
            }
            PolicyError::DuplicateTag { tag } => {
                write!(f, "custom tag {tag} is already allocated")
            }
            PolicyError::NotTagOwner { tag } => {
                write!(f, "acting user does not own custom tag {tag}")
            }
            PolicyError::NotCustomTag { tag } => {
                write!(f, "tag {tag} is not a user-allocated custom tag")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(TagError::Empty),
            Box::new(TagError::InvalidCharacter { character: '!' }),
            Box::new(PolicyError::UnknownService {
                id: ServiceId::from("x"),
            }),
        ];
        for e in errors {
            let message = e.to_string();
            assert!(message.starts_with(char::is_lowercase), "{message}");
            assert!(!message.ends_with('.'), "{message}");
        }
    }
}
