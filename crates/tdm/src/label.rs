//! Labels: tag sets and text segment labels.

use crate::{Tag, UserId};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An immutable-ish set of tags, used for service privilege (`Lp`) and
/// confidentiality (`Lc`) labels.
///
/// # Example
///
/// ```rust
/// use browserflow_tdm::{Tag, TagSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ti = Tag::new("interview-data")?;
/// let tw = Tag::new("wiki-data")?;
/// let lp = TagSet::from_iter([ti.clone(), tw.clone()]);
/// assert!(TagSet::from_iter([ti]).is_subset(&lp));
/// # Ok(())
/// # }
/// ```
#[derive(
    Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct TagSet(BTreeSet<Tag>);

impl TagSet {
    /// Creates an empty tag set (the label of untrusted external services).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty (public data / fully untrusted service).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `tag` is a member.
    pub fn contains(&self, tag: &Tag) -> bool {
        self.0.contains(tag)
    }

    /// Inserts a tag; returns whether it was newly added.
    pub fn insert(&mut self, tag: Tag) -> bool {
        self.0.insert(tag)
    }

    /// Removes a tag; returns whether it was present.
    pub fn remove(&mut self, tag: &Tag) -> bool {
        self.0.remove(tag)
    }

    /// Whether every tag of `self` is in `other` (`self ⊆ other`).
    pub fn is_subset(&self, other: &TagSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Tags of `self` that are missing from `other`.
    pub fn difference(&self, other: &TagSet) -> TagSet {
        TagSet(self.0.difference(&other.0).cloned().collect())
    }

    /// The union of the two sets.
    pub fn union(&self, other: &TagSet) -> TagSet {
        TagSet(self.0.union(&other.0).cloned().collect())
    }

    /// Iterates over the tags in order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, Tag> {
        self.0.iter()
    }
}

impl FromIterator<Tag> for TagSet {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        Self(iter.into_iter().collect())
    }
}

impl Extend<Tag> for TagSet {
    fn extend<I: IntoIterator<Item = Tag>>(&mut self, iter: I) {
        self.0.extend(iter)
    }
}

impl<'a> IntoIterator for &'a TagSet {
    type Item = &'a Tag;
    type IntoIter = std::collections::btree_set::Iter<'a, Tag>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for TagSet {
    type Item = Tag;
    type IntoIter = std::collections::btree_set::IntoIter<Tag>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl fmt::Display for TagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, tag) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{tag}")?;
        }
        write!(f, "}}")
    }
}

/// How a tag came to be part of a segment label (§3.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum TagOrigin {
    /// Assigned from a service's confidentiality label `Lc`, or added
    /// explicitly by a user. Explicit tags are the ones that propagate to
    /// other segments when disclosure is detected.
    Explicit,
    /// Copied from a source segment's explicit tags after the segment was
    /// found to disclose that source. Implicit tags mark the segment as
    /// *not* the authoritative source of the sensitive information and do
    /// **not** propagate further, preventing outdated-tag build-up
    /// (Figure 6).
    Implicit,
}

/// Per-tag state inside a [`SegmentLabel`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct TagState {
    origin: TagOrigin,
    /// Present when a user suppressed the tag. The tag remains attached
    /// for auditability but is ignored in subset comparisons.
    suppressed_by: Option<UserId>,
}

/// The label of a text segment: a set of tags with per-tag origin
/// (explicit/implicit) and suppression state.
///
/// # Example
///
/// ```rust
/// use browserflow_tdm::{SegmentLabel, Tag, TagSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ti = Tag::new("interview-data")?;
/// let mut label = SegmentLabel::from_confidentiality(&TagSet::from_iter([ti.clone()]));
/// assert!(label.effective_tags().contains(&ti));
///
/// // A user may suppress the tag to declassify the text (audited).
/// label.suppress(&ti, &"alice".into());
/// assert!(label.effective_tags().is_empty());
/// assert!(label.suppressed_tags().contains(&ti));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SegmentLabel {
    tags: BTreeMap<Tag, TagState>,
}

impl SegmentLabel {
    /// Creates an empty label (public text).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the label of a segment first observed in a service with
    /// confidentiality label `lc`: every tag of `lc` becomes an explicit
    /// tag (§3.1, step 1 of Figure 3).
    pub fn from_confidentiality(lc: &TagSet) -> Self {
        let mut label = Self::new();
        for tag in lc {
            label.add_explicit(tag.clone());
        }
        label
    }

    /// Whether the label carries no tags at all.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Adds an explicit tag (user-assigned or from `Lc`). Upgrades an
    /// implicit tag of the same name to explicit; clears any suppression.
    pub fn add_explicit(&mut self, tag: Tag) {
        self.tags.insert(
            tag,
            TagState {
                origin: TagOrigin::Explicit,
                suppressed_by: None,
            },
        );
    }

    /// Adds an implicit tag (copied from a disclosure source). Never
    /// downgrades an existing explicit tag and never un-suppresses.
    pub fn add_implicit(&mut self, tag: Tag) {
        if let Entry::Vacant(entry) = self.tags.entry(tag) {
            entry.insert(TagState {
                origin: TagOrigin::Implicit,
                suppressed_by: None,
            });
        }
    }

    /// Suppresses `tag`: it stays attached (with the suppressing user
    /// recorded) but is ignored by [`SegmentLabel::effective_tags`].
    ///
    /// Returns `true` if the tag was present and not already suppressed.
    /// Suppression is case-by-case: it applies to this label value only, so
    /// a fresh copy of the original source text starts unsuppressed again
    /// (§3.1 "User tag suppression").
    pub fn suppress(&mut self, tag: &Tag, user: &UserId) -> bool {
        match self.tags.get_mut(tag) {
            Some(state) if state.suppressed_by.is_none() => {
                state.suppressed_by = Some(user.clone());
                true
            }
            _ => false,
        }
    }

    /// The tags that count for policy decisions: all attached tags that are
    /// not suppressed.
    pub fn effective_tags(&self) -> TagSet {
        self.tags
            .iter()
            .filter(|(_, state)| state.suppressed_by.is_none())
            .map(|(tag, _)| tag.clone())
            .collect()
    }

    /// The explicit, unsuppressed tags — the ones that propagate to other
    /// segments as implicit tags when disclosure is detected (§3.2).
    pub fn explicit_tags(&self) -> TagSet {
        self.tags
            .iter()
            .filter(|(_, state)| {
                state.origin == TagOrigin::Explicit && state.suppressed_by.is_none()
            })
            .map(|(tag, _)| tag.clone())
            .collect()
    }

    /// The implicit, unsuppressed tags.
    pub fn implicit_tags(&self) -> TagSet {
        self.tags
            .iter()
            .filter(|(_, state)| {
                state.origin == TagOrigin::Implicit && state.suppressed_by.is_none()
            })
            .map(|(tag, _)| tag.clone())
            .collect()
    }

    /// Tags currently suppressed on this label.
    pub fn suppressed_tags(&self) -> TagSet {
        self.tags
            .iter()
            .filter(|(_, state)| state.suppressed_by.is_some())
            .map(|(tag, _)| tag.clone())
            .collect()
    }

    /// Who suppressed `tag`, if anyone.
    pub fn suppressor(&self, tag: &Tag) -> Option<&UserId> {
        self.tags.get(tag).and_then(|s| s.suppressed_by.as_ref())
    }

    /// The origin of `tag` on this label, if attached.
    pub fn origin(&self, tag: &Tag) -> Option<TagOrigin> {
        self.tags.get(tag).map(|s| s.origin)
    }

    /// Absorbs a disclosure source's label: the *explicit* tags of
    /// `source` are added to `self` as *implicit* tags (§3.2).
    ///
    /// Implicit tags of the source do not propagate — the source is not the
    /// authoritative origin of that information, which is exactly what
    /// prevents the outdated-tag false positive of Figure 6.
    pub fn absorb_source(&mut self, source: &SegmentLabel) {
        for tag in source.explicit_tags() {
            self.add_implicit(tag);
        }
    }

    /// Whether this label permits release to a service with privilege
    /// label `lp` (`effective_tags ⊆ Lp`).
    pub fn permits_release_to(&self, lp: &TagSet) -> bool {
        self.effective_tags().is_subset(lp)
    }
}

impl fmt::Display for SegmentLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (tag, state)) in self.tags.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{tag}")?;
            if state.origin == TagOrigin::Implicit {
                write!(f, "(implicit)")?;
            }
            if state.suppressed_by.is_some() {
                write!(f, "(suppressed)")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(name: &str) -> Tag {
        Tag::new(name).unwrap()
    }

    #[test]
    fn from_confidentiality_assigns_explicit_tags() {
        let lc = TagSet::from_iter([tag("ti"), tag("tw")]);
        let label = SegmentLabel::from_confidentiality(&lc);
        assert_eq!(label.explicit_tags(), lc);
        assert!(label.implicit_tags().is_empty());
    }

    #[test]
    fn subset_release_check() {
        let label = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("ti")]));
        assert!(label.permits_release_to(&TagSet::from_iter([tag("ti"), tag("tw")])));
        assert!(!label.permits_release_to(&TagSet::from_iter([tag("tw")])));
        assert!(!label.permits_release_to(&TagSet::new()));
        assert!(SegmentLabel::new().permits_release_to(&TagSet::new()));
    }

    #[test]
    fn suppression_ignored_in_subset_comparison() {
        // Figure 4: suppressing ti permits upload to the Wiki.
        let mut label = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("ti")]));
        let wiki_lp = TagSet::from_iter([tag("tw")]);
        assert!(!label.permits_release_to(&wiki_lp));
        assert!(label.suppress(&tag("ti"), &"alice".into()));
        assert!(label.permits_release_to(&wiki_lp));
        // The suppressed tag remains attached for auditing.
        assert!(label.suppressed_tags().contains(&tag("ti")));
        assert_eq!(label.suppressor(&tag("ti")), Some(&"alice".into()));
    }

    #[test]
    fn suppressing_absent_or_already_suppressed_tag_is_noop() {
        let mut label = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("ti")]));
        assert!(!label.suppress(&tag("missing"), &"alice".into()));
        assert!(label.suppress(&tag("ti"), &"alice".into()));
        assert!(!label.suppress(&tag("ti"), &"bob".into()));
        // First suppressor is kept.
        assert_eq!(label.suppressor(&tag("ti")), Some(&"alice".into()));
    }

    #[test]
    fn absorb_source_copies_explicit_as_implicit() {
        // Figure 6 step 1: B absorbs A's {ti} as implicit.
        let source = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("ti")]));
        let mut dest = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("tw")]));
        dest.absorb_source(&source);
        assert_eq!(dest.explicit_tags(), TagSet::from_iter([tag("tw")]));
        assert_eq!(dest.implicit_tags(), TagSet::from_iter([tag("ti")]));
        assert_eq!(
            dest.effective_tags(),
            TagSet::from_iter([tag("ti"), tag("tw")])
        );
    }

    #[test]
    fn implicit_tags_do_not_propagate_further() {
        // Figure 6 step 3: C absorbs B (which has implicit ti); C must only
        // receive B's explicit tw, not the outdated ti.
        let source_a = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("ti")]));
        let mut b = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("tw")]));
        b.absorb_source(&source_a);
        let mut c = SegmentLabel::new();
        c.absorb_source(&b);
        assert_eq!(c.effective_tags(), TagSet::from_iter([tag("tw")]));
        assert!(!c.effective_tags().contains(&tag("ti")));
    }

    #[test]
    fn explicit_wins_over_implicit() {
        let mut label = SegmentLabel::new();
        label.add_implicit(tag("t"));
        assert_eq!(label.origin(&tag("t")), Some(TagOrigin::Implicit));
        label.add_explicit(tag("t"));
        assert_eq!(label.origin(&tag("t")), Some(TagOrigin::Explicit));
        // add_implicit never downgrades.
        label.add_implicit(tag("t"));
        assert_eq!(label.origin(&tag("t")), Some(TagOrigin::Explicit));
    }

    #[test]
    fn display_marks_states() {
        let mut label = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("ti")]));
        label.add_implicit(tag("tw"));
        label.suppress(&tag("ti"), &"alice".into());
        let text = label.to_string();
        assert!(text.contains("#ti(suppressed)"));
        assert!(text.contains("#tw(implicit)"));
    }

    #[test]
    fn tagset_display() {
        let set = TagSet::from_iter([tag("a"), tag("b")]);
        assert_eq!(set.to_string(), "{#a, #b}");
        assert_eq!(TagSet::new().to_string(), "{}");
    }

    #[test]
    fn serde_roundtrip() {
        let mut label = SegmentLabel::from_confidentiality(&TagSet::from_iter([tag("ti")]));
        label.add_implicit(tag("tw"));
        label.suppress(&tag("ti"), &"alice".into());
        let json = serde_json::to_string(&label).unwrap();
        let back: SegmentLabel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, label);
    }
}
