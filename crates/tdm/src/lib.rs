//! The **Text Disclosure Model** (TDM) of BrowserFlow (§3 of the paper).
//!
//! The TDM is a decentralised label model for reasoning about text
//! disclosure between cloud services:
//!
//! - A **tag** ([`Tag`]) is a unique human-readable string expressing one
//!   concern about data disclosure (e.g. `interview-data`).
//! - A **label** is a set of tags. Each cloud service carries two labels: a
//!   *privilege* label `Lp` (the highest level of confidential data the
//!   service may receive) and a *confidentiality* label `Lc` (the default
//!   confidentiality of data created within it). See [`Service`].
//! - **Text segments** carry a [`SegmentLabel`] whose tags are *explicit*
//!   (assigned from `Lc` or by users) or *implicit* (copied from a source
//!   segment after disclosure was detected), and may be *suppressed*
//!   (declassified by a user, leaving an audit trail).
//! - A segment with effective tag set `Li` may be released in plain text to
//!   a service with privilege label `Lp` only if `Li ⊆ Lp`
//!   ([`Policy::check_release`]).
//!
//! # Example: the paper's interview scenario (Figure 3)
//!
//! ```rust
//! use browserflow_tdm::{Policy, SegmentLabel, Service, Tag, TagSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ti = Tag::new("interview-data")?;
//! let tw = Tag::new("wiki-data")?;
//!
//! let mut policy = Policy::new();
//! policy.register(Service::new("itool", "Interview Tool")
//!     .with_privilege(TagSet::from_iter([ti.clone()]))
//!     .with_confidentiality(TagSet::from_iter([ti.clone()])))?;
//! policy.register(Service::new("wiki", "Internal Wiki")
//!     .with_privilege(TagSet::from_iter([tw.clone()]))
//!     .with_confidentiality(TagSet::from_iter([tw.clone()])))?;
//! policy.register(Service::new("gdocs", "Google Docs"))?; // Lp = Lc = {}
//!
//! // Text created in the Interview Tool gets its Lc as explicit tags.
//! let label = policy.initial_label(&"itool".into())?;
//! assert!(label.effective_tags().contains(&ti));
//!
//! // Releasing it to the Wiki violates the policy ({ti} ⊄ {tw})...
//! assert!(!policy.check_release(&label, &"wiki".into())?.is_permitted());
//! // ...and so does releasing it to Google Docs ({ti} ⊄ {}).
//! assert!(!policy.check_release(&label, &"gdocs".into())?.is_permitted());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod audit;
mod error;
mod label;
mod policy;
mod service;
mod tag;

pub use audit::{AuditLog, SuppressionRecord};
pub use error::{PolicyError, TagError};
pub use label::{SegmentLabel, TagOrigin, TagSet};
pub use policy::{Policy, ReleaseDecision};
pub use service::{Service, ServiceId};
pub use tag::Tag;

/// Identifies the user performing an auditable action (tag suppression,
/// custom tag allocation).
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct UserId(String);

impl UserId {
    /// Creates a user id.
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }

    /// The identifier as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for UserId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}
