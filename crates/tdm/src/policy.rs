//! The enterprise-wide data disclosure policy.

use crate::{AuditLog, PolicyError, SegmentLabel, Service, ServiceId, Tag, TagSet, UserId};
use std::collections::BTreeMap;

/// The outcome of checking whether a text segment may be released to a
/// service ([`Policy::check_release`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReleaseDecision {
    /// `Li ⊆ Lp`: the upload may proceed in plain text.
    Permitted,
    /// The segment carries tags the service is not privileged to receive.
    /// BrowserFlow warns the user, who may suppress tags or let the
    /// middleware block/encrypt the transfer.
    Violation {
        /// The effective tags missing from the service's privilege label.
        missing: TagSet,
    },
}

impl ReleaseDecision {
    /// Whether the release is permitted.
    pub fn is_permitted(&self) -> bool {
        matches!(self, ReleaseDecision::Permitted)
    }

    /// The missing tags of a violation (empty set when permitted).
    pub fn missing_tags(&self) -> TagSet {
        match self {
            ReleaseDecision::Permitted => TagSet::new(),
            ReleaseDecision::Violation { missing } => missing.clone(),
        }
    }
}

/// Record of who allocated a custom tag (§3.1 "Custom tag allocation").
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct CustomTag {
    owner: UserId,
}

/// An enterprise-wide data disclosure policy: the registry of services with
/// their labels, user-allocated custom tags, and the audit log of
/// declassifications.
///
/// Administrators set the policy once ([`Policy::register`]); users refine
/// it by allocating custom tags ([`Policy::allocate_custom_tag`]) and
/// granting/revoking service privileges for tags they own.
///
/// # Example
///
/// ```rust
/// use browserflow_tdm::{Policy, Service, Tag, TagSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tw = Tag::new("wiki-data")?;
/// let mut policy = Policy::new();
/// policy.register(Service::new("wiki", "Internal Wiki")
///     .with_privilege(TagSet::from_iter([tw.clone()]))
///     .with_confidentiality(TagSet::from_iter([tw.clone()])))?;
///
/// let label = policy.initial_label(&"wiki".into())?;
/// assert!(policy.check_release(&label, &"wiki".into())?.is_permitted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Policy {
    services: BTreeMap<ServiceId, Service>,
    custom_tags: BTreeMap<Tag, CustomTag>,
    #[serde(default)]
    audit: AuditLog,
}

impl Policy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::DuplicateService`] if a service with the same
    /// id is already registered.
    pub fn register(&mut self, service: Service) -> Result<(), PolicyError> {
        if self.services.contains_key(service.id()) {
            return Err(PolicyError::DuplicateService {
                id: service.id().clone(),
            });
        }
        self.services.insert(service.id().clone(), service);
        Ok(())
    }

    /// Looks up a service.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownService`] if no service with this id
    /// is registered.
    pub fn service(&self, id: &ServiceId) -> Result<&Service, PolicyError> {
        self.services
            .get(id)
            .ok_or_else(|| PolicyError::UnknownService { id: id.clone() })
    }

    /// Iterates over all registered services in id order.
    pub fn services(&self) -> impl Iterator<Item = &Service> {
        self.services.values()
    }

    /// The label assigned to a text segment first observed in `service`:
    /// the service's confidentiality label as explicit tags (§3.1).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownService`] for unregistered services.
    pub fn initial_label(&self, service: &ServiceId) -> Result<SegmentLabel, PolicyError> {
        Ok(SegmentLabel::from_confidentiality(
            self.service(service)?.confidentiality(),
        ))
    }

    /// Checks whether a segment with `label` may be released in plain text
    /// to `service`: `effective_tags(label) ⊆ Lp(service)`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownService`] for unregistered services.
    pub fn check_release(
        &self,
        label: &SegmentLabel,
        service: &ServiceId,
    ) -> Result<ReleaseDecision, PolicyError> {
        let lp = self.service(service)?.privilege();
        let effective = label.effective_tags();
        if effective.is_subset(lp) {
            Ok(ReleaseDecision::Permitted)
        } else {
            Ok(ReleaseDecision::Violation {
                missing: effective.difference(lp),
            })
        }
    }

    /// Suppresses `tag` on `label` on behalf of `user`, recording the
    /// declassification in the audit log with its `justification` (§3.1
    /// "User tag suppression").
    ///
    /// Returns whether the tag was present and newly suppressed. The
    /// suppressed tag remains attached to the label so that future audits
    /// can reconstruct what was declassified, by whom, and why.
    pub fn suppress_tag(
        &mut self,
        label: &mut SegmentLabel,
        tag: &Tag,
        user: &UserId,
        justification: impl Into<String>,
    ) -> bool {
        let suppressed = label.suppress(tag, user);
        if suppressed {
            self.audit
                .record_suppression(tag.clone(), user.clone(), justification.into());
        }
        suppressed
    }

    /// Allocates a new custom tag owned by `user` (§3.1 "Custom tag
    /// allocation").
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::DuplicateTag`] if the tag was already
    /// allocated.
    pub fn allocate_custom_tag(&mut self, tag: Tag, user: &UserId) -> Result<(), PolicyError> {
        if self.custom_tags.contains_key(&tag) {
            return Err(PolicyError::DuplicateTag { tag });
        }
        self.custom_tags.insert(
            tag,
            CustomTag {
                owner: user.clone(),
            },
        );
        Ok(())
    }

    /// Whether `tag` is a user-allocated custom tag.
    pub fn is_custom_tag(&self, tag: &Tag) -> bool {
        self.custom_tags.contains_key(tag)
    }

    /// The owner of a custom tag, if it exists.
    pub fn custom_tag_owner(&self, tag: &Tag) -> Option<&UserId> {
        self.custom_tags.get(tag).map(|c| &c.owner)
    }

    /// Grants `service` the privilege to receive data tagged with the
    /// custom tag `tag`, on behalf of the tag's owner.
    ///
    /// The TDM also calls this automatically for every service that already
    /// stores a copy of a segment newly protected with `tag` (Figure 5
    /// step 4); that path is driven by the engine, which knows which
    /// services store the segment.
    ///
    /// # Errors
    ///
    /// - [`PolicyError::NotCustomTag`] if `tag` was never allocated;
    /// - [`PolicyError::NotTagOwner`] if `user` does not own it;
    /// - [`PolicyError::UnknownService`] if the service is unknown.
    pub fn grant_custom_privilege(
        &mut self,
        service: &ServiceId,
        tag: &Tag,
        user: &UserId,
    ) -> Result<bool, PolicyError> {
        self.check_tag_owner(tag, user)?;
        self.grant_privilege_unchecked(service, tag)
    }

    /// Revokes a custom-tag privilege from a service, on behalf of the
    /// tag's owner.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Policy::grant_custom_privilege`].
    pub fn revoke_custom_privilege(
        &mut self,
        service: &ServiceId,
        tag: &Tag,
        user: &UserId,
    ) -> Result<bool, PolicyError> {
        self.check_tag_owner(tag, user)?;
        let service =
            self.services
                .get_mut(service)
                .ok_or_else(|| PolicyError::UnknownService {
                    id: service.clone(),
                })?;
        Ok(service.revoke_privilege(tag))
    }

    /// Grants a privilege without ownership checks.
    ///
    /// Used by the TDM enforcement of Figure 5 step 4: any service that
    /// already stores a segment labelled with a new custom tag must receive
    /// that tag in its privilege label, so re-observing the same text never
    /// becomes a violation.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownService`] if the service is unknown.
    pub fn grant_privilege_unchecked(
        &mut self,
        service: &ServiceId,
        tag: &Tag,
    ) -> Result<bool, PolicyError> {
        let service =
            self.services
                .get_mut(service)
                .ok_or_else(|| PolicyError::UnknownService {
                    id: service.clone(),
                })?;
        Ok(service.grant_privilege(tag.clone()))
    }

    /// Replaces a registered service's privilege label `Lp`
    /// (administrator operation).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownService`] if no such service exists.
    pub fn set_service_privilege(&mut self, id: &ServiceId, lp: TagSet) -> Result<(), PolicyError> {
        let service = self
            .services
            .get_mut(id)
            .ok_or_else(|| PolicyError::UnknownService { id: id.clone() })?;
        *service = service.clone().with_privilege(lp);
        Ok(())
    }

    /// Replaces a registered service's confidentiality label `Lc`
    /// (administrator operation).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownService`] if no such service exists.
    pub fn set_service_confidentiality(
        &mut self,
        id: &ServiceId,
        lc: TagSet,
    ) -> Result<(), PolicyError> {
        let service = self
            .services
            .get_mut(id)
            .ok_or_else(|| PolicyError::UnknownService { id: id.clone() })?;
        *service = service.clone().with_confidentiality(lc);
        Ok(())
    }

    /// Unregisters a service (administrator operation). Existing segment
    /// labels are unaffected — text that originated in the service keeps
    /// its tags. Returns the removed service.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownService`] if no such service exists.
    pub fn unregister(&mut self, id: &ServiceId) -> Result<Service, PolicyError> {
        self.services
            .remove(id)
            .ok_or_else(|| PolicyError::UnknownService { id: id.clone() })
    }

    /// The audit log of tag suppressions.
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    fn check_tag_owner(&self, tag: &Tag, user: &UserId) -> Result<(), PolicyError> {
        match self.custom_tags.get(tag) {
            None => Err(PolicyError::NotCustomTag { tag: tag.clone() }),
            Some(custom) if &custom.owner != user => {
                Err(PolicyError::NotTagOwner { tag: tag.clone() })
            }
            Some(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(name: &str) -> Tag {
        Tag::new(name).unwrap()
    }

    /// Builds the three-service policy of Figures 1 and 3.
    fn figure3_policy() -> Policy {
        let mut policy = Policy::new();
        policy
            .register(
                Service::new("itool", "Interview Tool")
                    .with_privilege(TagSet::from_iter([tag("ti")]))
                    .with_confidentiality(TagSet::from_iter([tag("ti")])),
            )
            .unwrap();
        policy
            .register(
                Service::new("wiki", "Internal Wiki")
                    .with_privilege(TagSet::from_iter([tag("tw")]))
                    .with_confidentiality(TagSet::from_iter([tag("tw")])),
            )
            .unwrap();
        policy
            .register(Service::new("gdocs", "Google Docs"))
            .unwrap();
        policy
    }

    #[test]
    fn figure3_flow() {
        let policy = figure3_policy();
        // Step 1: text created in the Interview Tool gets {ti}.
        let l1 = policy.initial_label(&"itool".into()).unwrap();
        assert_eq!(l1.effective_tags(), TagSet::from_iter([tag("ti")]));
        // Step 2: {ti} ⊄ {tw} — the Wiki must not receive it.
        let decision = policy.check_release(&l1, &"wiki".into()).unwrap();
        assert_eq!(
            decision,
            ReleaseDecision::Violation {
                missing: TagSet::from_iter([tag("ti")])
            }
        );
        // Step 3: text created in Google Docs is public and flows anywhere.
        let l3 = policy.initial_label(&"gdocs".into()).unwrap();
        assert!(policy
            .check_release(&l3, &"wiki".into())
            .unwrap()
            .is_permitted());
        assert!(policy
            .check_release(&l3, &"itool".into())
            .unwrap()
            .is_permitted());
    }

    #[test]
    fn figure4_suppression_permits_upload_and_audits() {
        let mut policy = figure3_policy();
        let mut label = policy.initial_label(&"itool".into()).unwrap();
        assert!(!policy
            .check_release(&label, &"wiki".into())
            .unwrap()
            .is_permitted());
        assert!(policy.suppress_tag(
            &mut label,
            &tag("ti"),
            &"alice".into(),
            "sharing sanitised interview guidelines"
        ));
        assert!(policy
            .check_release(&label, &"wiki".into())
            .unwrap()
            .is_permitted());
        // Audit trail captured user and justification.
        let records: Vec<_> = policy.audit_log().iter().collect();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].user(), &UserId::new("alice"));
        assert_eq!(records[0].tag(), &tag("ti"));
        assert!(records[0].justification().contains("sanitised"));
    }

    #[test]
    fn suppression_is_case_by_case() {
        // A fresh label derived from the same source is NOT suppressed.
        let mut policy = figure3_policy();
        let mut first = policy.initial_label(&"itool".into()).unwrap();
        policy.suppress_tag(&mut first, &tag("ti"), &"alice".into(), "one-off");
        let second = policy.initial_label(&"itool".into()).unwrap();
        assert!(!policy
            .check_release(&second, &"wiki".into())
            .unwrap()
            .is_permitted());
    }

    #[test]
    fn figure5_custom_tags_restrict_propagation() {
        let mut policy = figure3_policy();
        // Admin extends the Interview Tool to accept wiki data.
        policy
            .grant_privilege_unchecked(&"itool".into(), &tag("tw"))
            .unwrap();
        let label = policy.initial_label(&"wiki".into()).unwrap();
        assert!(policy
            .check_release(&label, &"itool".into())
            .unwrap()
            .is_permitted());

        // Step 1: a user allocates tn and adds it to the segment label.
        let user = UserId::new("bob");
        policy.allocate_custom_tag(tag("tn"), &user).unwrap();
        let mut label = label;
        label.add_explicit(tag("tn"));
        // Step 2: the Wiki's Lp is updated to reflect it can process tn.
        policy
            .grant_custom_privilege(&"wiki".into(), &tag("tn"), &user)
            .unwrap();
        // Step 3: the Interview Tool did not receive tn, so the text may
        // not propagate there any more.
        assert!(!policy
            .check_release(&label, &"itool".into())
            .unwrap()
            .is_permitted());
        assert!(policy
            .check_release(&label, &"wiki".into())
            .unwrap()
            .is_permitted());
    }

    #[test]
    fn custom_tag_ownership_is_enforced() {
        let mut policy = figure3_policy();
        let owner = UserId::new("bob");
        let other = UserId::new("mallory");
        policy.allocate_custom_tag(tag("tn"), &owner).unwrap();
        assert_eq!(
            policy.allocate_custom_tag(tag("tn"), &other),
            Err(PolicyError::DuplicateTag { tag: tag("tn") })
        );
        assert_eq!(
            policy.grant_custom_privilege(&"wiki".into(), &tag("tn"), &other),
            Err(PolicyError::NotTagOwner { tag: tag("tn") })
        );
        assert_eq!(
            policy.grant_custom_privilege(&"wiki".into(), &tag("ti"), &owner),
            Err(PolicyError::NotCustomTag { tag: tag("ti") })
        );
        assert!(policy
            .grant_custom_privilege(&"wiki".into(), &tag("tn"), &owner)
            .unwrap());
        assert!(policy
            .revoke_custom_privilege(&"wiki".into(), &tag("tn"), &owner)
            .unwrap());
    }

    #[test]
    fn unknown_and_duplicate_services() {
        let mut policy = figure3_policy();
        assert!(matches!(
            policy.service(&"nope".into()),
            Err(PolicyError::UnknownService { .. })
        ));
        assert!(matches!(
            policy.initial_label(&"nope".into()),
            Err(PolicyError::UnknownService { .. })
        ));
        assert!(matches!(
            policy.register(Service::new("wiki", "Shadow Wiki")),
            Err(PolicyError::DuplicateService { .. })
        ));
    }

    #[test]
    fn admin_label_updates_change_decisions() {
        let mut policy = figure3_policy();
        let label = policy.initial_label(&"itool".into()).unwrap();
        assert!(!policy
            .check_release(&label, &"wiki".into())
            .unwrap()
            .is_permitted());
        // Admin widens the Wiki's privilege label.
        policy
            .set_service_privilege(&"wiki".into(), TagSet::from_iter([tag("tw"), tag("ti")]))
            .unwrap();
        assert!(policy
            .check_release(&label, &"wiki".into())
            .unwrap()
            .is_permitted());
        // Admin changes the Interview Tool's Lc; new text gets the new tag.
        policy
            .set_service_confidentiality(&"itool".into(), TagSet::from_iter([tag("ti2")]))
            .unwrap();
        let fresh = policy.initial_label(&"itool".into()).unwrap();
        assert!(fresh.effective_tags().contains(&tag("ti2")));
        assert!(matches!(
            policy.set_service_privilege(&"nope".into(), TagSet::new()),
            Err(PolicyError::UnknownService { .. })
        ));
    }

    #[test]
    fn unregister_removes_the_service_only() {
        let mut policy = figure3_policy();
        let label = policy.initial_label(&"itool".into()).unwrap();
        let removed = policy.unregister(&"itool".into()).unwrap();
        assert_eq!(removed.name(), "Interview Tool");
        assert!(matches!(
            policy.initial_label(&"itool".into()),
            Err(PolicyError::UnknownService { .. })
        ));
        // Existing labels keep enforcing against remaining services.
        assert!(!policy
            .check_release(&label, &"wiki".into())
            .unwrap()
            .is_permitted());
        assert!(matches!(
            policy.unregister(&"itool".into()),
            Err(PolicyError::UnknownService { .. })
        ));
    }

    #[test]
    fn policy_serde_roundtrip() {
        let mut policy = figure3_policy();
        let mut label = policy.initial_label(&"itool".into()).unwrap();
        policy.suppress_tag(&mut label, &tag("ti"), &"alice".into(), "why");
        let json = serde_json::to_string(&policy).unwrap();
        let back: Policy = serde_json::from_str(&json).unwrap();
        assert_eq!(back.services().count(), 3);
        assert_eq!(back.audit_log().len(), 1);
        assert!(back
            .check_release(&label, &"wiki".into())
            .unwrap()
            .is_permitted());
    }
}
