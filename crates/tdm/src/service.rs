//! Cloud services and their labels.

use crate::{Tag, TagSet};
use std::fmt;

/// Identifies a cloud service, typically by web origin
/// (e.g. `https://docs.google.com`) or a short administrative name.
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ServiceId(String);

impl ServiceId {
    /// Creates a service id.
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }

    /// The identifier as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for ServiceId {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

impl From<&ServiceId> for ServiceId {
    fn from(s: &ServiceId) -> Self {
        s.clone()
    }
}

/// A cloud service with its two administrator-assigned labels (§3.1):
///
/// - the **privilege label** `Lp`: the highest level of confidential data
///   the service is trusted to receive, and
/// - the **confidentiality label** `Lc`: the default confidentiality of
///   data created within the service.
///
/// An untrusted external service (e.g. Google Docs) carries empty labels:
/// it may receive only public data, and data created in it is public.
///
/// # Example
///
/// ```rust
/// use browserflow_tdm::{Service, Tag, TagSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ti = Tag::new("interview-data")?;
/// let itool = Service::new("itool", "Interview Tool")
///     .with_privilege(TagSet::from_iter([ti.clone()]))
///     .with_confidentiality(TagSet::from_iter([ti.clone()]));
/// assert!(itool.privilege().contains(&ti));
///
/// let gdocs = Service::new("gdocs", "Google Docs");
/// assert!(gdocs.privilege().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Service {
    id: ServiceId,
    name: String,
    privilege: TagSet,
    confidentiality: TagSet,
}

impl Service {
    /// Creates a service with empty labels (fully untrusted defaults).
    pub fn new(id: impl Into<ServiceId>, name: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            name: name.into(),
            privilege: TagSet::new(),
            confidentiality: TagSet::new(),
        }
    }

    /// Sets the privilege label `Lp` (builder style).
    pub fn with_privilege(mut self, lp: TagSet) -> Self {
        self.privilege = lp;
        self
    }

    /// Sets the confidentiality label `Lc` (builder style).
    pub fn with_confidentiality(mut self, lc: TagSet) -> Self {
        self.confidentiality = lc;
        self
    }

    /// The service id.
    pub fn id(&self) -> &ServiceId {
        &self.id
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The privilege label `Lp`.
    pub fn privilege(&self) -> &TagSet {
        &self.privilege
    }

    /// The confidentiality label `Lc`.
    pub fn confidentiality(&self) -> &TagSet {
        &self.confidentiality
    }

    /// Grants the service the privilege to receive data tagged `tag`
    /// (adds `tag` to `Lp`). Returns whether it was newly added.
    pub fn grant_privilege(&mut self, tag: Tag) -> bool {
        self.privilege.insert(tag)
    }

    /// Revokes the privilege to receive data tagged `tag` (removes it
    /// from `Lp`). Returns whether it was present.
    pub fn revoke_privilege(&mut self, tag: &Tag) -> bool {
        self.privilege.remove(tag)
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] Lp={} Lc={}",
            self.name, self.id, self.privilege, self.confidentiality
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(name: &str) -> Tag {
        Tag::new(name).unwrap()
    }

    #[test]
    fn new_service_is_untrusted() {
        let service = Service::new("gdocs", "Google Docs");
        assert!(service.privilege().is_empty());
        assert!(service.confidentiality().is_empty());
    }

    #[test]
    fn grant_and_revoke_privilege() {
        let mut service = Service::new("wiki", "Internal Wiki");
        assert!(service.grant_privilege(tag("tn")));
        assert!(!service.grant_privilege(tag("tn")));
        assert!(service.privilege().contains(&tag("tn")));
        assert!(service.revoke_privilege(&tag("tn")));
        assert!(!service.revoke_privilege(&tag("tn")));
    }

    #[test]
    fn display_shows_both_labels() {
        let service = Service::new("itool", "Interview Tool")
            .with_privilege(TagSet::from_iter([tag("ti")]))
            .with_confidentiality(TagSet::from_iter([tag("ti")]));
        let text = service.to_string();
        assert!(text.contains("Interview Tool"));
        assert!(text.contains("Lp={#ti}"));
        assert!(text.contains("Lc={#ti}"));
    }

    #[test]
    fn serde_roundtrip() {
        let service =
            Service::new("itool", "Interview Tool").with_privilege(TagSet::from_iter([tag("ti")]));
        let json = serde_json::to_string(&service).unwrap();
        let back: Service = serde_json::from_str(&json).unwrap();
        assert_eq!(back, service);
    }
}
