//! Security tags.

use crate::TagError;
use std::fmt;
use std::sync::Arc;

/// A security tag: a unique, human-readable string expressing a separate
/// concern about data disclosure to cloud services (§3.1).
///
/// Tags may name broad categories of sensitive data (`interview-data`) or
/// be created for specific data (`product-announcement-x`). Tags are cheap
/// to clone (reference-counted) and ordered, so they can live in
/// [`TagSet`](crate::TagSet)s.
///
/// # Example
///
/// ```rust
/// use browserflow_tdm::Tag;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tag = Tag::new("interview-data")?;
/// assert_eq!(tag.name(), "interview-data");
/// assert!(Tag::new("No Spaces Allowed").is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(Arc<str>);

impl Tag {
    /// Creates a tag from its name.
    ///
    /// # Errors
    ///
    /// Returns [`TagError::Empty`] for an empty name and
    /// [`TagError::InvalidCharacter`] if the name contains anything other
    /// than lowercase ASCII alphanumerics, `-` and `_`.
    pub fn new(name: impl AsRef<str>) -> Result<Self, TagError> {
        let name = name.as_ref();
        if name.is_empty() {
            return Err(TagError::Empty);
        }
        for character in name.chars() {
            let ok = character.is_ascii_lowercase()
                || character.is_ascii_digit()
                || character == '-'
                || character == '_';
            if !ok {
                return Err(TagError::InvalidCharacter { character });
            }
        }
        Ok(Self(Arc::from(name)))
    }

    /// The tag's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl AsRef<str> for Tag {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl serde::Serialize for Tag {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> serde::Deserialize<'de> for Tag {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let name = String::deserialize(deserializer)?;
        Tag::new(&name).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        for name in ["interview-data", "tag_1", "a", "product-announcement-x"] {
            assert!(Tag::new(name).is_ok(), "{name} should be valid");
        }
    }

    #[test]
    fn invalid_names() {
        assert_eq!(Tag::new(""), Err(TagError::Empty));
        assert_eq!(
            Tag::new("Has Space"),
            Err(TagError::InvalidCharacter { character: 'H' })
        );
        assert_eq!(
            Tag::new("uppercase-X"),
            Err(TagError::InvalidCharacter { character: 'X' })
        );
        assert!(Tag::new("emoji-🔒").is_err());
    }

    #[test]
    fn display_prefixes_hash() {
        assert_eq!(Tag::new("wiki").unwrap().to_string(), "#wiki");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tag::new("alpha").unwrap();
        let b = Tag::new("beta").unwrap();
        assert!(a < b);
    }

    #[test]
    fn serde_roundtrip_validates() {
        let tag = Tag::new("interview-data").unwrap();
        let json = serde_json::to_string(&tag).unwrap();
        assert_eq!(json, "\"interview-data\"");
        let back: Tag = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tag);
        // Deserialising an invalid name fails.
        assert!(serde_json::from_str::<Tag>("\"BAD NAME\"").is_err());
    }
}
