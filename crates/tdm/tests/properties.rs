//! Property-based tests of TDM label-model invariants.

use browserflow_tdm::{SegmentLabel, Tag, TagSet, UserId};
use proptest::prelude::*;

fn tag_strategy() -> impl Strategy<Value = Tag> {
    "[a-z][a-z0-9-]{0,8}".prop_map(|s| Tag::new(&s).unwrap())
}

fn tagset_strategy() -> impl Strategy<Value = TagSet> {
    proptest::collection::vec(tag_strategy(), 0..6).prop_map(TagSet::from_iter)
}

proptest! {
    #[test]
    fn subset_is_reflexive_and_union_is_upper_bound(a in tagset_strategy(), b in tagset_strategy()) {
        prop_assert!(a.is_subset(&a));
        let u = a.union(&b);
        prop_assert!(a.is_subset(&u));
        prop_assert!(b.is_subset(&u));
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn difference_and_subset_agree(a in tagset_strategy(), b in tagset_strategy()) {
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
    }

    #[test]
    fn release_decision_matches_subset_semantics(li in tagset_strategy(), lp in tagset_strategy()) {
        let label = SegmentLabel::from_confidentiality(&li);
        prop_assert_eq!(label.permits_release_to(&lp), li.is_subset(&lp));
    }

    /// Suppressing every tag always permits release anywhere (full
    /// declassification), regardless of the privilege label.
    #[test]
    fn suppressing_all_tags_declassifies(li in tagset_strategy(), lp in tagset_strategy()) {
        let mut label = SegmentLabel::from_confidentiality(&li);
        let user = UserId::new("u");
        for tag in li.iter() {
            label.suppress(tag, &user);
        }
        prop_assert!(label.permits_release_to(&lp));
        // All original tags are still attached (audit requirement).
        prop_assert_eq!(label.suppressed_tags(), li);
    }

    /// absorb_source only ever *adds* restrictions to the destination:
    /// anything that was forbidden stays forbidden.
    #[test]
    fn absorb_source_is_monotone(
        src in tagset_strategy(),
        dst in tagset_strategy(),
        lp in tagset_strategy(),
    ) {
        let source = SegmentLabel::from_confidentiality(&src);
        let mut dest = SegmentLabel::from_confidentiality(&dst);
        let before = dest.permits_release_to(&lp);
        dest.absorb_source(&source);
        let after = dest.permits_release_to(&lp);
        if !before {
            prop_assert!(!after);
        }
        // And the effective tags are exactly dst ∪ src.
        prop_assert_eq!(dest.effective_tags(), dst.union(&src));
    }

    /// Two-hop propagation never resurrects tags the middle segment holds
    /// only implicitly (the Figure 6 guarantee).
    #[test]
    fn implicit_tags_never_propagate_two_hops(
        a in tagset_strategy(),
        b in tagset_strategy(),
    ) {
        let label_a = SegmentLabel::from_confidentiality(&a);
        let mut label_b = SegmentLabel::from_confidentiality(&b);
        label_b.absorb_source(&label_a);
        let mut label_c = SegmentLabel::new();
        label_c.absorb_source(&label_b);
        // C receives only B's explicit tags.
        prop_assert_eq!(label_c.effective_tags(), b.clone());
        for tag in a.difference(&b).iter() {
            prop_assert!(!label_c.effective_tags().contains(tag));
        }
    }

    /// Serde roundtrips preserve label semantics.
    #[test]
    fn label_serde_roundtrip(li in tagset_strategy(), sup in tagset_strategy()) {
        let mut label = SegmentLabel::from_confidentiality(&li);
        let user = UserId::new("u");
        for tag in sup.iter() {
            label.suppress(tag, &user);
        }
        let json = serde_json::to_string(&label).unwrap();
        let back: SegmentLabel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.effective_tags(), label.effective_tags());
        prop_assert_eq!(back.suppressed_tags(), label.suppressed_tags());
    }
}
