//! Multi-hop TDM scenario tests at the pure label-model level: long
//! propagation chains, suppression interacting with custom tags, and the
//! lattice behaviour of effective labels.

use browserflow_tdm::{Policy, SegmentLabel, Service, Tag, TagSet, UserId};

fn tag(name: &str) -> Tag {
    Tag::new(name).unwrap()
}

/// A five-service enterprise: three internal tiers and two external.
fn enterprise() -> Policy {
    let mut policy = Policy::new();
    for (id, name, tags) in [
        ("hr", "HR Portal", vec!["hr"]),
        ("fin", "Finance ERP", vec!["fin"]),
        ("wiki", "Internal Wiki", vec!["wiki"]),
        ("gdocs", "Google Docs", vec![]),
        ("forum", "External Forum", vec![]),
    ] {
        let set: TagSet = tags.into_iter().map(tag).collect();
        policy
            .register(
                Service::new(id, name)
                    .with_privilege(set.clone())
                    .with_confidentiality(set),
            )
            .unwrap();
    }
    policy
}

#[test]
fn three_hop_chain_keeps_only_the_previous_hops_explicit_tags() {
    let policy = enterprise();
    // hr -> wiki -> gdocs: a chain of disclosures.
    let hr_label = policy.initial_label(&"hr".into()).unwrap();
    let mut wiki_label = policy.initial_label(&"wiki".into()).unwrap();
    wiki_label.absorb_source(&hr_label);
    // Hop 1: the wiki segment carries hr implicitly.
    assert_eq!(
        wiki_label.effective_tags(),
        TagSet::from_iter([tag("hr"), tag("wiki")])
    );
    let mut gdocs_label = policy.initial_label(&"gdocs".into()).unwrap();
    gdocs_label.absorb_source(&wiki_label);
    // Hop 2: only the wiki's EXPLICIT tag travels; hr has aged out.
    assert_eq!(
        gdocs_label.effective_tags(),
        TagSet::from_iter([tag("wiki")])
    );
    let mut forum_label = policy.initial_label(&"forum".into()).unwrap();
    forum_label.absorb_source(&gdocs_label);
    // Hop 3: gdocs has no explicit tags of its own -> nothing travels.
    assert!(forum_label.effective_tags().is_empty());
}

#[test]
fn absorbing_multiple_sources_unions_their_explicit_tags() {
    let policy = enterprise();
    let hr = policy.initial_label(&"hr".into()).unwrap();
    let fin = policy.initial_label(&"fin".into()).unwrap();
    let mut merged = policy.initial_label(&"wiki".into()).unwrap();
    merged.absorb_source(&hr);
    merged.absorb_source(&fin);
    assert_eq!(
        merged.effective_tags(),
        TagSet::from_iter([tag("hr"), tag("fin"), tag("wiki")])
    );
    // Release requires the union of privileges.
    for (dest, ok) in [("hr", false), ("fin", false), ("wiki", false)] {
        assert_eq!(
            policy
                .check_release(&merged, &dest.into())
                .unwrap()
                .is_permitted(),
            ok,
            "{dest}"
        );
    }
    // A service privileged for all three may receive it.
    let mut policy = policy;
    policy
        .register(
            Service::new("vault", "Records Vault").with_privilege(TagSet::from_iter([
                tag("hr"),
                tag("fin"),
                tag("wiki"),
            ])),
        )
        .unwrap();
    assert!(policy
        .check_release(&merged, &"vault".into())
        .unwrap()
        .is_permitted());
}

#[test]
fn suppression_of_implicit_tags_is_audited_like_explicit_ones() {
    let mut policy = enterprise();
    let hr = policy.initial_label(&"hr".into()).unwrap();
    let mut wiki_label = policy.initial_label(&"wiki".into()).unwrap();
    wiki_label.absorb_source(&hr);
    // The implicit hr tag can be suppressed just like an explicit one.
    assert!(policy.suppress_tag(&mut wiki_label, &tag("hr"), &UserId::new("dana"), "cleared"));
    assert_eq!(
        wiki_label.effective_tags(),
        TagSet::from_iter([tag("wiki")])
    );
    assert_eq!(policy.audit_log().len(), 1);
    assert_eq!(policy.audit_log().iter().next().unwrap().tag(), &tag("hr"));
    // Suppressing it twice is a no-op and not double-audited.
    assert!(!policy.suppress_tag(&mut wiki_label, &tag("hr"), &UserId::new("erin"), "again"));
    assert_eq!(policy.audit_log().len(), 1);
}

#[test]
fn custom_tags_survive_absorption_as_implicit() {
    let mut policy = enterprise();
    let owner = UserId::new("carol");
    policy
        .allocate_custom_tag(tag("project-q"), &owner)
        .unwrap();
    let mut source = policy.initial_label(&"wiki".into()).unwrap();
    source.add_explicit(tag("project-q"));
    // A segment disclosing the protected source picks up the custom tag.
    let mut derived = policy.initial_label(&"gdocs".into()).unwrap();
    derived.absorb_source(&source);
    assert!(derived.effective_tags().contains(&tag("project-q")));
    // But it does not propagate a second hop.
    let mut second = policy.initial_label(&"forum".into()).unwrap();
    second.absorb_source(&derived);
    assert!(!second.effective_tags().contains(&tag("project-q")));
}

#[test]
fn suppressed_tags_are_revived_by_re_adding_explicitly() {
    let policy = enterprise();
    let mut label = policy.initial_label(&"hr".into()).unwrap();
    label.suppress(&tag("hr"), &UserId::new("dana"));
    assert!(label.effective_tags().is_empty());
    // A user (or the lookup module) re-asserting the tag clears the
    // suppression: classification wins over an old declassification.
    label.add_explicit(tag("hr"));
    assert_eq!(label.effective_tags(), TagSet::from_iter([tag("hr")]));
    assert!(label.suppressed_tags().is_empty());
}

#[test]
fn release_monotonicity_wider_privilege_never_blocks_more() {
    let policy = enterprise();
    let mut label = policy.initial_label(&"hr".into()).unwrap();
    label.add_explicit(tag("extra"));
    let narrow = TagSet::from_iter([tag("hr")]);
    let wide = TagSet::from_iter([tag("hr"), tag("extra"), tag("unrelated")]);
    assert!(!label.permits_release_to(&narrow));
    assert!(label.permits_release_to(&wide));
    // And the empty label flows anywhere.
    assert!(SegmentLabel::new().permits_release_to(&TagSet::new()));
    assert!(SegmentLabel::new().permits_release_to(&narrow));
}
