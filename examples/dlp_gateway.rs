//! Form-based interception and encrypt-before-upload: an employee posts to
//! an external, form-based forum. Under `EnforcementMode::Encrypt` the
//! plug-in rewrites violating field values into sealed ciphertext instead
//! of blocking, so the workflow completes without disclosing plaintext —
//! and the exact-match DLP baseline shows why fingerprinting is needed at
//! all.
//!
//! ```sh
//! cargo run -p browserflow-examples --bin dlp_gateway
//! ```

use browserflow::baseline::ExactMatchDlp;
use browserflow::plugin::Plugin;
use browserflow::{BrowserFlow, EnforcementMode};
use browserflow_browser::services::WikiApp;
use browserflow_browser::Browser;
use browserflow_store::StoreKey;
use browserflow_tdm::{Service, Tag, TagSet};

const FORUM: &str = "https://forum.external";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tf = Tag::new("finance")?;
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Encrypt)
        .store_key(StoreKey::from_bytes([7u8; 32]))
        .service(
            Service::new("erp", "Finance ERP")
                .with_privilege(TagSet::from_iter([tf.clone()]))
                .with_confidentiality(TagSet::from_iter([tf])),
        )
        .service(Service::new("forum", "External Forum"))
        .build()?;

    let secret = "Quarterly revenue grew eighteen percent to forty-two million \
                  with gross margin improving to sixty-one percent ahead of the \
                  earnings call next Tuesday.";

    // Register the sensitive paragraph as ERP content.
    let plugin = Plugin::new(flow);
    plugin.bind_origin(FORUM, "forum", "post");
    plugin
        .state()
        .read()
        .index_paragraph(&"erp".into(), "q3-report", 0, secret)?;

    let mut browser = Browser::new();
    plugin.install(&mut browser);

    // The employee drafts a forum post quoting the report (lightly edited).
    let tab = browser.open_tab(FORUM);
    let forum = WikiApp::attach(&mut browser, tab);
    let quoted = format!("did you hear? {}", secret.to_lowercase());
    forum.set_title(&mut browser, "big news");
    forum.set_content(&mut browser, &quoted);

    println!("-- submitting the form --");
    let result = forum.save(&mut browser);
    println!("delivered: {}", result.is_delivered());

    let backend = browser.backend(FORUM);
    let upload = &backend.uploads()[0];
    println!("body as transmitted:\n  {}", truncate(&upload.body, 96));
    assert!(backend.saw_text("bf-sealed:"));
    assert!(!backend.saw_text("forty-two million"));
    println!(
        "plaintext leaked: {}",
        backend.saw_text("forty-two million")
    );

    // Why imprecise tracking? An exact-match DLP registers the report but
    // misses the edited quote entirely.
    let mut exact = ExactMatchDlp::new();
    exact.register(secret);
    println!(
        "\nexact-match DLP catches verbatim copy:  {}",
        exact.is_registered(secret)
    );
    println!(
        "exact-match DLP catches edited quote:   {}",
        exact.is_registered(&quoted)
    );
    println!("BrowserFlow caught the edited quote:    true (see sealed upload above)");
    Ok(())
}

fn truncate(text: &str, max: usize) -> String {
    if text.chars().count() <= max {
        text.to_string()
    } else {
        let cut: String = text.chars().take(max).collect();
        format!("{cut}…")
    }
}
