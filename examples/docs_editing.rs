//! Live editing in a simulated Google-Docs-like service with the
//! BrowserFlow plug-in installed: mutation observers feed the policy
//! lookup, the XHR hook enforces, and flagged paragraphs turn "red"
//! (the `data-bf-flagged` attribute, standing in for Figure 2's UI).
//!
//! ```sh
//! cargo run -p browserflow-examples --bin docs_editing
//! ```

use browserflow::plugin::Plugin;
use browserflow::{AsyncDecider, BrowserFlow, DeciderError, EnforcementMode, TrySubmitError};
use browserflow_browser::services::{static_site, DocsApp};
use browserflow_browser::Browser;
use browserflow_tdm::{Service, Tag, TagSet};

const WIKI: &str = "https://wiki.internal";
const DOCS: &str = "https://docs.example.com";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tw = Tag::new("wiki-data")?;
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone()]))
                .with_confidentiality(TagSet::from_iter([tw])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()?;

    let plugin = Plugin::new(flow);
    plugin.bind_origin(WIKI, "wiki", "candidate-page");
    plugin.bind_origin(DOCS, "gdocs", "draft");

    let mut browser = Browser::new();
    plugin.install(&mut browser);

    // A wiki page with sensitive content loads in tab 1; the plug-in
    // extracts its main text Readability-style and registers it.
    let secret = "The candidate evaluation rubric weighs systems depth at forty \
                  percent, communication at thirty percent, and coding fluency \
                  at thirty percent; never share numeric scores externally.";
    let page = static_site::article_page("Evaluation rubric", &[secret.to_string()]);
    let wiki_tab = browser.open_tab_with_html(WIKI, &page);
    let observed = plugin.observe_page(&browser, wiki_tab);
    println!("wiki page loaded, {observed} paragraph(s) registered");

    // The user edits a Google Docs draft in tab 2.
    let docs_tab = browser.open_tab(DOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);

    println!("\n-- typing harmless notes --");
    docs.create_paragraph(&mut browser);
    let result = docs.type_text(&mut browser, 0, "Agenda: hiring sync, Thursday 10:00.");
    println!("sync delivered: {}", result.is_delivered());

    println!("\n-- pasting the rubric from the wiki --");
    browser.copy(secret);
    docs.create_paragraph(&mut browser);
    let pasted = browser.paste().expect("clipboard holds the rubric");
    let result = docs.type_text(&mut browser, 1, &pasted);
    println!("sync delivered: {}", result.is_delivered());
    let node = docs.paragraph_node(&browser, 1);
    println!(
        "paragraph flagged red: {}",
        browser
            .tab(docs_tab)
            .document()
            .attr(node, "data-bf-flagged")
            == Some("true")
    );

    // Figure 2: render the editor as the user sees it — flagged
    // paragraphs get the red background.
    println!("\n-- the editor as rendered (Figure 2) --");
    print!("{}", render_editor(&browser, docs_tab, &docs));

    println!("\n-- what actually reached the Google Docs backend --");
    for upload in browser.backend(DOCS).uploads() {
        println!("  [{:?}] {}", upload.kind, truncate(&upload.body, 64));
    }
    assert!(!browser.backend(DOCS).saw_text("rubric"));

    let state = plugin.state();
    let state = state.read();
    println!("\nwarnings: {}", state.warnings().len());
    for warning in state.warnings() {
        println!(
            "  editing {} towards {} — {} violation(s)",
            warning.segment,
            warning.destination,
            warning.violations.len()
        );
    }
    drop(state);

    // §6.2: the per-keystroke path runs through the asynchronous pipeline.
    // A keystroke storm on one paragraph coalesces — only the newest
    // pending check runs; stale ones resolve as Superseded without
    // touching the engine.
    println!("\n-- async keystroke storm through the coalescing pipeline --");
    let tw = Tag::new("wiki-data")?;
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone()]))
                .with_confidentiality(TagSet::from_iter([tw])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()?;
    flow.observe_paragraph(&"wiki".into(), "candidate-page", 0, secret)?;
    let decider = AsyncDecider::spawn(flow);
    let mut pending = Vec::new();
    for end in (1..=secret.len()).filter(|&e| secret.is_char_boundary(e)) {
        // One check per keystroke, exactly like the editor integration.
        match decider.submit_keystroke("gdocs", "draft", 0, &secret[..end]) {
            Ok(receipt) => pending.push(receipt),
            // Backpressure: drop the check; a newer keystroke re-covers
            // the same paragraph slot.
            Err(TrySubmitError::QueueFull) => {}
            Err(TrySubmitError::Closed) => break,
        }
    }
    let (mut decided, mut superseded) = (0u32, 0u32);
    let mut last_action = None;
    for receipt in pending {
        match receipt.wait() {
            Ok(timed) => {
                decided += 1;
                last_action = Some(timed.decision.action);
            }
            Err(DeciderError::Superseded) => superseded += 1,
            Err(e) => println!("pipeline error: {e}"),
        }
    }
    let stats = decider.stats();
    println!(
        "keystrokes accepted: {}, decided: {decided}, coalesced away: {superseded}",
        stats.submitted
    );
    println!("final decision for the fully-typed paragraph: {last_action:?}");
    println!(
        "pipeline stats: coalesced={} rejected={} mean_batch={:.2} queue_depth={}",
        stats.coalesced,
        stats.rejected,
        stats.mean_batch(),
        stats.queue_depth
    );
    decider.shutdown()?;
    Ok(())
}

/// Renders the docs editor as a terminal mock-up of Figure 2: flagged
/// paragraphs on a red background (ANSI), clean ones plain.
fn render_editor(browser: &Browser, tab: browserflow_browser::TabId, docs: &DocsApp) -> String {
    let document = browser.tab(tab).document();
    let mut out = String::new();
    out.push_str("  ┌──────────────────────────────────────────────────┐\n");
    for index in 0..docs.paragraph_count(browser) {
        let node = docs.paragraph_node(browser, index);
        let flagged = document.attr(node, "data-bf-flagged") == Some("true");
        let text = truncate(&document.text_content(node), 44);
        if flagged {
            out.push_str(&format!(
                "  │ \x1b[41;97m{text:<48}\x1b[0m │  ⚠ discloses tracked text\n"
            ));
        } else {
            out.push_str(&format!("  │ {text:<48} │\n"));
        }
    }
    out.push_str("  └──────────────────────────────────────────────────┘\n");
    out
}

fn truncate(text: &str, max: usize) -> String {
    if text.chars().count() <= max {
        text.to_string()
    } else {
        let cut: String = text.chars().take(max).collect();
        format!("{cut}…")
    }
}
