//! The paper's running example (Figures 1 and 3–6): an interviewer works
//! with the Interview Tool, the internal Wiki and Google Docs, and the
//! Text Disclosure Model governs every flow — including user tag
//! suppression with an audit trail, custom tags, and the implicit-tag rule
//! that stops outdated tags from propagating.
//!
//! ```sh
//! cargo run -p browserflow-examples --bin interview_workflow
//! ```

use browserflow::{BrowserFlow, CheckRequest, DocKey, EnforcementMode, SegmentKey, UploadAction};
use browserflow_tdm::{Service, Tag, TagSet, UserId};

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ti = Tag::new("interview-data")?;
    let tw = Tag::new("wiki-data")?;

    let mut flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([ti.clone(), tw.clone()]))
                .with_confidentiality(TagSet::from_iter([ti.clone()])),
        )
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone(), ti.clone()]))
                .with_confidentiality(TagSet::from_iter([tw.clone()])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()?;
    let alice = UserId::new("alice");

    // ------------------------------------------------------------------
    banner("Figure 3: default tag assignment");
    let evaluation = "Candidate 4711 communicated clearly, solved the systems design \
                      problem with a clean sharded architecture, but struggled with \
                      the consensus follow-ups; recommend a second technical round.";
    flow.observe_paragraph(&"itool".into(), "eval-4711", 0, evaluation)?;
    println!(
        "evaluation written in Interview Tool; label = {}",
        flow.segment_label(&SegmentKey::paragraph(DocKey::new("itool", "eval-4711"), 0))
            .unwrap()
    );

    let to_gdocs = flow.check_one(&CheckRequest::paragraph("gdocs", "notes", 0, evaluation))?;
    println!("copy evaluation -> Google Docs: {:?}", to_gdocs.action);
    assert_eq!(to_gdocs.action, UploadAction::Block);

    // ------------------------------------------------------------------
    banner("Figure 4: tag suppression declassifies, with an audit trail");
    let guidelines = "Our interviewing guidelines: always start with a warm-up \
                      question, calibrate scores against the rubric, and write the \
                      feedback within twenty-four hours of the interview.";
    flow.observe_paragraph(&"wiki".into(), "guidelines", 0, guidelines)?;
    let blocked = flow.check_one(&CheckRequest::paragraph(
        "gdocs",
        "shared-doc",
        0,
        guidelines,
    ))?;
    println!("copy guidelines -> Google Docs: {:?}", blocked.action);

    let key = SegmentKey::paragraph(DocKey::new("wiki", "guidelines"), 0);
    flow.suppress_tag(
        &key,
        &tw,
        &alice,
        "sanitised guidelines approved for candidates",
    )?;
    let allowed = flow.check_one(&CheckRequest::paragraph(
        "gdocs",
        "shared-doc",
        0,
        guidelines,
    ))?;
    println!("after alice suppresses {tw}: {:?}", allowed.action);
    assert_eq!(allowed.action, UploadAction::Allow);
    for record in flow.policy().audit_log().iter() {
        println!(
            "  audit[{}]: {} suppressed {} — \"{}\"",
            record.sequence(),
            record.user(),
            record.tag(),
            record.justification()
        );
    }

    // ------------------------------------------------------------------
    banner("Figure 5: custom tags make propagation more restrictive");
    let reorg = "Draft plan for the platform team reorganisation, to be shared \
                 with directors only after the all-hands announcement.";
    flow.observe_paragraph(&"wiki".into(), "reorg", 0, reorg)?;
    // Without a custom tag, the Interview Tool may receive wiki data.
    let before = flow.check_one(&CheckRequest::paragraph("itool", "scratch", 0, reorg))?;
    println!(
        "copy reorg plan -> Interview Tool (before tn): {:?}",
        before.action
    );

    let tn = Tag::new("reorg-plan")?;
    flow.protect_with_custom_tag(
        &SegmentKey::paragraph(DocKey::new("wiki", "reorg"), 0),
        tn.clone(),
        &alice,
    )?;
    let after = flow.check_one(&CheckRequest::paragraph("itool", "scratch", 1, reorg))?;
    println!(
        "copy reorg plan -> Interview Tool (after tn):  {:?}",
        after.action
    );
    assert_eq!(after.action, UploadAction::Block);
    let wiki_again = flow.check_one(&CheckRequest::paragraph("wiki", "reorg-copy", 0, reorg))?;
    println!(
        "copy reorg plan -> Wiki (Lp auto-updated):     {:?}",
        wiki_again.action
    );
    assert_eq!(wiki_again.action, UploadAction::Allow);

    // ------------------------------------------------------------------
    banner("Figure 6: implicit tags stop outdated-tag propagation");
    let own_wiki_text = "The wiki howto explains the deployment runbooks, paging \
                         rotations and escalation policies for the storage team.";
    // Wiki paragraph B starts as evaluation + wiki text: it absorbs ti
    // implicitly because it discloses the Interview Tool evaluation.
    let combined = format!("{evaluation} {own_wiki_text}");
    let status = flow.observe_paragraph(&"wiki".into(), "memo", 0, &combined)?;
    println!("B = evaluation + wiki text; label = {}", status.label);

    // B is edited until it no longer resembles the evaluation.
    let status = flow.observe_paragraph(&"wiki".into(), "memo", 0, own_wiki_text)?;
    println!("B after rewrite; label = {}", status.label);

    // Copying B to Google Docs now only violates tw — ti has aged out.
    let decision = flow.check_one(&CheckRequest::paragraph(
        "gdocs",
        "draft2",
        0,
        own_wiki_text,
    ))?;
    println!("copy rewritten B -> Google Docs: {:?}", decision.action);
    for violation in &decision.violations {
        println!(
            "  violates: {} (missing {})",
            violation.source, violation.missing_tags
        );
        assert!(!violation.missing_tags.contains(&ti));
    }
    println!(
        "\nwarnings recorded this session: {}",
        flow.warnings().len()
    );
    Ok(())
}
