//! Persistence: BrowserFlow state survives a browser restart, always
//! encrypted at rest (§4.4).
//!
//! The middleware's full state — policy with its audit log, segment
//! labels, both fingerprint stores, registered short secrets — is sealed
//! under the store key, written to disk, and reloaded into a fresh
//! instance that makes identical decisions. The written file can also be
//! inspected with `bfctl state <file> --key <hex>`.
//!
//! ```sh
//! cargo run -p browserflow-examples --bin persistence
//! ```

use browserflow::{BrowserFlow, CheckRequest, EnforcementMode, UploadAction};
use browserflow_store::{SealedBytes, StoreKey};
use browserflow_tdm::{Service, Tag, TagSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key_bytes = [0x42u8; 32];
    let handbook = "Expense claims above five hundred euros require written approval \
                    from a director before booking; below that, manager approval in \
                    the travel tool suffices.\n\nSeverance terms for the reorganisation \
                    are strictly confidential until the works council has been heard.";

    // --- Session 1: set up, index content, register a secret, save -------
    let state_path = std::env::temp_dir().join("browserflow-state.bin");
    {
        let th = Tag::new("hr-internal")?;
        let mut flow = BrowserFlow::builder()
            .mode(EnforcementMode::Block)
            .store_key(StoreKey::from_bytes(key_bytes))
            .service(
                Service::new("hr", "HR Portal")
                    .with_privilege(TagSet::from_iter([th.clone()]))
                    .with_confidentiality(TagSet::from_iter([th])),
            )
            .service(Service::new("gdocs", "Google Docs"))
            .build()?;

        let indexed = flow.index_text_document(&"hr".into(), "handbook", handbook)?;
        flow.register_short_secret(&"hr".into(), "payroll-api-key", "Pk#77!x2")?;
        println!("session 1: indexed {indexed} paragraphs + 1 short secret");

        let decision = flow.check_one(&CheckRequest::paragraph("gdocs", "draft", 0, handbook))?;
        println!(
            "session 1: pasting the handbook into Google Docs -> {:?}",
            decision.action
        );

        let sealed = flow.export_sealed();
        std::fs::write(&state_path, sealed.to_bytes())?;
        println!(
            "session 1: state sealed to {} ({} bytes, ciphertext only)",
            state_path.display(),
            sealed.len()
        );
    }

    // --- Session 2 (after a "restart"): reload and keep enforcing --------
    {
        let bytes = std::fs::read(&state_path)?;
        let sealed = SealedBytes::from_bytes(&bytes)?;
        let flow = BrowserFlow::import_sealed(StoreKey::from_bytes(key_bytes), &sealed)?;
        println!(
            "\nsession 2: restored {} paragraphs, {} documents, {} hashes, {} secret(s)",
            flow.engine().paragraph_count(),
            flow.engine().document_count(),
            flow.engine().paragraph_hash_count(),
            flow.short_secret_count()
        );

        // The restored instance blocks the same leak...
        let severance = handbook.split("\n\n").nth(1).unwrap();
        let decision =
            flow.check_one(&CheckRequest::paragraph("gdocs", "new-draft", 0, severance))?;
        println!(
            "session 2: pasting the severance paragraph -> {:?}",
            decision.action
        );
        assert_eq!(decision.action, UploadAction::Block);

        // ...including the short secret.
        let decision = flow.check_one(&CheckRequest::paragraph(
            "gdocs",
            "new-draft",
            1,
            "token pk 77 x2 works",
        ))?;
        println!(
            "session 2: leaking the payroll key -> {:?}",
            decision.action
        );
        assert_eq!(decision.action, UploadAction::Block);

        // And a wrong key cannot open the file at all.
        let wrong = BrowserFlow::import_sealed(StoreKey::from_bytes([0u8; 32]), &sealed);
        println!(
            "session 2: opening with the wrong key -> {}",
            wrong.is_err()
        );

        // --- Sharded directory form: torn-write-safe persistence ---------
        // Each fingerprint-store shard is its own sealed, atomically
        // written file; a torn write loses one shard, not everything.
        let state_dir = std::env::temp_dir().join("browserflow-state-dir");
        flow.persist_to_dir(&state_dir)?;
        let (reloaded, report) =
            BrowserFlow::load_from_dir(StoreKey::from_bytes(key_bytes), &state_dir)?;
        println!(
            "\nsession 2: sharded directory reload -> {} paragraphs, \
             paragraph shards: {}, document shards: {}",
            reloaded.engine().paragraph_count(),
            report.paragraphs,
            report.documents
        );
        assert!(report.is_complete());
        std::fs::remove_dir_all(&state_dir).ok();

        // --- Tiered directory form: mmap'd cold restarts ------------------
        // Fingerprint shards are written as alignment-safe v3 files that
        // the next start validates and maps in place instead of decoding —
        // restart cost becomes checksum-bound, not decode-bound. Shard
        // files are plaintext in this form (mapped bytes cannot be
        // ciphertext); only the policy metadata stays sealed, so prefer
        // `persist_to_dir` when fingerprints themselves must be encrypted
        // at rest.
        let tiered_dir = std::env::temp_dir().join("browserflow-state-tiered");
        flow.persist_tiered_to_dir(&tiered_dir)?;
        let (tiered, _) = BrowserFlow::load_from_dir(StoreKey::from_bytes(key_bytes), &tiered_dir)?;
        let stats = tiered.engine().paragraph_store().stats();
        println!(
            "\nsession 2: tiered reload -> {} paragraphs, {}/{} shards cold \
             ({} mmap'd), {} segments served from mapped files",
            tiered.engine().paragraph_count(),
            stats.cold_shards,
            stats.shard_count,
            stats.cold_mapped_shards,
            stats.cold_segments
        );
        assert!(stats.cold_shards > 0);

        // Cold records answer identically: the severance leak still blocks.
        let decision = tiered.check_one(&CheckRequest::paragraph(
            "gdocs",
            "cold-draft",
            0,
            severance,
        ))?;
        println!(
            "session 2: severance paragraph against the cold tier -> {:?}",
            decision.action
        );
        assert_eq!(decision.action, UploadAction::Block);
        std::fs::remove_dir_all(&tiered_dir).ok();
    }

    std::fs::remove_file(&state_path).ok();
    println!(
        "\ninspect saved states offline with: bfctl state <file> --key {}",
        "42".repeat(32)
    );
    Ok(())
}
