//! Quickstart: fingerprint two texts, measure disclosure, and run one
//! policy check through the middleware.
//!
//! ```sh
//! cargo run -p browserflow-examples --bin quickstart
//! ```

use browserflow::{BrowserFlow, CheckRequest, EnforcementMode, UploadAction};
use browserflow_fingerprint::Fingerprinter;
use browserflow_tdm::{Service, Tag, TagSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Imprecise tracking: fingerprints and containment ------------
    let fp = Fingerprinter::default(); // 15-char n-grams, window 30

    let memo = "The acquisition of Initech will be announced on March 1st at a \
                press event in Zurich; until then this information is strictly \
                need-to-know within the corporate development team.";
    let leaked = format!("hey! fyi — {} (don't tell anyone)", memo.to_lowercase());
    let unrelated = "Minutes of the gardening club: we will plant tulips along \
                     the east fence and daffodils around the pond in April.";

    let memo_print = fp.fingerprint(memo);
    println!("memo fingerprint: {} hashes", memo_print.len());
    println!(
        "disclosure towards the leak:     {:.2}",
        memo_print.containment_in(&fp.fingerprint(&leaked))
    );
    println!(
        "disclosure towards unrelated:    {:.2}",
        memo_print.containment_in(&fp.fingerprint(unrelated))
    );

    // --- 2. The Text Disclosure Model ------------------------------------
    let tc = Tag::new("corp-dev")?;
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("intranet", "Corp-Dev Intranet")
                .with_privilege(TagSet::from_iter([tc.clone()]))
                .with_confidentiality(TagSet::from_iter([tc])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()?;

    // The memo is first observed on the intranet -> labelled {corp-dev}.
    flow.observe_paragraph(&"intranet".into(), "m-and-a", 0, memo)?;

    // Pasting the (edited!) memo into Google Docs is caught and blocked.
    let decision = flow.check_one(&CheckRequest::paragraph("gdocs", "draft", 0, &leaked))?;
    println!(
        "\npaste edited memo into Google Docs -> {:?}",
        decision.action
    );
    for violation in &decision.violations {
        println!(
            "  discloses {:.0}% of {} (missing tags {})",
            violation.disclosure * 100.0,
            violation.source,
            violation.missing_tags
        );
    }
    assert_eq!(decision.action, UploadAction::Block);

    // Unrelated text flows freely.
    let decision = flow.check_one(&CheckRequest::paragraph("gdocs", "draft", 1, unrelated))?;
    println!(
        "paste unrelated text into Google Docs -> {:?}",
        decision.action
    );
    assert_eq!(decision.action, UploadAction::Allow);
    Ok(())
}
