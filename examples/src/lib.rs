//! Example host crate; see the binaries under `src/bin` paths declared in Cargo.toml.
