//! Fuzz target: incremental fingerprint maintenance vs full recompute.
//!
//! The input bytes are decoded as an edit script — a fingerprint config,
//! an initial text, then a sequence of insert/delete/replace operations
//! with positions snapped to `char` boundaries — and replayed against an
//! [`IncrementalFingerprinter`]. After every edit the incrementally
//! maintained fingerprint must equal a from-scratch fingerprint of the
//! same text: any panic inside the incremental splice, and any
//! divergence in selected hashes, positions or spans, fails the run.
//!
//! The word table mixes ASCII with multi-byte and case-expanding
//! characters ('ü', 'ß', 'İ') so the script exercises the offset maps
//! and the non-trivial lowercasing paths, not just the ASCII fast lane.

use browserflow_fingerprint::{
    FingerprintConfig, Fingerprinter, IncrementalFingerprinter, TextEdit,
};
use libfuzzer_sys::fuzz_target;

/// Replacement vocabulary: index with any byte.
const WORDS: [&str; 16] = [
    "alpha",
    "bravo",
    "charlie",
    "delta",
    "echo",
    "zürich",
    "straße",
    "İstanbul",
    "x",
    "42",
    " spaced out ",
    "CAPS",
    "...",
    "",
    "naïve",
    "日本語",
];

/// Largest text the script may grow; bounds per-iteration cost.
const MAX_TEXT: usize = 4096;

/// Snaps `at` (mod `len + 1`) down to the nearest `char` boundary.
fn snap(text: &str, at: usize) -> usize {
    let mut pos = at % (text.len() + 1);
    while !text.is_char_boundary(pos) {
        pos -= 1;
    }
    pos
}

fuzz_target!(|data: &[u8]| {
    if data.len() < 3 {
        return;
    }
    let n = 2 + (data[0] as usize) % 10; // 2..=11
    let w = 1 + (data[1] as usize) % 40; // 1..=40
    let config = FingerprintConfig::builder()
        .ngram_len(n)
        .window(w)
        .build()
        .expect("nonzero n and w are valid");
    let seed_reps = (data[2] as usize) % 4;
    let initial = "The quick brown fox jumps over the lazy dog. ".repeat(seed_reps);

    let reference = Fingerprinter::new(config);
    let mut inc = IncrementalFingerprinter::with_text(config, &initial);

    for op in data[3..].chunks_exact(5) {
        let (kind, a, b, c, d) = (op[0], op[1], op[2], op[3], op[4]);
        let text = inc.text();
        let start = snap(text, a as usize * 251 + b as usize);
        let edit = match kind % 3 {
            0 => {
                if text.len() >= MAX_TEXT {
                    continue;
                }
                let mut insertion = String::new();
                for k in 0..1 + (d as usize) % 3 {
                    insertion.push_str(WORDS[(c as usize + k) % WORDS.len()]);
                }
                TextEdit::insert(start, insertion)
            }
            1 => {
                let end = snap(text, start + 1 + (c as usize) % 64).max(start);
                TextEdit::delete(start..end)
            }
            _ => {
                let end = snap(text, start + 1 + (c as usize) % 64).max(start);
                TextEdit::replace(start..end, WORDS[d as usize % WORDS.len()])
            }
        };
        assert!(edit.applies_to(inc.text()), "script built an invalid edit");
        inc.apply_edit(&edit);
        assert_eq!(
            inc.fingerprint(),
            reference.fingerprint(inc.text()),
            "incremental fingerprint diverged after {edit:?} on {:?}",
            inc.text()
        );
    }
});
