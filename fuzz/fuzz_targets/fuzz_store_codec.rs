//! Fuzz target: the persisted-store decode surface on arbitrary bytes.
//!
//! The store codec is the one parser in the system that reads bytes an
//! attacker (or a torn write) controls, so every entry point must fail
//! *closed* — a `CodecError`/`PersistError`, or a per-shard loss in the
//! [`RestoreReport`] — and must never panic, whatever the bytes.
//!
//! The first input byte selects the surface, the rest is the payload:
//!
//! - `0`: [`codec::decode_lossy`] on the raw payload (v1/v2 single-blob
//!   parser).
//! - `1`: [`SealedStore::from_bytes`] on the raw payload (sealed
//!   container framing).
//! - `2`: the payload overwrites one shard of a pristine **v2** snapshot
//!   directory; a hot open must still succeed and lose at most that
//!   shard.
//! - `3`: the payload overwrites one shard of a pristine **v3** snapshot
//!   directory; a **cold** open maps the shard and validates it in
//!   place, so the loaded store is also queried to force the mapped
//!   accessors over the hostile bytes.
//! - `4`: the payload overwrites the manifest of a pristine v2 snapshot;
//!   the open may fail, but only with an error.

use std::fs;
use std::sync::OnceLock;

use browserflow_fuzz::SnapshotFixture;
use browserflow_store::codec::{self, SealedStore};
use browserflow_store::{StoreFormat, StoreOpenOptions, TierMode};
use libfuzzer_sys::fuzz_target;

fn v2_shard_fixture() -> &'static SnapshotFixture {
    static FIXTURE: OnceLock<SnapshotFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| SnapshotFixture::create("codec-v2-shard", StoreFormat::V2))
}

fn v3_shard_fixture() -> &'static SnapshotFixture {
    static FIXTURE: OnceLock<SnapshotFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| SnapshotFixture::create("codec-v3-shard", StoreFormat::V3))
}

fn v2_manifest_fixture() -> &'static SnapshotFixture {
    static FIXTURE: OnceLock<SnapshotFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| SnapshotFixture::create("codec-v2-manifest", StoreFormat::V2))
}

fuzz_target!(|data: &[u8]| {
    let Some((&mode, payload)) = data.split_first() else {
        return;
    };
    match mode % 5 {
        0 => {
            // Any outcome but a panic is acceptable; on success the
            // report must be internally consistent.
            if let Ok((store, _report)) = codec::decode_lossy(payload) {
                // A payload that parses must yield a queryable store.
                let _ = store.segment_count();
                let _ = store.hash_count();
            }
        }
        1 => {
            let _ = SealedStore::from_bytes(payload);
        }
        2 => {
            let fx = v2_shard_fixture();
            fs::write(&fx.shard, payload).expect("shard overwrite");
            // Shard damage is survivable by design: the open must
            // succeed and report at most the one damaged shard lost.
            let (_, report) = StoreOpenOptions::new()
                .open(&fx.dir)
                .expect("v2 open fails closed per shard, not per store");
            assert!(report.lost_shards.len() <= 1);
        }
        3 => {
            let fx = v3_shard_fixture();
            fs::write(&fx.shard, payload).expect("shard overwrite");
            // The cold tier serves records straight from the mapped
            // file, so opening is not enough: query the store to drive
            // the in-place accessors over the hostile shard too.
            if let Ok((store, report)) = StoreOpenOptions::new().tier(TierMode::Cold).open(&fx.dir)
            {
                assert!(report.lost_shards.len() <= 1);
                let _ = store.segment_count();
                let _ = store.hash_count();
            }
        }
        _ => {
            let fx = v2_manifest_fixture();
            fs::write(&fx.manifest, payload).expect("manifest overwrite");
            // A corrupt manifest fails the whole open closed; a payload
            // that happens to parse yields a (possibly empty) store.
            let _ = StoreOpenOptions::new().open(&fx.dir);
        }
    }
});
