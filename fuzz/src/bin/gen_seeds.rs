//! Regenerates the checked-in seed corpora under `fuzz/corpus/` from real
//! persisted payloads, so the fuzzers start from well-formed inputs (the
//! interesting failures live a few mutations away from valid bytes, not
//! in random noise).
//!
//! Run from anywhere: `cargo run -p browserflow-fuzz --bin gen_seeds`.

use std::fs;
use std::path::{Path, PathBuf};

use browserflow_fuzz::{first_shard, sample_store, SnapshotFixture};
use browserflow_store::codec;
use browserflow_store::persist::MANIFEST_FILE;
use browserflow_store::StoreFormat;

fn corpus_dir(target: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(target);
    fs::create_dir_all(&dir).expect("corpus dir");
    dir
}

fn write_seed(dir: &Path, name: &str, bytes: &[u8]) {
    fs::write(dir.join(name), bytes).expect("seed written");
    println!("  {name}: {} bytes", bytes.len());
}

/// A codec seed is the target's input format: one mode byte + payload.
fn mode_seed(mode: u8, payload: &[u8]) -> Vec<u8> {
    let mut seed = Vec::with_capacity(payload.len() + 1);
    seed.push(mode);
    seed.extend_from_slice(payload);
    seed
}

fn main() {
    let store = sample_store();

    println!("fuzz_store_codec seeds (real persisted payloads):");
    let dir = corpus_dir("fuzz_store_codec");
    let blob = codec::encode(&store).expect("encode");
    write_seed(&dir, "v2-blob", &mode_seed(0, &blob));
    // Mode 1 parses the sealed container framing; the plain blob is the
    // right *shape* of near-miss (magic + sections) without needing a key.
    write_seed(
        &dir,
        "sealed-near-miss",
        &mode_seed(1, &blob[..blob.len().min(512)]),
    );

    let v2 = SnapshotFixture::create("seeds-v2", StoreFormat::V2);
    let v2_shard = fs::read(first_shard(&v2.dir)).expect("v2 shard");
    let v2_manifest = fs::read(v2.dir.join(MANIFEST_FILE)).expect("v2 manifest");
    write_seed(&dir, "v2-shard", &mode_seed(2, &v2_shard));
    write_seed(&dir, "v2-manifest", &mode_seed(4, &v2_manifest));

    let v3 = SnapshotFixture::create("seeds-v3", StoreFormat::V3);
    let v3_shard = fs::read(first_shard(&v3.dir)).expect("v3 shard");
    write_seed(&dir, "v3-shard", &mode_seed(3, &v3_shard));

    let _ = fs::remove_dir_all(&v2.dir);
    let _ = fs::remove_dir_all(&v3.dir);

    println!("fuzz_incremental_edits seeds (hand-laid edit scripts):");
    let dir = corpus_dir("fuzz_incremental_edits");
    // Header: n=6 (byte 4), w=30 (byte 29), two initial sentences.
    let mut script = vec![4u8, 29, 2];
    // A burst of inserts, deletes and replacements at varied positions.
    for (kind, a, b, c, d) in [
        (0u8, 3u8, 17u8, 5u8, 2u8), // insert "zürich"-area words mid-text
        (2, 9, 200, 30, 7),         // replace a range with "İstanbul"
        (1, 1, 40, 12, 0),          // delete a span
        (0, 0, 0, 15, 1),           // insert "日本語" at the front
        (1, 250, 250, 63, 0),       // delete near the end
        (2, 5, 5, 3, 10),           // replace with " spaced out "
    ] {
        script.extend_from_slice(&[kind, a, b, c, d]);
    }
    write_seed(&dir, "mixed-script", &script);
    // Degenerate config corner: n=2, w=1 over an initially empty text.
    let mut tiny = vec![0u8, 0, 0];
    for (kind, a, b, c, d) in [(0u8, 0u8, 0u8, 0u8, 2u8), (0, 0, 3, 8, 0), (1, 0, 1, 0, 0)] {
        tiny.extend_from_slice(&[kind, a, b, c, d]);
    }
    write_seed(&dir, "tiny-config", &tiny);
}
