//! Shared fixtures for the fuzz targets.
//!
//! The store-codec target needs realistic persisted snapshots to corrupt;
//! building them is expensive relative to one fuzz iteration, so they are
//! constructed once per process and the per-iteration work is a single
//! file overwrite plus an open.

use std::fs;
use std::path::{Path, PathBuf};

use browserflow_fingerprint::Fingerprinter;
use browserflow_store::persist::MANIFEST_FILE;
use browserflow_store::{FingerprintStore, PersistOptions, SegmentId, StoreFormat};

/// Builds the small but non-trivial store every snapshot fixture persists:
/// enough segments to span multiple shards, with overlapping text so the
/// hash side of the codec sees shared and unique values.
pub fn sample_store() -> FingerprintStore {
    let fp = Fingerprinter::default();
    let store = FingerprintStore::new();
    for i in 0..24u64 {
        let text = format!(
            "fuzz corpus paragraph number {i} with enough distinct words to \
             fingerprint cleanly and a shared clause that repeats verbatim \
             across every paragraph of the fixture"
        );
        store.observe(SegmentId::new(i + 1), &fp.fingerprint(&text), 0.5);
    }
    store
}

/// A persisted snapshot directory plus the paths the fuzzer overwrites.
pub struct SnapshotFixture {
    /// Snapshot directory (manifest + shards).
    pub dir: PathBuf,
    /// Path of the first shard file, sorted by name.
    pub shard: PathBuf,
    /// Path of the manifest file.
    pub manifest: PathBuf,
}

impl SnapshotFixture {
    /// Persists [`sample_store`] in `format` under a fresh process-scoped
    /// temp directory tagged `tag`.
    pub fn create(tag: &str, format: StoreFormat) -> Self {
        let dir = std::env::temp_dir().join(format!("bf-fuzz-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = sample_store();
        PersistOptions::new()
            .format(format)
            .persist(&store, &dir)
            .expect("fixture snapshot persists");
        let shard = first_shard(&dir);
        let manifest = dir.join(MANIFEST_FILE);
        Self {
            dir,
            shard,
            manifest,
        }
    }
}

/// First (by name) non-manifest file of a snapshot directory.
pub fn first_shard(dir: &Path) -> PathBuf {
    let mut shards: Vec<PathBuf> = fs::read_dir(dir)
        .expect("snapshot dir readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.is_file() && p.file_name().map(|n| n.to_string_lossy() != MANIFEST_FILE) == Some(true)
        })
        .collect();
    shards.sort();
    shards.into_iter().next().expect("snapshot has shards")
}
