#!/usr/bin/env bash
# CI gate for the BrowserFlow workspace.
#
# Runs, in order:
#   1. grep gates: no deprecated check_upload wrappers outside their
#      definition site, no panicking worker expects in the pipeline, no
#      per-hash DBhash probes inside Algorithm 1's candidate evaluation,
#      no explicit-nonce sealing outside the encryption module's own tests
#   2. rustfmt check over the first-party packages
#   3. clippy with warnings (and the clippy::perf group) denied over the
#      first-party packages
#   4. the tier-1 gate: release build + full test suite
#   5. the async pipeline integration tests under --release
#   6. the store persistence corruption matrix (torn-write recovery)
#   7. a release-mode smoke run of the keystroke fingerprint bench, which
#      regenerates BENCH_fingerprint.json and asserts the incremental
#      path stays >= 5x faster than full re-fingerprinting at 4 k chars
#   8. a release-mode smoke run of the algorithm1 microbench, which
#      asserts the authoritative-index evaluation path stays >= 3x faster
#      than the probe-based reference on a 150 k-paragraph store
#
# The vendored shims under third_party/ are intentionally excluded from
# the fmt/clippy gates: they mirror upstream crate APIs and are not held
# to this repo's style.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    browserflow-fingerprint
    browserflow-tdm
    browserflow-store
    browserflow-corpus
    browserflow-browser
    browserflow
    browserflow-cli
    browserflow-bench
    browserflow-examples
    browserflow-integration
)

pkg_flags=()
for pkg in "${FIRST_PARTY[@]}"; do
    pkg_flags+=(-p "$pkg")
done

echo "==> grep gate: deprecated check_upload wrappers stay quarantined"
# The deprecated wrappers live (and are exercised by one compat test) in
# crates/core/src/middleware.rs only; every other first-party call site
# must use the unified CheckRequest API.
if grep -rn '\.check_upload(\|\.check_upload_batch(' \
    crates examples tests --include='*.rs' \
    | grep -v '^crates/core/src/middleware.rs:'; then
    echo 'error: deprecated check_upload/check_upload_batch call outside crates/core/src/middleware.rs' >&2
    exit 1
fi

echo "==> grep gate: no panicking worker expects"
if grep -rn 'expect("worker alive")' crates examples tests; then
    echo 'error: pipeline reply paths must surface DeciderError, not panic' >&2
    exit 1
fi

echo "==> grep gate: evaluate_candidate must not probe DBhash per hash"
# The hot inner loop of Algorithm 1 works off the incrementally maintained
# authoritative index; a per-hash oldest_segment_with probe inside
# evaluate_candidate would reintroduce the pre-index cost the
# authoritative-set refactor removed (the probe_* reference impls keep the
# old derivation for equivalence tests and live outside this function).
if awk '/^pub\(crate\) fn evaluate_candidate\(/,/^}/' \
    crates/store/src/disclosure.rs | grep -n 'oldest_segment_with'; then
    echo 'error: evaluate_candidate probes DBhash per hash — use the authoritative index' >&2
    exit 1
fi

echo "==> grep gate: explicit-nonce sealing stays inside the encryption module"
# seal_with_nonce exists for deterministic test fixtures only; production
# sealing must go through the counter-based seal_auto so nonces are never
# reused under the same key.
if grep -rn 'seal_with_nonce' crates examples tests --include='*.rs' \
    | grep -v '^crates/store/src/encryption.rs:'; then
    echo 'error: seal_with_nonce call outside crates/store/src/encryption.rs — use seal_auto' >&2
    exit 1
fi

echo "==> cargo fmt --check (first-party)"
cargo fmt "${pkg_flags[@]}" -- --check

echo "==> cargo clippy -D warnings -D clippy::perf (first-party)"
cargo clippy "${pkg_flags[@]}" --all-targets -- -D warnings -D clippy::perf

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> pipeline tests under --release"
cargo test -q -p browserflow-integration --test pipeline --release

echo "==> persistence corruption matrix"
# Torn-write recovery: damaging one shard must lose exactly that shard,
# and a corrupt manifest must fail closed in both strict and lossy modes.
cargo test -q -p browserflow-store --test persistence

echo "==> keystroke fingerprint bench smoke run (release)"
# Regenerates BENCH_fingerprint.json; the binary itself asserts the
# incremental path is >= 5x faster at 4 k-char paragraphs.
cargo run -q --release -p browserflow-bench --bin bench_fingerprint

echo "==> algorithm1 microbench smoke run (release)"
# Old-vs-new candidate evaluation at 1.5k/15k/150k paragraphs; the binary
# asserts the authoritative-index path is >= 3x faster than the
# probe-based reference on the largest store.
cargo run -q --release -p browserflow-bench --bin bench_algorithm1

echo "CI gate passed."
