#!/usr/bin/env bash
# CI gate for the BrowserFlow workspace.
#
# Runs, in order:
#   1. rustfmt check over the first-party packages
#   2. clippy with warnings denied over the first-party packages
#   3. the tier-1 gate: release build + full test suite
#
# The vendored shims under third_party/ are intentionally excluded from
# the fmt/clippy gates: they mirror upstream crate APIs and are not held
# to this repo's style.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    browserflow-fingerprint
    browserflow-tdm
    browserflow-store
    browserflow-corpus
    browserflow-browser
    browserflow
    browserflow-cli
    browserflow-bench
    browserflow-examples
    browserflow-integration
)

pkg_flags=()
for pkg in "${FIRST_PARTY[@]}"; do
    pkg_flags+=(-p "$pkg")
done

echo "==> cargo fmt --check (first-party)"
cargo fmt "${pkg_flags[@]}" -- --check

echo "==> cargo clippy -D warnings (first-party)"
cargo clippy "${pkg_flags[@]}" --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI gate passed."
