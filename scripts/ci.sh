#!/usr/bin/env bash
# CI gate for the BrowserFlow workspace.
#
# Runs, in order:
#   1. grep gates: deprecated persistence free functions stay quarantined
#      in their definition site, no panicking worker expects in the
#      pipeline, no per-hash DBhash probes inside Algorithm 1's candidate
#      evaluation, no explicit-nonce sealing outside the encryption
#      module's own tests
#   2. rustfmt check over the first-party packages
#   3. clippy with warnings (and the clippy::perf group) denied over the
#      first-party packages
#   4. the tier-1 gate: release build + full test suite
#   5. the async pipeline integration tests under --release
#   6. the store persistence corruption matrix (torn-write recovery)
#   7. the fingerprint test suite twice more: pinned to the portable
#      scalar kernel (BF_FORCE_SCALAR=1) and on the runtime-detected
#      native kernel, so the SIMD and scalar paths both pass the full
#      unit + proptest suite on every host
#   8. a bounded fuzz smoke of both fuzz targets (store codec on
#      arbitrary bytes; incremental-vs-full fingerprint equivalence):
#      through `cargo fuzz` when a nightly toolchain with cargo-fuzz is
#      installed, otherwise directly against the vendored
#      libfuzzer-sys stand-in binaries
#   9. a release-mode smoke run of the keystroke fingerprint bench, which
#      regenerates BENCH_fingerprint.json and asserts the incremental
#      path stays >= 5x faster than full re-fingerprinting at 4 k chars,
#      that the SIMD full path stays >= BF_SIMD_FLOOR (default 2x)
#      faster than the scalar full path at 4 k and 16 k chars (skipped
#      with a loud warning on SIMD-less hosts), and that the engine
#      reports exactly the kernel each pass requested
#  10. a release-mode smoke run of the algorithm1 microbench, which
#      asserts the authoritative-index evaluation path stays >= 3x faster
#      than the probe-based reference on a 150 k-paragraph store
#  11. a release-mode smoke run of the tiered-persistence microbench,
#      which regenerates BENCH_tiered.json and asserts a v3 cold (mapped)
#      open stays >= 10x faster than a v2 full decode on a
#      150 k-paragraph store, with cold reports identical to hot
#  12. a release-mode smoke run of the batched-ingest microbench, which
#      regenerates BENCH_ingest.json and asserts batched ingest takes
#      >= BF_INGEST_FLOOR (default 3x) fewer stripe lock round-trips
#      than the per-paragraph observe loop at 15 k paragraphs, after
#      checking the two ingest shapes observation-equivalent; skipped
#      loudly if the release binary is absent
#  13. a daemon smoke test: boot a release bfd on a temp socket, drive it
#      with bfctl daemon (create -> observe -> check -> stats) including
#      a multi-paragraph --stdin observe that ships one ObserveBatch
#      frame, SIGTERM it, and assert clean exit plus a persisted tenant
#      state directory that a second bfd restores
#  14. a kill -9 durability smoke: boot bfd with --snapshot-interval,
#      drive a cross-service flow, wait past one interval, kill -9 the
#      daemon, and assert a rebinding bfd restores the tenant with the
#      check still blocking and the lineage graph intact (at most one
#      interval of work may be lost)
#  15. the exfiltration-sentinel covert-flow corpus, which regenerates
#      BENCH_sentinel.json and gates on recall >= 0.9 and precision
#      >= 0.8 (override with BF_SENTINEL_RECALL_FLOOR /
#      BF_SENTINEL_PRECISION_FLOOR); skipped loudly if the release
#      binary is absent
#  16. a release-mode smoke run of the multi-tenant service bench, which
#      regenerates BENCH_service.json and asserts the zero-silent-drop
#      ledger (sent == decisions + superseded + backpressure)
#
# The vendored shims under third_party/ are intentionally excluded from
# the fmt/clippy gates: they mirror upstream crate APIs and are not held
# to this repo's style.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    browserflow-fingerprint
    browserflow-tdm
    browserflow-store
    browserflow-corpus
    browserflow-browser
    browserflow
    browserflow-daemon
    browserflow-cli
    browserflow-bench
    browserflow-examples
    browserflow-integration
    browserflow-fuzz
)

pkg_flags=()
for pkg in "${FIRST_PARTY[@]}"; do
    pkg_flags+=(-p "$pkg")
done

echo "==> grep gate: deprecated persistence shims stay quarantined"
# The 0.7.0 builder redesign left the old persistence free functions as
# #[deprecated] shims in crates/store/src/persist.rs (exercised there by
# one compat test, re-exported once from lib.rs). Every other first-party
# call site must use PersistOptions / StoreOpenOptions — a new
# allow(deprecated) anywhere else is someone dodging the migration.
if grep -rn 'allow(deprecated)' crates examples tests --include='*.rs' \
    | grep -v '^crates/store/src/persist.rs:' \
    | grep -v '^crates/store/src/lib.rs:'; then
    echo 'error: allow(deprecated) outside crates/store/src/{persist,lib}.rs — use the builder API' >&2
    exit 1
fi
# The PR 2 check_upload/check_upload_batch wrappers are gone entirely; no
# call site or reintroduced definition may bring them back (doc-comment
# history and the bench_check_upload group name are fine).
if grep -rn '\.check_upload(\|\.check_upload_batch(\|fn check_upload' \
    crates examples tests --include='*.rs'; then
    echo 'error: check_upload/check_upload_batch was removed in 0.7.0 — use BrowserFlow::check_one/check_batch' >&2
    exit 1
fi

echo "==> grep gate: no panicking worker expects"
if grep -rn 'expect("worker alive")' crates examples tests; then
    echo 'error: pipeline reply paths must surface DeciderError, not panic' >&2
    exit 1
fi

echo "==> grep gate: evaluate_candidate must not probe DBhash per hash"
# The hot inner loop of Algorithm 1 works off the incrementally maintained
# authoritative index; a per-hash oldest_segment_with probe inside
# evaluate_candidate would reintroduce the pre-index cost the
# authoritative-set refactor removed (the probe_* reference impls keep the
# old derivation for equivalence tests and live outside this function).
if awk '/^pub\(crate\) fn evaluate_candidate\(/,/^}/' \
    crates/store/src/disclosure.rs | grep -n 'oldest_segment_with'; then
    echo 'error: evaluate_candidate probes DBhash per hash — use the authoritative index' >&2
    exit 1
fi

echo "==> grep gate: explicit-nonce sealing stays inside the encryption module"
# seal_with_nonce exists for deterministic test fixtures only; production
# sealing must go through the counter-based seal_auto so nonces are never
# reused under the same key.
if grep -rn 'seal_with_nonce' crates examples tests --include='*.rs' \
    | grep -v '^crates/store/src/encryption.rs:'; then
    echo 'error: seal_with_nonce call outside crates/store/src/encryption.rs — use seal_auto' >&2
    exit 1
fi

echo "==> cargo fmt --check (first-party)"
cargo fmt "${pkg_flags[@]}" -- --check

echo "==> cargo clippy -D warnings -D clippy::perf (first-party)"
cargo clippy "${pkg_flags[@]}" --all-targets -- -D warnings -D clippy::perf

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> pipeline tests under --release"
cargo test -q -p browserflow-integration --test pipeline --release

echo "==> persistence corruption matrix"
# Torn-write recovery: damaging one shard must lose exactly that shard,
# and a corrupt manifest must fail closed in both strict and lossy modes.
cargo test -q -p browserflow-store --test persistence

echo "==> fingerprint suite on the scalar kernel (BF_FORCE_SCALAR=1)"
# The proptest equivalence suites (winnow vs deque oracle, SIMD vs scalar
# hashes, incremental vs full) must pass with the portable kernel pinned…
BF_FORCE_SCALAR=1 cargo test -q -p browserflow-fingerprint
echo "==> fingerprint suite on the native kernel"
# …and again on whatever kernel this host dispatches to natively.
cargo test -q -p browserflow-fingerprint

echo "==> bounded fuzz smoke (store codec, incremental edits)"
# Prefers real cargo-fuzz (nightly + sanitizer + coverage feedback) when
# installed; otherwise falls back to the vendored libfuzzer-sys stand-in,
# which replays the checked-in seed corpora and runs bounded mutation
# rounds. A panic in either target fails the gate.
if cargo +nightly fuzz --version >/dev/null 2>&1; then
    cargo +nightly fuzz run fuzz_store_codec -- -runs=512
    cargo +nightly fuzz run fuzz_incremental_edits -- -runs=512
else
    echo 'WARNING: cargo-fuzz/nightly not installed — running the fuzz targets' >&2
    echo 'WARNING: against the vendored libfuzzer-sys stand-in (no sanitizer,' >&2
    echo 'WARNING: no coverage feedback). Install cargo-fuzz for real fuzzing.' >&2
    cargo run -q --release -p browserflow-fuzz --bin fuzz_store_codec -- \
        -runs=2048 fuzz/corpus/fuzz_store_codec
    cargo run -q --release -p browserflow-fuzz --bin fuzz_incremental_edits -- \
        -runs=2048 fuzz/corpus/fuzz_incremental_edits
fi

echo "==> keystroke fingerprint bench smoke run (release)"
# Regenerates BENCH_fingerprint.json; the binary itself asserts the
# incremental path is >= 5x faster at 4 k-char paragraphs, the SIMD gate
# (>= BF_SIMD_FLOOR, default 2x, at 4 k and 16 k chars, skipped loudly
# on SIMD-less hosts), and that the engine reports exactly the kernel
# each pass requested (pin_kernel).
cargo run -q --release -p browserflow-bench --bin bench_fingerprint
# The emitted report must carry the kernel column the comparisons were
# measured on.
grep -q '"kernel": "' BENCH_fingerprint.json

echo "==> algorithm1 microbench smoke run (release)"
# Old-vs-new candidate evaluation at 1.5k/15k/150k paragraphs; the binary
# asserts the authoritative-index path is >= 3x faster than the
# probe-based reference on the largest store.
cargo run -q --release -p browserflow-bench --bin bench_algorithm1

echo "==> tiered-persistence microbench smoke run (release)"
# Regenerates BENCH_tiered.json; the binary asserts cold-tier disclosure
# reports match the hot reference and that a v3 cold (mapped) open is
# >= 10x faster than a v2 full decode on the 150 k-paragraph store.
cargo run -q --release -p browserflow-bench --bin bench_tiered

echo "==> batched-ingest microbench smoke run (release)"
# Regenerates BENCH_ingest.json; the binary asserts batched ingest pays
# >= BF_INGEST_FLOOR (default 3x) fewer stripe lock round-trips than the
# per-paragraph observe loop at 15 k paragraphs (wall time is reported
# but not gated — single-core hosts see parity), after asserting both
# ingest shapes produce identical disclosure reports.
INGEST=target/release/bench_ingest
if [[ -x "$INGEST" ]]; then
    "$INGEST"
    grep -q '"lock_reduction"' BENCH_ingest.json
else
    echo 'WARNING: target/release/bench_ingest is not built — the batched-ingest' >&2
    echo 'WARNING: lock-reduction gate was SKIPPED. Run cargo build --release' >&2
    echo 'WARNING: and re-run ci.sh for full coverage.' >&2
fi

echo "==> daemon smoke test (bfd + bfctl daemon, SIGTERM drain, restore)"
# Boot a release bfd on a temp socket, drive the full tenant lifecycle
# over the wire, SIGTERM it, and assert a clean drain that persists the
# tenant — then boot a second bfd on the same state dir and assert it
# restores the tenant.
BFD=target/release/bfd
BFCTL=target/release/bfctl
SMOKE_DIR=$(mktemp -d)
SMOKE_SOCK="$SMOKE_DIR/bfd.sock"
cleanup_smoke() {
    if [[ -n "${BFD_PID:-}" ]] && kill -0 "$BFD_PID" 2>/dev/null; then
        kill -TERM "$BFD_PID" 2>/dev/null || true
        wait "$BFD_PID" 2>/dev/null || true
    fi
    rm -rf "$SMOKE_DIR"
    if [[ -n "${KILL_DIR:-}" ]]; then
        rm -rf "$KILL_DIR"
    fi
}
trap cleanup_smoke EXIT

"$BFD" --socket "$SMOKE_SOCK" --state-dir "$SMOKE_DIR/state" \
    2>"$SMOKE_DIR/bfd.log" &
BFD_PID=$!
for _ in $(seq 1 100); do
    if "$BFCTL" daemon --socket "$SMOKE_SOCK" ping >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"$BFCTL" daemon --socket "$SMOKE_SOCK" ping >/dev/null

"$BFCTL" policy init > "$SMOKE_DIR/policy.json"
printf 'the quarterly interview notes are confidential\n' > "$SMOKE_DIR/doc.txt"
"$BFCTL" daemon --socket "$SMOKE_SOCK" --policy "$SMOKE_DIR/policy.json" \
    create smoke >/dev/null
"$BFCTL" daemon --socket "$SMOKE_SOCK" observe smoke itool notes \
    "$SMOKE_DIR/doc.txt" >/dev/null
# A multi-paragraph document over --stdin travels as one ObserveBatch
# frame; the tracked middle paragraph must then block on another service.
printf 'the opening paragraph sets out the background of the review\n\n%s\n\n%s\n' \
    'the candidate compensation discussion is strictly confidential' \
    'the closing paragraph thanks everyone for their patience here' \
    > "$SMOKE_DIR/memo.txt"
"$BFCTL" daemon --socket "$SMOKE_SOCK" observe smoke itool memo \
    --stdin < "$SMOKE_DIR/memo.txt" >/dev/null
printf 'the candidate compensation discussion is strictly confidential\n' \
    > "$SMOKE_DIR/probe.txt"
if ! "$BFCTL" daemon --socket "$SMOKE_SOCK" check smoke gdocs paste \
    "$SMOKE_DIR/probe.txt" | grep -qi block; then
    echo 'error: paragraph ingested via ObserveBatch does not block on gdocs' >&2
    cat "$SMOKE_DIR/bfd.log" >&2
    exit 1
fi
"$BFCTL" daemon --socket "$SMOKE_SOCK" check smoke gdocs leak \
    "$SMOKE_DIR/doc.txt" >/dev/null
"$BFCTL" daemon --socket "$SMOKE_SOCK" --json stats smoke \
    | grep -q '"completed"'

kill -TERM "$BFD_PID"
if ! wait "$BFD_PID"; then
    echo 'error: bfd did not exit cleanly after SIGTERM' >&2
    cat "$SMOKE_DIR/bfd.log" >&2
    exit 1
fi
unset BFD_PID
if [[ ! -d "$SMOKE_DIR/state/smoke" ]]; then
    echo 'error: SIGTERM drain did not persist tenant state' >&2
    cat "$SMOKE_DIR/bfd.log" >&2
    exit 1
fi

"$BFD" --socket "$SMOKE_SOCK" --state-dir "$SMOKE_DIR/state" \
    2>"$SMOKE_DIR/bfd2.log" &
BFD_PID=$!
for _ in $(seq 1 100); do
    if "$BFCTL" daemon --socket "$SMOKE_SOCK" ping >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
if ! "$BFCTL" daemon --socket "$SMOKE_SOCK" --json tenants | grep -q '"smoke"'; then
    echo 'error: restarted bfd did not restore the persisted tenant' >&2
    cat "$SMOKE_DIR/bfd2.log" >&2
    exit 1
fi
kill -TERM "$BFD_PID"
wait "$BFD_PID"
unset BFD_PID

echo "==> kill -9 durability smoke (bfd --snapshot-interval)"
# The background snapshot sweep must bound data loss to one interval:
# after a hard kill (no drain), a rebinding daemon restores the tenant
# from the last sweep — the check still blocks and the lineage edge from
# the pre-kill flow is still there.
KILL_DIR=$(mktemp -d)
KILL_SOCK="$KILL_DIR/bfd.sock"
"$BFD" --socket "$KILL_SOCK" --state-dir "$KILL_DIR/state" \
    --snapshot-interval 200 2>"$KILL_DIR/bfd.log" &
BFD_PID=$!
for _ in $(seq 1 100); do
    if "$BFCTL" daemon --socket "$KILL_SOCK" ping >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"$BFCTL" policy init > "$KILL_DIR/policy.json"
printf 'the acquisition shortlist is strictly confidential material\n' \
    > "$KILL_DIR/doc.txt"
"$BFCTL" daemon --socket "$KILL_SOCK" --policy "$KILL_DIR/policy.json" \
    create hardkill >/dev/null
"$BFCTL" daemon --socket "$KILL_SOCK" observe hardkill itool notes \
    "$KILL_DIR/doc.txt" >/dev/null
"$BFCTL" daemon --socket "$KILL_SOCK" check hardkill gdocs leak \
    "$KILL_DIR/doc.txt" | grep -qi block
# Wait past one snapshot interval so the sweep has persisted the tenant,
# then kill without any chance to drain.
sleep 1.5
kill -9 "$BFD_PID"
wait "$BFD_PID" 2>/dev/null || true
unset BFD_PID
if [[ ! -d "$KILL_DIR/state/hardkill" ]]; then
    echo 'error: snapshot sweep did not persist tenant state before kill -9' >&2
    cat "$KILL_DIR/bfd.log" >&2
    rm -rf "$KILL_DIR"
    exit 1
fi
"$BFD" --socket "$KILL_SOCK" --state-dir "$KILL_DIR/state" \
    2>"$KILL_DIR/bfd2.log" &
BFD_PID=$!
for _ in $(seq 1 100); do
    if "$BFCTL" daemon --socket "$KILL_SOCK" ping >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
if ! "$BFCTL" daemon --socket "$KILL_SOCK" check hardkill gdocs leak2 \
    "$KILL_DIR/doc.txt" | grep -qi block; then
    echo 'error: restored tenant no longer blocks the tracked text after kill -9' >&2
    cat "$KILL_DIR/bfd2.log" >&2
    exit 1
fi
if ! "$BFCTL" daemon --socket "$KILL_SOCK" --json lineage hardkill \
    | grep -q '"clock"'; then
    echo 'error: restored tenant lost its lineage graph after kill -9' >&2
    cat "$KILL_DIR/bfd2.log" >&2
    exit 1
fi
kill -TERM "$BFD_PID"
wait "$BFD_PID"
unset BFD_PID
rm -rf "$KILL_DIR"

echo "==> exfiltration-sentinel covert-flow corpus (release)"
# Gates on detection quality over the scripted covert-flow scenarios;
# the binary asserts recall >= BF_SENTINEL_RECALL_FLOOR (default 0.9)
# and precision >= BF_SENTINEL_PRECISION_FLOOR (default 0.8) and exits
# non-zero when either floor is missed.
SENTINEL=target/release/bench_sentinel
if [[ -x "$SENTINEL" ]]; then
    "$SENTINEL"
    grep -q '"recall"' BENCH_sentinel.json
    grep -q '"precision"' BENCH_sentinel.json
else
    echo 'WARNING: target/release/bench_sentinel is not built — the sentinel' >&2
    echo 'WARNING: covert-flow corpus gate was SKIPPED. Run cargo build --release' >&2
    echo 'WARNING: and re-run ci.sh for full coverage.' >&2
fi

echo "==> multi-tenant service bench smoke run (release)"
# Regenerates BENCH_service.json; the binary itself asserts the
# zero-silent-drop ledger (sent == decisions + superseded + backpressure)
# and that the drain reports every tenant clean.
cargo run -q --release -p browserflow-bench --bin bench_service

echo "CI gate passed."
