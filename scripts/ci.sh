#!/usr/bin/env bash
# CI gate for the BrowserFlow workspace.
#
# Runs, in order:
#   1. grep gates: no deprecated check_upload wrappers outside their
#      definition site, no panicking worker expects in the pipeline, no
#      explicit-nonce sealing outside the encryption module's own tests
#   2. rustfmt check over the first-party packages
#   3. clippy with warnings (and the clippy::perf group) denied over the
#      first-party packages
#   4. the tier-1 gate: release build + full test suite
#   5. the async pipeline integration tests under --release
#   6. the store persistence corruption matrix (torn-write recovery)
#   7. a release-mode smoke run of the keystroke fingerprint bench, which
#      regenerates BENCH_fingerprint.json and asserts the incremental
#      path stays >= 5x faster than full re-fingerprinting at 4 k chars
#
# The vendored shims under third_party/ are intentionally excluded from
# the fmt/clippy gates: they mirror upstream crate APIs and are not held
# to this repo's style.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    browserflow-fingerprint
    browserflow-tdm
    browserflow-store
    browserflow-corpus
    browserflow-browser
    browserflow
    browserflow-cli
    browserflow-bench
    browserflow-examples
    browserflow-integration
)

pkg_flags=()
for pkg in "${FIRST_PARTY[@]}"; do
    pkg_flags+=(-p "$pkg")
done

echo "==> grep gate: deprecated check_upload wrappers stay quarantined"
# The deprecated wrappers live (and are exercised by one compat test) in
# crates/core/src/middleware.rs only; every other first-party call site
# must use the unified CheckRequest API.
if grep -rn '\.check_upload(\|\.check_upload_batch(' \
    crates examples tests --include='*.rs' \
    | grep -v '^crates/core/src/middleware.rs:'; then
    echo 'error: deprecated check_upload/check_upload_batch call outside crates/core/src/middleware.rs' >&2
    exit 1
fi

echo "==> grep gate: no panicking worker expects"
if grep -rn 'expect("worker alive")' crates examples tests; then
    echo 'error: pipeline reply paths must surface DeciderError, not panic' >&2
    exit 1
fi

echo "==> grep gate: explicit-nonce sealing stays inside the encryption module"
# seal_with_nonce exists for deterministic test fixtures only; production
# sealing must go through the counter-based seal_auto so nonces are never
# reused under the same key.
if grep -rn 'seal_with_nonce' crates examples tests --include='*.rs' \
    | grep -v '^crates/store/src/encryption.rs:'; then
    echo 'error: seal_with_nonce call outside crates/store/src/encryption.rs — use seal_auto' >&2
    exit 1
fi

echo "==> cargo fmt --check (first-party)"
cargo fmt "${pkg_flags[@]}" -- --check

echo "==> cargo clippy -D warnings -D clippy::perf (first-party)"
cargo clippy "${pkg_flags[@]}" --all-targets -- -D warnings -D clippy::perf

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> pipeline tests under --release"
cargo test -q -p browserflow-integration --test pipeline --release

echo "==> persistence corruption matrix"
# Torn-write recovery: damaging one shard must lose exactly that shard,
# and a corrupt manifest must fail closed in both strict and lossy modes.
cargo test -q -p browserflow-store --test persistence

echo "==> keystroke fingerprint bench smoke run (release)"
# Regenerates BENCH_fingerprint.json; the binary itself asserts the
# incremental path is >= 5x faster at 4 k-char paragraphs.
cargo run -q --release -p browserflow-bench --bin bench_fingerprint

echo "CI gate passed."
