//! Integration test host crate (see the `tests/` directory).
