//! Detection accuracy against the corpus ground truth — the integration
//! test equivalent of the paper's §6.1 evaluation.

use browserflow_bench_helpers::*;
use browserflow_corpus::datasets::{
    ChurnLevel, ManualChapterKind, ManualsDataset, WikipediaConfig, WikipediaDataset,
};
use browserflow_fingerprint::Fingerprint;

/// Local copy of the experiment-harness helpers (the bench crate is not a
/// dependency of the test crate; the logic is 20 lines and kept in sync by
/// these very tests).
mod browserflow_bench_helpers {
    use browserflow_fingerprint::{Fingerprint, Fingerprinter};
    use browserflow_store::disclosure_between;

    pub fn paper_fingerprinter() -> Fingerprinter {
        Fingerprinter::default()
    }

    pub fn disclosed_fraction(
        base_paragraphs: &[Fingerprint],
        revision_print: &Fingerprint,
        tpar: f64,
    ) -> f64 {
        let revision_hashes = revision_print.hash_set();
        let mut considered = 0usize;
        let mut disclosed = 0usize;
        for paragraph in base_paragraphs {
            let hashes = paragraph.hash_set();
            if hashes.is_empty() {
                continue;
            }
            considered += 1;
            let d = disclosure_between(&hashes, &revision_hashes);
            if d >= tpar && d > 0.0 {
                disclosed += 1;
            }
        }
        if considered == 0 {
            0.0
        } else {
            disclosed as f64 / considered as f64
        }
    }
}

fn base_fingerprints(doc: &browserflow_corpus::Document) -> Vec<Fingerprint> {
    let fp = paper_fingerprinter();
    doc.paragraphs()
        .iter()
        .map(|p| fp.fingerprint(&p.text()))
        .collect()
}

#[test]
fn base_revision_is_fully_disclosed_by_itself() {
    let manuals = ManualsDataset::generate(2);
    let fp = paper_fingerprinter();
    for chapter in manuals.chapters() {
        let base = base_fingerprints(chapter.chain.base());
        let self_print = fp.fingerprint(&chapter.chain.base().text());
        assert_eq!(
            disclosed_fraction(&base, &self_print, 0.5),
            1.0,
            "{}",
            chapter.kind.name()
        );
    }
}

#[test]
fn frozen_chapter_stays_fully_disclosed() {
    let manuals = ManualsDataset::generate(2);
    let fp = paper_fingerprinter();
    let chapter = manuals.chapter(ManualChapterKind::MySqlWhatsMySql);
    let base = base_fingerprints(chapter.chain.base());
    for version in 0..4 {
        let print = fp.fingerprint(&chapter.chain.revision(version).text());
        assert_eq!(disclosed_fraction(&base, &print, 0.5), 1.0);
    }
}

#[test]
fn detection_tracks_ground_truth_within_ten_percent_at_default_threshold() {
    // The Figure 10 claim: BrowserFlow's decisions match the ground truth.
    let manuals = ManualsDataset::generate(2);
    let fp = paper_fingerprinter();
    for chapter in manuals.chapters() {
        let base = base_fingerprints(chapter.chain.base());
        for version in 0..chapter.chain.len() {
            let truth = chapter.ground_truth(version, 0.5).disclosed_fraction();
            let print = fp.fingerprint(&chapter.chain.revision(version).text());
            let detected = disclosed_fraction(&base, &print, 0.5);
            assert!(
                (truth - detected).abs() <= 0.10,
                "{} v{}: truth {:.2} vs detected {:.2}",
                chapter.kind.name(),
                version,
                truth,
                detected
            );
        }
    }
}

#[test]
fn iphone_chapters_decay_and_monotonically_lose_disclosure() {
    let manuals = ManualsDataset::generate(2);
    let fp = paper_fingerprinter();
    for kind in [
        ManualChapterKind::IphoneCamera,
        ManualChapterKind::IphoneMessage,
    ] {
        let chapter = manuals.chapter(kind);
        let base = base_fingerprints(chapter.chain.base());
        let series: Vec<f64> = (0..4)
            .map(|v| {
                let print = fp.fingerprint(&chapter.chain.revision(v).text());
                disclosed_fraction(&base, &print, 0.5)
            })
            .collect();
        for window in series.windows(2) {
            assert!(window[1] <= window[0] + 1e-9, "{kind:?}: {series:?}");
        }
        assert!(
            series[3] <= 0.25,
            "{kind:?} must decay below 25%: {series:?}"
        );
    }
}

#[test]
fn threshold_sweep_agreement_exceeds_ninety_percent_in_plateau() {
    // The Figure 11 claim: >90% agreement for Tpar in [0.2, 0.8].
    let manuals = ManualsDataset::generate(2);
    let fp = paper_fingerprinter();
    for tpar in [0.2, 0.35, 0.5, 0.65, 0.8] {
        let mut agree = 0usize;
        let mut considered = 0usize;
        for chapter in manuals.chapters() {
            let base = base_fingerprints(chapter.chain.base());
            for version in 1..chapter.chain.len() {
                let truth = chapter.ground_truth(version, 0.5);
                let revision_hashes = fp
                    .fingerprint(&chapter.chain.revision(version).text())
                    .hash_set();
                for (index, paragraph) in base.iter().enumerate() {
                    let hashes = paragraph.hash_set();
                    if hashes.is_empty() {
                        continue;
                    }
                    considered += 1;
                    let d = browserflow_store::disclosure_between(&hashes, &revision_hashes);
                    let found = d >= tpar && d > 0.0;
                    if found == truth.is_disclosed(index) {
                        agree += 1;
                    }
                }
            }
        }
        let agreement = agree as f64 / considered as f64;
        assert!(
            agreement > 0.9,
            "agreement {agreement:.3} at Tpar {tpar} below the paper's 90%"
        );
    }
}

#[test]
fn wikipedia_low_churn_keeps_high_disclosure_high_churn_decays() {
    let config = WikipediaConfig {
        articles: 6,
        revisions: 60,
        paragraphs: 15,
        sentences: 4,
        high_churn_fraction: 0.5,
    };
    let wikipedia = WikipediaDataset::generate(1, &config);
    let fp = paper_fingerprinter();

    let final_disclosure = |level: ChurnLevel| -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for article in wikipedia.by_churn(level) {
            let base = base_fingerprints(article.chain.base());
            let last = fp.fingerprint(&article.chain.revision(config.revisions).text());
            total += disclosed_fraction(&base, &last, 0.5);
            count += 1;
        }
        total / count as f64
    };

    let low = final_disclosure(ChurnLevel::Low);
    let high = final_disclosure(ChurnLevel::High);
    assert!(
        low > 0.5,
        "low-churn articles should stay mostly disclosed, got {low:.2}"
    );
    assert!(
        high < low,
        "high-churn must decay below low-churn ({high:.2} vs {low:.2})"
    );
    assert!(
        high < 0.5,
        "high-churn should fall below 50% by the last revision, got {high:.2}"
    );
}

#[test]
fn length_change_heuristic_separates_churn_groups() {
    // Figure 8's premise: relative length change correlates with churn.
    let config = WikipediaConfig {
        articles: 8,
        revisions: 60,
        paragraphs: 12,
        sentences: 4,
        high_churn_fraction: 0.5,
    };
    let wikipedia = WikipediaDataset::generate(7, &config);
    let mean = |level: ChurnLevel| {
        let v: Vec<f64> = wikipedia
            .by_churn(level)
            .map(|a| a.chain.relative_length_change())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(mean(ChurnLevel::High) > 2.0 * mean(ChurnLevel::Low));
}
