//! Document-granularity tracking (§4.1): "for some documents, a
//! significant number of individual paragraphs can be revealed without
//! disclosing the document's content, but revealing one sentence from each
//! paragraph would disclose the document."

use browserflow::plugin::Plugin;
use browserflow::{BrowserFlow, CheckRequest, DocKey, EnforcementMode, UploadAction};
use browserflow_browser::services::DocsApp;
use browserflow_browser::Browser;
use browserflow_corpus::TextGen;
use browserflow_tdm::{Service, ServiceId, Tag, TagSet};

fn source_document() -> Vec<String> {
    let mut gen = TextGen::new(2026);
    (0..6).map(|_| gen.paragraph(4)).collect()
}

/// One sentence (roughly the first quarter) of each paragraph.
fn one_sentence_each(paragraphs: &[String]) -> String {
    paragraphs
        .iter()
        .map(|p| p.split(". ").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join(". ")
}

fn flow() -> BrowserFlow {
    let ts = Tag::new("spec").unwrap();
    BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("internal", "Internal Specs")
                .with_privilege(TagSet::from_iter([ts.clone()]))
                .with_confidentiality(TagSet::from_iter([ts])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .unwrap()
}

#[test]
fn one_sentence_per_paragraph_evades_tpar_but_trips_tdoc() {
    let flow = flow();
    let paragraphs = source_document();
    let internal: ServiceId = "internal".into();
    let full_text = paragraphs.join("\n\n");

    for (i, p) in paragraphs.iter().enumerate() {
        flow.observe_paragraph(&internal, "spec", i, p).unwrap();
    }
    flow.observe_document(&internal, "spec", &full_text)
        .unwrap();
    // The document's author sets a low Tdoc: even partial cross-paragraph
    // leakage matters (§4.2: thresholds are per-document).
    assert!(flow
        .engine()
        .set_document_threshold(&DocKey::new("internal", "spec"), 0.1));

    let gdocs: ServiceId = "gdocs".into();
    let leak = one_sentence_each(&paragraphs);

    // Paragraph granularity: each source paragraph is disclosed well below
    // Tpar = 0.5, so the per-paragraph check stays silent.
    let decision = flow
        .check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &leak))
        .unwrap();
    assert_eq!(
        decision.action,
        UploadAction::Allow,
        "one sentence per paragraph must stay below Tpar"
    );

    // Document granularity: the same text trips the Tdoc requirement.
    let decision = flow.check_document_upload(&gdocs, "draft", &leak).unwrap();
    assert_eq!(decision.action, UploadAction::Block);
    assert_eq!(decision.violations.len(), 1);
    assert!(decision.violations[0].disclosure >= 0.1);
}

#[test]
fn full_copy_trips_both_granularities() {
    let flow = flow();
    let paragraphs = source_document();
    let internal: ServiceId = "internal".into();
    for (i, p) in paragraphs.iter().enumerate() {
        flow.observe_paragraph(&internal, "spec", i, p).unwrap();
    }
    flow.observe_document(&internal, "spec", &paragraphs.join("\n\n"))
        .unwrap();

    let gdocs: ServiceId = "gdocs".into();
    let copied = paragraphs[2].clone();
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &copied))
            .unwrap()
            .action,
        UploadAction::Block
    );
    let full = paragraphs.join("\n\n");
    assert_eq!(
        flow.check_document_upload(&gdocs, "draft", &full)
            .unwrap()
            .action,
        UploadAction::Block
    );
}

#[test]
fn plugin_flags_the_editor_on_document_level_disclosure() {
    let ts = Tag::new("spec").unwrap();
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Advisory)
        .service(
            Service::new("internal", "Internal Specs")
                .with_privilege(TagSet::from_iter([ts.clone()]))
                .with_confidentiality(TagSet::from_iter([ts])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .unwrap();
    let plugin = Plugin::new(flow);
    plugin.bind_origin("https://docs.example.com", "gdocs", "draft");

    let paragraphs = source_document();
    let internal: ServiceId = "internal".into();
    {
        let state = plugin.state();
        let flow = state.read();
        for (i, p) in paragraphs.iter().enumerate() {
            flow.observe_paragraph(&internal, "spec", i, p).unwrap();
        }
        flow.observe_document(&internal, "spec", &paragraphs.join("\n\n"))
            .unwrap();
        flow.engine()
            .set_document_threshold(&DocKey::new("internal", "spec"), 0.1);
    }

    let mut browser = Browser::new();
    plugin.install(&mut browser);
    let tab = browser.open_tab("https://docs.example.com");
    let mut docs = DocsApp::attach(&mut browser, tab);
    plugin.watch_docs(&mut browser, &docs);

    // Type one sentence from each source paragraph into separate editor
    // paragraphs: every per-paragraph check passes...
    for (i, p) in paragraphs.iter().enumerate() {
        docs.create_paragraph(&mut browser);
        let sentence = p.split(". ").next().unwrap().to_string();
        assert!(docs.type_text(&mut browser, i, &sentence).is_delivered());
    }
    // ...but the editor as a whole is flagged for document-level
    // disclosure.
    let editor = docs.editor();
    assert_eq!(
        browser
            .tab(tab)
            .document()
            .attr(editor, "data-bf-doc-flagged"),
        Some("true")
    );
}

#[test]
fn violations_carry_matching_spans() {
    let flow = flow();
    let paragraphs = source_document();
    let internal: ServiceId = "internal".into();
    flow.observe_paragraph(&internal, "spec", 0, &paragraphs[0])
        .unwrap();

    let gdocs: ServiceId = "gdocs".into();
    let framed = format!(
        "totally new framing text before the leak {} and after",
        paragraphs[0]
    );
    let decision = flow
        .check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &framed))
        .unwrap();
    assert_eq!(decision.action, UploadAction::Block);
    let spans = &decision.violations[0].matching_spans;
    assert!(!spans.is_empty());
    let leak_start = framed.find(&paragraphs[0]).unwrap();
    for span in spans {
        assert!(span.start < span.end && span.end <= framed.len());
        // Every highlighted passage overlaps the actual leaked region
        // (n-grams may straddle its boundary by a few characters).
        assert!(
            span.end > leak_start,
            "span {span:?} entirely before the leaked region at {leak_start}"
        );
    }
    // The highlighted region covers most of the leaked text.
    let covered: usize = {
        let mut covered = vec![false; framed.len()];
        for span in spans {
            for flag in &mut covered[span.clone()] {
                *flag = true;
            }
        }
        covered[leak_start..leak_start + paragraphs[0].len()]
            .iter()
            .filter(|&&c| c)
            .count()
    };
    assert!(
        covered as f64 / paragraphs[0].len() as f64 > 0.5,
        "spans cover only {covered} of {} leaked bytes",
        paragraphs[0].len()
    );
}
