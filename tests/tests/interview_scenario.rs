//! End-to-end reproduction of the paper's running example (Figures 1–6)
//! through the full stack: simulated browser, plug-in, middleware, TDM.

use browserflow::plugin::Plugin;
use browserflow::{BrowserFlow, DocKey, EnforcementMode, EngineConfig, SegmentKey};
use browserflow_browser::services::{static_site, DocsApp, WikiApp};
use browserflow_browser::Browser;
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, Tag, TagSet, UserId};

const ITOOL: &str = "https://itool.internal";
const WIKI: &str = "https://wiki.internal";
const GDOCS: &str = "https://docs.google.example";

const EVALUATION: &str =
    "Candidate 4711 communicated clearly, solved the systems design problem with a \
     clean sharded architecture, but struggled with the consensus follow-ups.";
const GUIDELINES: &str =
    "Interviewing guidelines: start with a warm-up question, calibrate against the \
     rubric, and write the feedback within twenty-four hours of the interview.";

fn tag(name: &str) -> Tag {
    Tag::new(name).unwrap()
}

/// Small-n fingerprinting so short test paragraphs fingerprint robustly.
fn engine_config() -> EngineConfig {
    EngineConfig {
        fingerprint: FingerprintConfig::builder()
            .ngram_len(8)
            .window(6)
            .build()
            .unwrap(),
        ..EngineConfig::default()
    }
}

fn figure1_plugin(mode: EnforcementMode) -> Plugin {
    let flow = BrowserFlow::builder()
        .mode(mode)
        .engine(engine_config())
        .service(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([tag("ti")]))
                .with_confidentiality(TagSet::from_iter([tag("ti")])),
        )
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tag("tw")]))
                .with_confidentiality(TagSet::from_iter([tag("tw")])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .unwrap();
    let plugin = Plugin::new(flow);
    plugin.bind_origin(ITOOL, "itool", "itool-page");
    plugin.bind_origin(WIKI, "wiki", "wiki-page");
    plugin.bind_origin(GDOCS, "gdocs", "gdocs-doc");
    plugin
}

#[test]
fn paste_between_internal_services_is_blocked() {
    // Figure 3 step 2: Interview Tool -> Wiki violates {ti} ⊄ {tw}.
    let plugin = figure1_plugin(EnforcementMode::Block);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let page = static_site::article_page("Evaluation", &[EVALUATION.to_string()]);
    let itool_tab = browser.open_tab_with_html(ITOOL, &page);
    assert_eq!(plugin.observe_page(&browser, itool_tab), 1);

    // The wiki is form-based: paste into its edit form and save.
    let wiki_tab = browser.open_tab(WIKI);
    let wiki = WikiApp::attach(&mut browser, wiki_tab);
    browser.copy(EVALUATION);
    let pasted = browser.paste().unwrap();
    wiki.set_content(&mut browser, &pasted);
    let result = wiki.save(&mut browser);
    assert!(!result.is_delivered());
    assert_eq!(browser.backend(WIKI).upload_count(), 0);
}

#[test]
fn public_gdocs_text_flows_to_internal_services() {
    // Figure 3 step 3: Google Docs text is public (Lc = {}).
    let plugin = figure1_plugin(EnforcementMode::Block);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let public = "A public blog post about rust borrow checking and lifetimes.";
    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    docs.create_paragraph(&mut browser);
    assert!(docs.type_text(&mut browser, 0, public).is_delivered());

    // Copy to the wiki: permitted.
    let wiki_tab = browser.open_tab(WIKI);
    let wiki = WikiApp::attach(&mut browser, wiki_tab);
    wiki.set_content(&mut browser, public);
    assert!(wiki.save(&mut browser).is_delivered());
    assert!(browser.backend(WIKI).saw_text("borrow checking"));
}

#[test]
fn docs_editor_blocks_and_flags_only_the_sensitive_paragraph() {
    let plugin = figure1_plugin(EnforcementMode::Block);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let wiki_page = static_site::article_page("Guidelines", &[GUIDELINES.to_string()]);
    let wiki_tab = browser.open_tab_with_html(WIKI, &wiki_page);
    plugin.observe_page(&browser, wiki_tab);

    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    docs.create_paragraph(&mut browser);
    docs.create_paragraph(&mut browser);

    assert!(docs
        .type_text(&mut browser, 0, "harmless meeting agenda for thursday")
        .is_delivered());
    assert!(!docs.type_text(&mut browser, 1, GUIDELINES).is_delivered());

    let document = browser.tab(docs_tab).document();
    let p0 = docs.paragraph_node(&browser, 0);
    let p1 = docs.paragraph_node(&browser, 1);
    assert_eq!(document.attr(p0, "data-bf-flagged"), Some("false"));
    assert_eq!(document.attr(p1, "data-bf-flagged"), Some("true"));
    assert!(!browser.backend(GDOCS).saw_text("rubric"));
}

#[test]
fn suppression_then_upload_succeeds_and_is_audited() {
    // Figure 4 through the full stack.
    let plugin = figure1_plugin(EnforcementMode::Block);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let wiki_page = static_site::article_page("Guidelines", &[GUIDELINES.to_string()]);
    let wiki_tab = browser.open_tab_with_html(WIKI, &wiki_page);
    plugin.observe_page(&browser, wiki_tab);

    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    docs.create_paragraph(&mut browser);
    assert!(!docs.type_text(&mut browser, 0, GUIDELINES).is_delivered());

    // Alice suppresses tw on the wiki source paragraph.
    {
        let state = plugin.state();
        let mut flow = state.write();
        let key = SegmentKey::paragraph(DocKey::new("wiki", "wiki-page"), 0);
        assert!(flow
            .suppress_tag(
                &key,
                &tag("tw"),
                &UserId::new("alice"),
                "approved for sharing"
            )
            .unwrap());
        assert_eq!(flow.policy().audit_log().len(), 1);
    }

    // Re-typing the same content now syncs successfully.
    assert!(docs
        .set_paragraph_text(&mut browser, 0, GUIDELINES)
        .is_delivered());
    assert!(browser.backend(GDOCS).saw_text("warm-up question"));
}

#[test]
fn advisory_mode_releases_but_records_warnings() {
    let plugin = figure1_plugin(EnforcementMode::Advisory);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let wiki_page = static_site::article_page("Guidelines", &[GUIDELINES.to_string()]);
    let wiki_tab = browser.open_tab_with_html(WIKI, &wiki_page);
    plugin.observe_page(&browser, wiki_tab);

    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    docs.create_paragraph(&mut browser);
    // Advisory: delivered despite the violation...
    assert!(docs.type_text(&mut browser, 0, GUIDELINES).is_delivered());
    // ...the paragraph is flagged...
    let p0 = docs.paragraph_node(&browser, 0);
    assert_eq!(
        browser.tab(docs_tab).document().attr(p0, "data-bf-flagged"),
        Some("true")
    );
    // ...and warnings were recorded for the audit trail.
    let state = plugin.state();
    assert!(!state.read().warnings().is_empty());
}

#[test]
fn encrypt_mode_seals_form_fields_but_not_clean_ones() {
    let plugin = figure1_plugin(EnforcementMode::Encrypt);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let itool_page = static_site::article_page("Evaluation", &[EVALUATION.to_string()]);
    let itool_tab = browser.open_tab_with_html(ITOOL, &itool_page);
    plugin.observe_page(&browser, itool_tab);

    let wiki_tab = browser.open_tab(WIKI);
    let wiki = WikiApp::attach(&mut browser, wiki_tab);
    wiki.set_title(&mut browser, "status");
    wiki.set_content(&mut browser, EVALUATION);
    assert!(wiki.save(&mut browser).is_delivered());

    let backend = browser.backend(WIKI);
    assert!(backend.saw_text("bf-sealed:"));
    assert!(!backend.saw_text("sharded architecture"));
    // The clean title field stays plaintext.
    assert!(backend.saw_text("title=status"));
}

#[test]
fn transitive_flow_is_tracked_via_similarity_not_provenance() {
    // itool -> (user retypes by hand into) gdocs: there is no explicit
    // copy event anywhere, yet the similarity match still catches it.
    let plugin = figure1_plugin(EnforcementMode::Block);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let itool_page = static_site::article_page("Evaluation", &[EVALUATION.to_string()]);
    let itool_tab = browser.open_tab_with_html(ITOOL, &itool_page);
    plugin.observe_page(&browser, itool_tab);

    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    docs.create_paragraph(&mut browser);
    // Retyped with different casing and punctuation, plus framing.
    let retyped = format!(
        "Notes to self: {} Will follow up tomorrow.",
        EVALUATION.to_uppercase()
    );
    assert!(!docs.type_text(&mut browser, 0, &retyped).is_delivered());
}
