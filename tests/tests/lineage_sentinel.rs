//! Cross-service lineage tracking and the exfiltration sentinel, end to
//! end through the simulated browser and plug-in.
//!
//! The covert chain under test is the issue's running example: a public
//! Google Docs draft picks up wiki-confidential material as it is
//! archived on the internal wiki, and the wiki rendition is then pasted
//! into the interview tool — three services, two boundary crossings,
//! one violating upload. The sentinel must reconstruct the whole chain
//! and issue a containment receipt referencing every hop.

use browserflow::plugin::Plugin;
use browserflow::{BrowserFlow, EnforcementMode, EngineConfig, FlowOperation};
use browserflow_browser::services::{static_site, DocsApp, WikiApp};
use browserflow_browser::Browser;
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, Tag, TagSet};

const ITOOL: &str = "https://itool.internal";
const WIKI: &str = "https://wiki.internal";
const GDOCS: &str = "https://docs.google.example";

const DRAFT: &str = "Hiring debrief draft: the panel leaned positive on candidate 4711, with the \
     systems round carrying the decision and the coding round a close second.";

fn tag(name: &str) -> Tag {
    Tag::new(name).unwrap()
}

fn plugin(mode: EnforcementMode) -> Plugin {
    let flow = BrowserFlow::builder()
        .mode(mode)
        .engine(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(8)
                .window(6)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
        .service(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([tag("ti")]))
                .with_confidentiality(TagSet::from_iter([tag("ti")])),
        )
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tag("tw")]))
                .with_confidentiality(TagSet::from_iter([tag("tw")])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .unwrap();
    let plugin = Plugin::new(flow);
    plugin.bind_origin(ITOOL, "itool", "itool-page");
    plugin.bind_origin(WIKI, "wiki", "wiki-page");
    plugin.bind_origin(GDOCS, "gdocs", "gdocs-doc");
    plugin
}

/// Drives the docs → wiki → interview-tool chain through the browser and
/// returns the wiki rendition that was finally pasted into the tool.
fn run_covert_chain(plugin: &Plugin, browser: &mut Browser) -> String {
    // Hop 0 origin: a public draft typed into Google Docs (tracked, but
    // carrying no tags yet).
    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(browser, docs_tab);
    plugin.watch_docs(browser, &docs);
    docs.create_paragraph(browser);
    assert!(docs.type_text(browser, 0, DRAFT).is_delivered());

    // Hop 1: the draft is archived on the internal wiki with the
    // archivist's own framing, so the wiki page becomes authoritative
    // for its rendition and the content picks up the wiki's tag.
    let archived = format!("{DRAFT} (archived on the interview-process wiki)");
    let wiki_page = static_site::article_page("Debrief", std::slice::from_ref(&archived));
    let wiki_tab = browser.open_tab_with_html(WIKI, &wiki_page);
    assert_eq!(plugin.observe_page(browser, wiki_tab), 1);

    // Hop 2: the wiki rendition is pasted into the interview tool's
    // feedback form — the tool is not privileged for wiki content.
    let itool_tab = browser.open_tab(ITOOL);
    let form = WikiApp::attach(browser, itool_tab);
    browser.copy(&archived);
    let pasted = browser.paste().unwrap();
    form.set_content(browser, &pasted);
    assert!(!form.save(browser).is_delivered());
    assert_eq!(browser.backend(ITOOL).upload_count(), 0);
    archived
}

#[test]
fn three_hop_chain_raises_alert_with_receipt_referencing_every_hop() {
    let plugin = plugin(EnforcementMode::Block);
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    run_covert_chain(&plugin, &mut browser);

    let state = plugin.state();
    let flow = state.read();

    // The lineage graph recorded both boundary crossings.
    let edges = flow.lineage().edges();
    assert!(
        edges
            .iter()
            .any(|e| e.source == "gdocs" && e.sink == "wiki"),
        "missing gdocs→wiki edge: {edges:?}"
    );
    assert!(
        edges
            .iter()
            .any(|e| e.source == "wiki" && e.sink == "itool"),
        "missing wiki→itool edge: {edges:?}"
    );

    // One structured alert for the violating upload, chain origin first.
    let alerts = flow.alerts();
    assert_eq!(alerts.len(), 1, "{alerts:?}");
    let alert = &alerts[0];
    assert_eq!(alert.sink, "itool");
    assert_eq!(alert.hops.len(), 2);
    assert_eq!(alert.hops[0].source, "gdocs");
    assert_eq!(alert.hops[0].sink, "wiki");
    assert_eq!(alert.hops[0].operation, FlowOperation::Observe);
    assert_eq!(alert.hops[1].source, "wiki");
    assert_eq!(alert.hops[1].sink, "itool");
    assert!(alert.missing_tags.iter().any(|t| t == "tw"));

    // The containment receipt references every hop in the chain and ties
    // into the report and audit trails.
    let receipt = &alert.receipt;
    assert_eq!(receipt.alert_id, alert.id);
    assert_eq!(receipt.action, "block");
    assert_eq!(
        receipt.hop_clocks,
        alert.hops.iter().map(|h| h.clock).collect::<Vec<_>>()
    );
    let warning = &flow.warnings()[receipt.warning_index as usize];
    assert_eq!(warning.segment.to_string(), alert.segment);
    assert_eq!(receipt.audit_len, flow.policy().audit_log().len() as u64);
}

#[test]
fn lineage_survives_state_roundtrip_byte_for_byte() {
    let plugin = plugin(EnforcementMode::Block);
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    run_covert_chain(&plugin, &mut browser);

    let state = plugin.state();
    let flow = state.read();
    let snapshot = flow.lineage_snapshot();
    assert!(!snapshot.is_empty());

    let mut restored = BrowserFlow::builder()
        .policy(flow.policy().clone())
        .build()
        .unwrap();
    restored.restore_lineage(&snapshot).unwrap();
    assert_eq!(restored.lineage().edges(), flow.lineage().edges());
    assert_eq!(restored.lineage().clock(), flow.lineage().clock());
    assert_eq!(restored.lineage_snapshot(), snapshot);
}

#[test]
fn advisory_mode_alert_reports_warn_action_and_delivers() {
    let plugin = plugin(EnforcementMode::Advisory);
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    docs.create_paragraph(&mut browser);
    assert!(docs.type_text(&mut browser, 0, DRAFT).is_delivered());

    let archived = format!("{DRAFT} (archived on the interview-process wiki)");
    let wiki_page = static_site::article_page("Debrief", std::slice::from_ref(&archived));
    let wiki_tab = browser.open_tab_with_html(WIKI, &wiki_page);
    plugin.observe_page(&browser, wiki_tab);

    let itool_tab = browser.open_tab(ITOOL);
    let form = WikiApp::attach(&mut browser, itool_tab);
    form.set_content(&mut browser, &archived);
    // Advisory mode releases the upload but still raises the alert, and
    // the receipt records the weaker enforcement.
    assert!(form.save(&mut browser).is_delivered());

    let state = plugin.state();
    let flow = state.read();
    let alerts = flow.alerts();
    assert_eq!(alerts.len(), 1, "{alerts:?}");
    assert_eq!(alerts[0].receipt.action, "warn");
    assert_eq!(alerts[0].hops.len(), 2);
}
