//! End-to-end coverage of the Evernote-like notes service: a service with
//! its own wire format is supported through a service-specific sync-body
//! parser (§5.2 / §4.4).

use browserflow::plugin::Plugin;
use browserflow::{BrowserFlow, EnforcementMode, EngineConfig};
use browserflow_browser::services::{parse_notes_sync, static_site, NotesApp};
use browserflow_browser::Browser;
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, Tag, TagSet};

const WIKI: &str = "https://wiki.internal";
const NOTES: &str = "https://notes.example.com";

const SECRET: &str = "the incident postmortem names the exact customer accounts that \
                      were exposed during the march outage and the remediation owed";

fn plugin(mode: EnforcementMode) -> Plugin {
    let tw = Tag::new("tw").unwrap();
    let flow = BrowserFlow::builder()
        .mode(mode)
        .engine(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(8)
                .window(6)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone()]))
                .with_confidentiality(TagSet::from_iter([tw])),
        )
        .service(Service::new("notes", "External Notes"))
        .build()
        .unwrap();
    let plugin = Plugin::new(flow);
    plugin.bind_origin(WIKI, "wiki", "wiki-page");
    plugin.bind_origin_with_parser(NOTES, "notes", "scratch-note", parse_notes_sync);
    plugin
}

fn browser_with_secret(plugin: &Plugin) -> Browser {
    let mut browser = Browser::new();
    plugin.install(&mut browser);
    let page = static_site::article_page("Postmortem", &[SECRET.to_string()]);
    let wiki_tab = browser.open_tab_with_html(WIKI, &page);
    assert_eq!(plugin.observe_page(&browser, wiki_tab), 1);
    browser
}

#[test]
fn pasting_into_a_note_block_is_blocked() {
    let plugin = plugin(EnforcementMode::Block);
    let mut browser = browser_with_secret(&plugin);

    let tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, tab);
    plugin.watch_notes(&mut browser, &notes);

    // Harmless title goes through.
    assert!(notes.set_title(&mut browser, "scratch").is_delivered());
    // The pasted secret is suppressed; the backend never sees it.
    let (_, result) = notes.add_block(&mut browser, SECRET);
    assert!(!result.is_delivered());
    assert!(!browser.backend(NOTES).saw_text("postmortem"));
    // The note block is flagged in the UI.
    let block = notes.block_node(&browser, 0);
    assert_eq!(
        browser.tab(tab).document().attr(block, "data-bf-flagged"),
        Some("true")
    );
}

#[test]
fn secret_in_the_title_is_also_caught() {
    // The title is segment 0 under the notes parser — a different index
    // mapping than the docs editor, exercised here.
    let plugin = plugin(EnforcementMode::Block);
    let mut browser = browser_with_secret(&plugin);
    let tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, tab);
    plugin.watch_notes(&mut browser, &notes);
    let result = notes.set_title(&mut browser, SECRET);
    assert!(!result.is_delivered());
    assert!(!browser.backend(NOTES).saw_text("postmortem"));
}

#[test]
fn encrypt_mode_preserves_the_notes_wire_shape() {
    let plugin = plugin(EnforcementMode::Encrypt);
    let mut browser = browser_with_secret(&plugin);
    let tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, tab);
    plugin.watch_notes(&mut browser, &notes);
    let (_, result) = notes.add_block(&mut browser, SECRET);
    assert!(result.is_delivered());
    let backend = browser.backend(NOTES);
    let uploads = backend.uploads();
    let sealed = uploads
        .iter()
        .find(|u| u.body.contains("bf-sealed:"))
        .expect("a sealed upload exists");
    // The wire shape survives: still a note-sync for block0.
    assert!(
        sealed.body.starts_with("note-sync block0="),
        "{}",
        sealed.body
    );
    assert!(!backend.saw_text("postmortem"));
}

#[test]
fn editing_the_secret_away_releases_the_block() {
    let plugin = plugin(EnforcementMode::Block);
    let mut browser = browser_with_secret(&plugin);
    let tab = browser.open_tab(NOTES);
    let mut notes = NotesApp::attach(&mut browser, tab);
    plugin.watch_notes(&mut browser, &notes);
    let (index, result) = notes.add_block(&mut browser, SECRET);
    assert!(!result.is_delivered());
    // The user rewrites the block entirely.
    let rewritten = "our team will publish a public summary after legal review is done \
                     and customers have been individually informed of next steps";
    let result = notes.set_block(&mut browser, index, rewritten);
    assert!(result.is_delivered());
    assert!(browser.backend(NOTES).saw_text("public summary"));
}
