//! Integration tests for the performance machinery (§6.2) — asynchronous
//! decisions, decision caching — and the fingerprint-at-rest protections
//! of §4.4 (encryption, eviction).

use browserflow::{
    AsyncDecider, BrowserFlow, CheckRequest, EnforcementMode, EngineConfig, UploadAction,
};
use browserflow_corpus::TextGen;
use browserflow_store::{EncryptionError, StoreKey};
use browserflow_tdm::{Service, ServiceId, Tag, TagSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn corpus_flow(paragraphs: usize, cache: bool) -> BrowserFlow {
    let lib = Tag::new("library").unwrap();
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Advisory)
        .engine(EngineConfig {
            cache_decisions: cache,
            ..EngineConfig::default()
        })
        .service(
            Service::new("library", "Library")
                .with_privilege(TagSet::from_iter([lib.clone()]))
                .with_confidentiality(TagSet::from_iter([lib])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .unwrap();
    let mut gen = TextGen::new(77);
    let library: ServiceId = "library".into();
    for i in 0..paragraphs {
        let text = gen.paragraph(7);
        flow.index_paragraph(&library, "corpus", i, &text).unwrap();
    }
    flow
}

#[test]
fn async_decisions_complete_quickly_against_a_loaded_store() {
    let flow = corpus_flow(500, true);
    let decider = AsyncDecider::spawn(flow);
    let gdocs: ServiceId = "gdocs".into();
    let mut gen = TextGen::new(88);
    for i in 0..50 {
        let text = gen.paragraph(6);
        let timed = decider.check(&gdocs, "draft", i, text.as_str()).unwrap();
        // Very generous bound — the paper's is 200 ms on 2014 hardware in
        // a browser; a debug-build Rust check on 500 paragraphs must be
        // well under a second.
        assert!(
            timed.latency < Duration::from_secs(1),
            "decision took {:?}",
            timed.latency
        );
    }
    decider.shutdown().unwrap();
}

#[test]
fn cache_serves_repeated_checks_and_counts_hits() {
    let flow = corpus_flow(200, true);
    let gdocs: ServiceId = "gdocs".into();
    let mut gen = TextGen::new(99);
    let text = gen.paragraph(7);
    flow.check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &text))
        .unwrap();
    let (hits_before, misses_before) = flow.engine().cache_stats();
    for _ in 0..10 {
        flow.check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &text))
            .unwrap();
    }
    let (hits_after, misses_after) = flow.engine().cache_stats();
    assert_eq!(hits_after - hits_before, 10);
    assert_eq!(misses_after, misses_before);
}

#[test]
fn cache_and_nocache_agree_on_decisions() {
    let cached = corpus_flow(300, true);
    let uncached = corpus_flow(300, false);
    let gdocs: ServiceId = "gdocs".into();
    // One known paragraph (re-derive the same generator stream).
    let mut gen = TextGen::new(77);
    let known = gen.paragraph(7);
    let mut probe_gen = TextGen::new(111);
    for (i, text) in [known, probe_gen.paragraph(7), probe_gen.paragraph(5)]
        .iter()
        .enumerate()
    {
        let a = cached
            .check_one(&CheckRequest::paragraph(&gdocs, "draft", i, text))
            .unwrap();
        let b = uncached
            .check_one(&CheckRequest::paragraph(&gdocs, "draft", i, text))
            .unwrap();
        assert_eq!(a.action, b.action, "probe {i}");
        assert_eq!(a.violations.len(), b.violations.len(), "probe {i}");
    }
}

#[test]
fn keystroke_cadence_mostly_hits_the_cache() {
    // §6.2: "one keystroke typically does not alter the winnowing
    // fingerprint of a paragraph, permitting BrowserFlow to reuse its
    // previous response".
    let flow = corpus_flow(100, true);
    let gdocs: ServiceId = "gdocs".into();
    let mut gen = TextGen::new(123);
    let full = gen.paragraph(8);
    let chars: Vec<char> = full.chars().collect();
    let mut typed = String::new();
    for &c in &chars {
        typed.push(c);
        flow.check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &typed))
            .unwrap();
    }
    let (hits, misses) = flow.engine().cache_stats();
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_rate > 0.5,
        "expected most keystrokes to reuse the cached decision, hit rate {hit_rate:.2}"
    );
}

#[test]
fn upload_action_depends_only_on_mode_for_same_state() {
    for (mode, expected) in [
        (EnforcementMode::Advisory, UploadAction::Warn),
        (EnforcementMode::Block, UploadAction::Block),
        (EnforcementMode::Encrypt, UploadAction::Encrypt),
    ] {
        let mut flow = corpus_flow(50, true);
        flow.set_mode(mode);
        let gdocs: ServiceId = "gdocs".into();
        let mut gen = TextGen::new(77);
        let known = gen.paragraph(7); // the first indexed paragraph
        let decision = flow
            .check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &known))
            .unwrap();
        assert_eq!(decision.action, expected, "{mode:?}");
    }
}

#[test]
fn sealed_fingerprint_data_roundtrips_and_detects_tampering() {
    let mut rng = StdRng::seed_from_u64(5);
    let key = StoreKey::generate(&mut rng);
    let payload = b"serialised DBpar contents".to_vec();
    let sealed = key.seal_auto(&payload);
    assert_eq!(key.unseal(&sealed).unwrap(), payload);

    let other = StoreKey::generate(&mut rng);
    assert_eq!(
        other.unseal(&sealed),
        Err(EncryptionError::IntegrityFailure)
    );
}

#[test]
fn eviction_forgets_old_fingerprints() {
    // §4.4: periodic removal of old fingerprints limits the at-rest
    // attack surface; evicted sources are no longer reported.
    let flow = corpus_flow(20, true);
    let gdocs: ServiceId = "gdocs".into();
    let mut gen = TextGen::new(77);
    let known = gen.paragraph(7);
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph(&gdocs, "draft", 0, &known))
            .unwrap()
            .action,
        UploadAction::Warn
    );
    // Evict everything indexed so far.
    let now = flow.engine().paragraph_count(); // proxy: all were indexed before "now"
    assert!(now > 0);
    let evicted = flow.engine().evict_paragraphs_older_than_now();
    assert!(evicted > 0);
    let decision = flow
        .check_one(&CheckRequest::paragraph(&gdocs, "draft2", 0, &known))
        .unwrap();
    assert_eq!(decision.action, UploadAction::Allow);
}
