//! Integration tests for the asynchronous decision pipeline: coalescing
//! equivalence under keystroke storms, backpressure reachability and
//! recovery, batch/sequential decision equivalence through the decider,
//! shutdown-vs-drop reply semantics, and the timeout path.

use browserflow::{
    AsyncDecider, BrowserFlow, CheckRequest, DeciderConfig, DeciderError, EnforcementMode,
    TrySubmitError, UploadAction,
};
use browserflow_corpus::TextGen;
use browserflow_tdm::{Service, Tag, TagSet};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const SECRET: &str = "the candidate interview rubric weighs distributed systems depth \
                      heavily and must never leave the evaluation tool";

fn flow() -> BrowserFlow {
    let ti = Tag::new("ti").unwrap();
    BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([ti.clone()]))
                .with_confidentiality(TagSet::from_iter([ti])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .unwrap()
}

fn flow_with_secret() -> BrowserFlow {
    let flow = flow();
    flow.observe_paragraph(&"itool".into(), "eval", 0, SECRET)
        .unwrap();
    flow
}

// A keystroke burst editing one paragraph slot. Whatever interleaving of
// coalescing, supersession and queue pressure happens inside the
// pipeline, the burst's *final* decision must equal the decision a
// sequential replay of the same keystrokes produces — the only state
// that matters is the newest text.
proptest! {
    #[test]
    fn coalesced_burst_matches_sequential_replay(
        // Each keystroke leaves between one byte and all of the secret
        // typed, plus an optional harmless closing edit.
        cuts in proptest::collection::vec(1usize..=SECRET.len(), 1..24),
        leak_last in any::<bool>(),
    ) {
        let mut keystrokes: Vec<String> = cuts
            .iter()
            .map(|&cut| {
                let mut end = cut;
                while !SECRET.is_char_boundary(end) {
                    end += 1;
                }
                SECRET[..end].to_string()
            })
            .collect();
        if !leak_last {
            keystrokes.push("a perfectly harmless closing sentence".to_string());
        }

        // Sequential replay: only the final keystroke's decision matters.
        let sequential = flow_with_secret();
        let mut replay_action = None;
        for text in &keystrokes {
            let decision = sequential
                .check_one(&CheckRequest::paragraph("gdocs", "draft", 0, text.as_str()))
                .unwrap();
            replay_action = Some(decision.action);
        }

        // Pipeline burst: fire every keystroke through the coalescing
        // path, then wait for all receipts. Exactly the checks that ran
        // report decisions; the newest-submitted check always runs, so
        // the last decision observed equals the replay's final decision.
        let decider = AsyncDecider::spawn(flow_with_secret());
        let receipts: Vec<_> = keystrokes
            .iter()
            .map(|text| {
                decider
                    .submit_keystroke("gdocs", "draft", 0, text.as_str())
                    .expect("default queue holds a short burst")
            })
            .collect();
        let mut last_decided = None;
        for receipt in receipts {
            match receipt.wait() {
                Ok(timed) => last_decided = Some(timed.decision.action),
                Err(DeciderError::Superseded) => {}
                Err(other) => panic!("unexpected pipeline error: {other:?}"),
            }
        }
        prop_assert_eq!(last_decided, replay_action);
        let stats = decider.stats();
        prop_assert_eq!(
            stats.completed + stats.coalesced,
            keystrokes.len() as u64
        );
    }
}

/// A batch request through the decider returns exactly the decisions the
/// synchronous middleware produces for the same paragraphs, in order.
#[test]
fn decider_batch_matches_synchronous_middleware() {
    let mut gen = TextGen::new(7);
    let mut texts: Vec<String> = (0..8).map(|_| gen.paragraph(4)).collect();
    texts[3] = SECRET.to_string();
    texts[6] = SECRET.to_string();

    let sync_flow = flow_with_secret();
    let expected = sync_flow
        .check(&CheckRequest::batch(
            "gdocs",
            "draft",
            texts.iter().map(String::as_str),
        ))
        .unwrap();

    let decider = AsyncDecider::spawn(flow_with_secret());
    let batch = decider
        .check_request(CheckRequest::batch(
            "gdocs",
            "draft",
            texts.iter().map(String::as_str),
        ))
        .unwrap();
    assert_eq!(batch.decisions, expected);
    assert_eq!(batch.decisions[3].action, UploadAction::Block);
    assert_eq!(batch.decisions[6].action, UploadAction::Block);
    assert_eq!(decider.stats().max_batch, 8);
}

/// Backpressure is reachable from concurrent submitters against a tiny
/// queue, refused submissions are counted, and the pipeline keeps serving
/// requests afterwards.
#[test]
fn queue_full_is_reachable_and_recoverable_under_contention() {
    let decider = Arc::new(AsyncDecider::spawn_with(
        flow(),
        DeciderConfig {
            queue_capacity: 2,
            check_timeout: None,
        },
    ));
    // Occupy the worker with an expensive check so submitters outpace it.
    let stall = decider
        .submit(CheckRequest::paragraph(
            "gdocs",
            "stall",
            0,
            "q ".repeat(100_000),
        ))
        .unwrap();

    let mut rejected_total = 0u32;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let decider = Arc::clone(&decider);
                scope.spawn(move || {
                    let mut rejected = 0u32;
                    for i in 0..50 {
                        match decider.try_submit(CheckRequest::paragraph(
                            "gdocs",
                            "burst",
                            t * 50 + i,
                            "short text",
                        )) {
                            // Drop the receipt: fire-and-forget checks.
                            Ok(_pending) => {}
                            Err(TrySubmitError::QueueFull) => rejected += 1,
                            Err(TrySubmitError::Closed) => {
                                panic!("pipeline closed mid-test")
                            }
                        }
                    }
                    rejected
                })
            })
            .collect();
        for handle in handles {
            rejected_total += handle.join().unwrap();
        }
    });

    assert!(
        rejected_total > 0,
        "200 submissions against a 2-slot queue behind a stalled worker \
         must hit QueueFull"
    );
    assert_eq!(decider.stats().rejected, u64::from(rejected_total));
    stall.wait().unwrap();

    // Recovery: the queue drains and new work is accepted and served.
    let timed = decider.check("gdocs", "after", 0, "fresh text").unwrap();
    assert_eq!(timed.decision.action, UploadAction::Allow);
    let stats = decider.stats();
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.submitted > 0);
}

/// Dropping the decider mid-request resolves in-flight receivers with a
/// clean `Closed` (or a served decision) — never a hang or panic.
#[test]
fn drop_mid_request_resolves_receivers_with_closed() {
    let decider = AsyncDecider::spawn(flow());
    let stall = decider
        .submit(CheckRequest::paragraph(
            "gdocs",
            "stall",
            0,
            "d ".repeat(100_000),
        ))
        .unwrap();
    let pending: Vec<_> = (0..6)
        .map(|i| {
            decider
                .check_nonblocking("gdocs", "draft", i, "text")
                .unwrap()
        })
        .collect();
    drop(decider);
    // The stalled check either completed before the close flag was seen
    // or resolves as Closed; it must not hang.
    match stall.wait() {
        Ok(_) | Err(DeciderError::Closed) => {}
        Err(other) => panic!("unexpected error: {other:?}"),
    }
    for receipt in pending {
        match receipt.wait() {
            Ok(_) | Err(DeciderError::Closed) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
}

/// Graceful shutdown serves every queued request before returning the
/// middleware, and submissions after shutdown fail typed.
#[test]
fn shutdown_drains_and_returns_middleware_state() {
    let decider = AsyncDecider::spawn(flow_with_secret());
    let receipts: Vec<_> = (0..5)
        .map(|i| {
            decider
                .submit(CheckRequest::paragraph("gdocs", "draft", i, SECRET))
                .unwrap()
        })
        .collect();
    let flow = decider.shutdown().unwrap();
    for receipt in receipts {
        let batch = receipt.wait().unwrap();
        assert_eq!(batch.decisions[0].action, UploadAction::Block);
    }
    // The drained middleware kept its state: five block warnings.
    assert_eq!(flow.warnings().len(), 5);
}

/// The configured check timeout fires while the worker is busy and is
/// counted in the pipeline stats.
#[test]
fn configured_timeout_fires_and_is_counted() {
    let decider = AsyncDecider::spawn_with(
        flow(),
        DeciderConfig {
            queue_capacity: 16,
            check_timeout: Some(Duration::from_micros(1)),
        },
    );
    let _stall = decider
        .submit(CheckRequest::paragraph(
            "gdocs",
            "stall",
            0,
            "t ".repeat(100_000),
        ))
        .unwrap();
    let err = decider.check("gdocs", "draft", 0, "text").unwrap_err();
    assert_eq!(err, DeciderError::Timeout);
    assert!(decider.stats().timeouts >= 1);
}
