//! Robustness of imprecise tracking against the edit patterns of §2.1:
//! removing sentences, rephrasing, reordering — and the comparison against
//! the exact-match DLP baseline.

use browserflow::baseline::ExactMatchDlp;
use browserflow::{BrowserFlow, CheckRequest, EnforcementMode, UploadAction};
use browserflow_corpus::TextGen;
use browserflow_tdm::{Service, ServiceId, Tag, TagSet};

fn flow() -> BrowserFlow {
    let ts = Tag::new("secret").unwrap();
    BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("internal", "Internal")
                .with_privilege(TagSet::from_iter([ts.clone()]))
                .with_confidentiality(TagSet::from_iter([ts])),
        )
        .service(Service::new("external", "External"))
        .build()
        .unwrap()
}

/// A multi-sentence confidential paragraph (long enough to survive edits
/// at the default 15-char/30-window configuration).
fn secret_paragraph() -> String {
    let mut gen = TextGen::new(4242);
    gen.paragraph(10)
}

fn check(flow: &mut BrowserFlow, text: &str) -> UploadAction {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let external: ServiceId = "external".into();
    flow.check_one(&CheckRequest::paragraph(
        &external,
        format!("probe-{n}"),
        0,
        text,
    ))
    .unwrap()
    .action
}

#[test]
fn verbatim_and_cosmetic_copies_are_blocked() {
    let mut flow = flow();
    let secret = secret_paragraph();
    flow.observe_paragraph(&"internal".into(), "doc", 0, &secret)
        .unwrap();

    assert_eq!(check(&mut flow, &secret), UploadAction::Block);
    assert_eq!(
        check(&mut flow, &secret.to_uppercase()),
        UploadAction::Block
    );
    let punctuated: String = secret.split(' ').collect::<Vec<_>>().join(",  ");
    assert_eq!(check(&mut flow, &punctuated), UploadAction::Block);
}

#[test]
fn embedded_and_partially_quoted_copies_are_blocked() {
    let mut flow = flow();
    let secret = secret_paragraph();
    // Track with a lower threshold so a half-quote still violates.
    flow.observe_paragraph(&"internal".into(), "doc", 0, &secret)
        .unwrap();
    flow.engine()
        .set_paragraph_threshold(&browserflow::DocKey::new("internal", "doc"), 0, 0.3);

    let embedded = format!("as promised, here is the full text: {secret} -- regards");
    assert_eq!(check(&mut flow, &embedded), UploadAction::Block);

    let half = &secret[..secret.len() / 2];
    assert_eq!(check(&mut flow, half), UploadAction::Block);
}

#[test]
fn sentence_reordering_is_blocked() {
    let mut flow = flow();
    let secret = secret_paragraph();
    flow.observe_paragraph(&"internal".into(), "doc", 0, &secret)
        .unwrap();
    let mut sentences: Vec<&str> = secret.split(". ").collect();
    sentences.reverse();
    let reordered = sentences.join(". ");
    assert_eq!(check(&mut flow, &reordered), UploadAction::Block);
}

#[test]
fn thorough_rephrasing_is_allowed() {
    // §4.4: once a paragraph is rephrased entirely, it is no longer the
    // same information as far as imprecise tracking is concerned.
    let mut flow = flow();
    let secret = secret_paragraph();
    flow.observe_paragraph(&"internal".into(), "doc", 0, &secret)
        .unwrap();
    let mut gen = TextGen::new(777);
    let rephrased = gen.paragraph(10); // entirely new words
    assert_eq!(check(&mut flow, &rephrased), UploadAction::Allow);
}

#[test]
fn imprecise_tracking_beats_exact_match_on_every_edit_pattern() {
    let mut flow = flow();
    let secret = secret_paragraph();
    flow.observe_paragraph(&"internal".into(), "doc", 0, &secret)
        .unwrap();
    let mut exact = ExactMatchDlp::new();
    exact.register(&secret);

    let embedded = format!("prefix {secret} suffix");
    let mut sentences: Vec<&str> = secret.split(". ").collect();
    sentences.swap(0, 1);
    let reordered = sentences.join(". ");
    // Drop one sentence.
    let dropped: String = secret.split(". ").skip(1).collect::<Vec<_>>().join(". ");

    for (name, variant) in [
        ("embedded", embedded.as_str()),
        ("reordered", reordered.as_str()),
        ("sentence-dropped", dropped.as_str()),
    ] {
        assert_eq!(
            check(&mut flow, variant),
            UploadAction::Block,
            "BrowserFlow must catch the {name} variant"
        );
        assert!(
            !exact.is_registered(variant),
            "exact matching is expected to miss the {name} variant"
        );
    }
    // Both catch the verbatim copy.
    assert!(exact.is_registered(&secret));
    assert_eq!(check(&mut flow, &secret), UploadAction::Block);
}

#[test]
fn progressive_edits_eventually_release_the_text() {
    // §4.2's core property: detection degrades gracefully as the text is
    // edited; once resemblance is gone the text is releasable.
    let mut flow = flow();
    let secret = secret_paragraph();
    flow.observe_paragraph(&"internal".into(), "doc", 0, &secret)
        .unwrap();

    let words: Vec<String> = secret.split(' ').map(String::from).collect();
    let mut gen = TextGen::new(31337);
    let mut current = words.clone();
    let mut blocked_early = false;
    let mut allowed_late = false;
    let steps = 10;
    for step in 0..=steps {
        // Replace a contiguous prefix of words: after `steps` rounds the
        // paragraph is fully rewritten.
        let upto = words.len() * step / steps;
        for slot in current.iter_mut().take(upto) {
            *slot = gen.content_word();
        }
        let action = check(&mut flow, &current.join(" "));
        if step <= 1 && action == UploadAction::Block {
            blocked_early = true;
        }
        if step == steps && action == UploadAction::Allow {
            allowed_late = true;
        }
    }
    assert!(blocked_early, "nearly-verbatim text must be blocked");
    assert!(allowed_late, "fully rewritten text must be released");
}

#[test]
fn figure7_overlap_reports_only_the_authoritative_source() {
    // Figure 7 end-to-end through the middleware: B (in a second service)
    // is a superset of A; pasting A's text elsewhere must violate only A's
    // tags, not B's.
    let ta = Tag::new("ta").unwrap();
    let tb = Tag::new("tb").unwrap();
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .service(
            Service::new("svc-a", "Service A")
                .with_privilege(TagSet::from_iter([ta.clone(), tb.clone()]))
                .with_confidentiality(TagSet::from_iter([ta.clone()])),
        )
        .service(
            Service::new("svc-b", "Service B")
                .with_privilege(TagSet::from_iter([ta.clone(), tb.clone()]))
                .with_confidentiality(TagSet::from_iter([tb.clone()])),
        )
        .service(Service::new("external", "External"))
        .build()
        .unwrap();

    let mut gen = TextGen::new(9090);
    let a_text = gen.paragraph(8);
    let b_text = format!("{a_text} {}", gen.paragraph(4));
    flow.observe_paragraph(&"svc-a".into(), "doc-a", 0, &a_text)
        .unwrap();
    flow.observe_paragraph(&"svc-b".into(), "doc-b", 0, &b_text)
        .unwrap();

    let decision = flow
        .check_one(&CheckRequest::paragraph("external", "out", 0, &a_text))
        .unwrap();
    assert_eq!(decision.action, UploadAction::Block);
    assert_eq!(decision.violations.len(), 1, "{:?}", decision.violations);
    let violation = &decision.violations[0];
    assert!(violation.source.to_string().contains("svc-a/doc-a"));
    assert!(violation.missing_tags.contains(&ta));
    // B is not reported: its authoritative fingerprint holds only B's own
    // new text, none of which appears in the paste.
    assert!(!violation.missing_tags.contains(&tb));
}
