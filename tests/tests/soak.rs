//! Randomised soak test: simulate a workday of mixed user activity across
//! services and assert the global safety invariant — under blocking
//! enforcement, no tracked sensitive text ever reaches an untrusted
//! backend — plus the liveness invariant that public text always flows.

use browserflow::plugin::Plugin;
use browserflow::{AsyncDecider, BrowserFlow, EnforcementMode, EngineConfig, UploadAction};
use browserflow_browser::services::{static_site, DocsApp, WikiApp};
use browserflow_browser::Browser;
use browserflow_corpus::TextGen;
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, ServiceId, Tag, TagSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const WIKI: &str = "https://wiki.internal";
const GDOCS: &str = "https://docs.external";
const FORUM: &str = "https://forum.external";

fn build_plugin() -> Plugin {
    let tw = Tag::new("tw").unwrap();
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .engine(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(8)
                .window(6)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tw.clone()]))
                .with_confidentiality(TagSet::from_iter([tw])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .service(Service::new("forum", "External Forum"))
        .build()
        .unwrap();
    let plugin = Plugin::new(flow);
    plugin.bind_origin(WIKI, "wiki", "wiki-kb");
    plugin.bind_origin(GDOCS, "gdocs", "draft");
    plugin.bind_origin(FORUM, "forum", "post");
    plugin
}

#[test]
fn random_workday_never_leaks_tracked_text() {
    let plugin = build_plugin();
    let mut browser = Browser::new();
    plugin.install(&mut browser);

    // Seed the wiki knowledge base with sensitive paragraphs.
    let mut gen = TextGen::new(20260707);
    let secrets: Vec<String> = (0..8).map(|_| gen.paragraph(6)).collect();
    let page = static_site::article_page("KB", &secrets);
    let wiki_tab = browser.open_tab_with_html(WIKI, &page);
    assert_eq!(plugin.observe_page(&browser, wiki_tab), secrets.len());

    // The user's editing surfaces.
    let docs_tab = browser.open_tab(GDOCS);
    let mut docs = DocsApp::attach(&mut browser, docs_tab);
    plugin.watch_docs(&mut browser, &docs);
    let forum_tab = browser.open_tab(FORUM);
    let forum = WikiApp::attach(&mut browser, forum_tab);

    let mut rng = StdRng::seed_from_u64(777);
    let mut public_deliveries = 0usize;
    for step in 0..200 {
        // Halfway through the workday the browser "restarts": the
        // middleware state is sealed, dropped and restored — enforcement
        // must continue seamlessly (persistence under load).
        if step == 100 {
            let state = plugin.state();
            let mut flow = state.write();
            let sealed = flow.export_sealed();
            let restored = browserflow::BrowserFlow::import_sealed(
                browserflow_store::StoreKey::from_bytes([0u8; 32]),
                &sealed,
            )
            .expect("state restores");
            *flow = restored;
        }
        match rng.gen_range(0..6) {
            // Type fresh public prose into the docs draft.
            0 | 1 => {
                if docs.paragraph_count(&browser) == 0 {
                    docs.create_paragraph(&mut browser);
                }
                let index = rng.gen_range(0..docs.paragraph_count(&browser));
                let text = gen.paragraph(3);
                if docs
                    .set_paragraph_text(&mut browser, index, &text)
                    .is_delivered()
                {
                    public_deliveries += 1;
                }
            }
            // Paste a random wiki secret (possibly framed) into the draft.
            2 | 3 => {
                docs.create_paragraph(&mut browser);
                let index = docs.paragraph_count(&browser) - 1;
                let secret = &secrets[rng.gen_range(0..secrets.len())];
                let framed = match rng.gen_range(0..3) {
                    0 => secret.clone(),
                    1 => format!("fyi: {secret}"),
                    _ => secret.to_uppercase(),
                };
                let _ = docs.set_paragraph_text(&mut browser, index, &framed);
            }
            // Post something to the external forum.
            4 => {
                let leak = rng.gen_bool(0.5);
                let content = if leak {
                    secrets[rng.gen_range(0..secrets.len())].clone()
                } else {
                    gen.paragraph(2)
                };
                forum.set_content(&mut browser, &content);
                let result = forum.save(&mut browser);
                if !leak && result.is_delivered() {
                    public_deliveries += 1;
                }
            }
            // Occasionally delete a docs paragraph (index churn).
            _ => {
                if docs.paragraph_count(&browser) > 1 && step % 3 == 0 {
                    docs.delete_paragraph(&mut browser, 0);
                }
            }
        }
    }

    // Safety: no secret text, under any framing, reached an external
    // backend. (Substring check on a distinctive infix of each secret.)
    for backend in [browser.backend(GDOCS), browser.backend(FORUM)] {
        for secret in &secrets {
            let infix: String = secret
                .chars()
                .skip(20)
                .take(30)
                .collect::<String>()
                .to_lowercase();
            for upload in backend.uploads() {
                assert!(
                    !upload.body.to_lowercase().contains(&infix),
                    "secret infix {infix:?} leaked to {}",
                    backend.origin()
                );
            }
        }
    }
    // Liveness: plenty of legitimate traffic flowed.
    assert!(
        public_deliveries > 30,
        "only {public_deliveries} public deliveries — enforcement is over-blocking"
    );
    // And the middleware recorded the attempted violations.
    let state = plugin.state();
    assert!(!state.read().warnings().is_empty());
}

#[test]
fn async_decider_is_safe_under_concurrent_load() {
    let ts = Tag::new("s").unwrap();
    let flow = BrowserFlow::builder()
        .mode(EnforcementMode::Block)
        .engine(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(8)
                .window(6)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
        .service(
            Service::new("internal", "Internal")
                .with_privilege(TagSet::from_iter([ts.clone()]))
                .with_confidentiality(TagSet::from_iter([ts])),
        )
        .service(Service::new("external", "External"))
        .build()
        .unwrap();
    let mut gen = TextGen::new(11);
    let secrets: Vec<String> = (0..4).map(|_| gen.paragraph(5)).collect();
    let internal: ServiceId = "internal".into();
    for (i, secret) in secrets.iter().enumerate() {
        flow.observe_paragraph(&internal, "kb", i, secret).unwrap();
    }
    let decider = Arc::new(AsyncDecider::spawn(flow));

    let mut handles = Vec::new();
    for worker in 0..8 {
        let decider = Arc::clone(&decider);
        let secrets = secrets.clone();
        handles.push(std::thread::spawn(move || {
            let external: ServiceId = "external".into();
            let mut gen = TextGen::new(1000 + worker);
            for round in 0..25 {
                let leak = round % 2 == 0;
                let text = if leak {
                    secrets[round % secrets.len()].clone()
                } else {
                    gen.paragraph(4)
                };
                let timed = decider
                    .check(&external, format!("doc-{worker}"), round, text.as_str())
                    .expect("pipeline alive");
                let decision = timed.decision;
                if leak {
                    assert_eq!(decision.action, UploadAction::Block);
                } else {
                    assert_eq!(decision.action, UploadAction::Allow);
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("worker thread panicked");
    }
}
