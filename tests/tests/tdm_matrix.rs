//! Exhaustive TDM decision-matrix tests: every (source service,
//! destination service) pair under every enforcement mode, plus the
//! custom-tag and suppression lifecycles driven through the middleware.

use browserflow::{
    BrowserFlow, CheckRequest, DocKey, EnforcementMode, EngineConfig, SegmentKey, UploadAction,
};
use browserflow_corpus::TextGen;
use browserflow_fingerprint::FingerprintConfig;
use browserflow_tdm::{Service, ServiceId, Tag, TagSet, UserId};

fn tag(name: &str) -> Tag {
    Tag::new(name).unwrap()
}

/// The paper's three-service policy: itool {ti}, wiki {tw}, gdocs {}.
fn figure3_flow(mode: EnforcementMode) -> BrowserFlow {
    BrowserFlow::builder()
        .mode(mode)
        .engine(EngineConfig {
            fingerprint: FingerprintConfig::builder()
                .ngram_len(8)
                .window(6)
                .build()
                .unwrap(),
            ..EngineConfig::default()
        })
        .service(
            Service::new("itool", "Interview Tool")
                .with_privilege(TagSet::from_iter([tag("ti")]))
                .with_confidentiality(TagSet::from_iter([tag("ti")])),
        )
        .service(
            Service::new("wiki", "Internal Wiki")
                .with_privilege(TagSet::from_iter([tag("tw")]))
                .with_confidentiality(TagSet::from_iter([tag("tw")])),
        )
        .service(Service::new("gdocs", "Google Docs"))
        .build()
        .unwrap()
}

fn paragraph(seed: u64) -> String {
    TextGen::new(seed).paragraph(7)
}

/// Every (source, destination) ordered pair behaves per the subset rule:
/// text may return to its own service; it may reach gdocs only from
/// gdocs; itool and wiki are mutually isolated.
#[test]
fn full_source_destination_matrix() {
    let services = ["itool", "wiki", "gdocs"];
    for (i, &source) in services.iter().enumerate() {
        for &destination in &services {
            let flow = figure3_flow(EnforcementMode::Block);
            let text = paragraph(100 + i as u64);
            let source_id: ServiceId = source.into();
            flow.observe_paragraph(&source_id, "doc", 0, &text).unwrap();
            let decision = flow
                .check_one(&CheckRequest::paragraph(destination, "target", 0, &text))
                .unwrap();
            let expected = if source == destination || source == "gdocs" {
                UploadAction::Allow
            } else {
                UploadAction::Block
            };
            assert_eq!(decision.action, expected, "flow {source} -> {destination}");
        }
    }
}

/// The violation action is exactly the configured mode for every
/// violating pair, and Allow decisions never carry violations.
#[test]
fn enforcement_modes_map_uniformly_across_the_matrix() {
    for (mode, expected) in [
        (EnforcementMode::Advisory, UploadAction::Warn),
        (EnforcementMode::Block, UploadAction::Block),
        (EnforcementMode::Encrypt, UploadAction::Encrypt),
    ] {
        let flow = figure3_flow(mode);
        let text = paragraph(7);
        flow.observe_paragraph(&"itool".into(), "doc", 0, &text)
            .unwrap();
        let violating = flow
            .check_one(&CheckRequest::paragraph("wiki", "t", 0, &text))
            .unwrap();
        assert_eq!(violating.action, expected, "{mode:?}");
        assert!(!violating.violations.is_empty());
        let clean = flow
            .check_one(&CheckRequest::paragraph("wiki", "t", 1, paragraph(8)))
            .unwrap();
        assert_eq!(clean.action, UploadAction::Allow);
        assert!(clean.violations.is_empty());
    }
}

/// Suppressing one tag of a multi-tag label releases only flows that
/// lacked exactly that tag.
#[test]
fn partial_suppression_of_multi_tag_labels() {
    let mut flow = figure3_flow(EnforcementMode::Block);
    let itool_text = paragraph(21);
    let wiki_text = paragraph(22);
    flow.observe_paragraph(&"itool".into(), "a", 0, &itool_text)
        .unwrap();
    // A wiki paragraph that pastes the itool text: explicit tw, implicit ti.
    let combined = format!("{itool_text} {wiki_text}");
    let status = flow
        .observe_paragraph(&"wiki".into(), "b", 0, &combined)
        .unwrap();
    assert!(status.label.implicit_tags().contains(&tag("ti")));
    assert!(status.label.explicit_tags().contains(&tag("tw")));

    // Uploading the combined text to gdocs violates both tags (two
    // sources: the itool original and the wiki paragraph).
    let decision = flow
        .check_one(&CheckRequest::paragraph("gdocs", "c", 0, &combined))
        .unwrap();
    let mut missing = TagSet::new();
    for violation in &decision.violations {
        missing = missing.union(&violation.missing_tags);
    }
    assert!(missing.contains(&tag("ti")));
    assert!(missing.contains(&tag("tw")));

    // Suppress ti on the itool source alone: ti STILL blocks, because the
    // wiki paragraph's label carries ti implicitly (it resembles the itool
    // text) — suppression is per-segment, so one declassified copy does
    // not declassify every similar segment.
    let itool_key = SegmentKey::paragraph(DocKey::new("itool", "a"), 0);
    flow.suppress_tag(&itool_key, &tag("ti"), &UserId::new("alice"), "ok")
        .unwrap();
    let decision = flow
        .check_one(&CheckRequest::paragraph("gdocs", "c2", 0, &combined))
        .unwrap();
    let mut missing = TagSet::new();
    for violation in &decision.violations {
        missing = missing.union(&violation.missing_tags);
    }
    assert!(missing.contains(&tag("ti")), "{missing}");

    // Suppressing ti on the wiki paragraph as well finally clears ti;
    // the wiki's own tw still blocks.
    let wiki_key = SegmentKey::paragraph(DocKey::new("wiki", "b"), 0);
    flow.suppress_tag(&wiki_key, &tag("ti"), &UserId::new("alice"), "ok")
        .unwrap();
    let decision = flow
        .check_one(&CheckRequest::paragraph("gdocs", "c3", 0, &combined))
        .unwrap();
    assert_eq!(decision.action, UploadAction::Block);
    let mut missing = TagSet::new();
    for violation in &decision.violations {
        missing = missing.union(&violation.missing_tags);
    }
    assert!(!missing.contains(&tag("ti")), "{missing}");
    assert!(missing.contains(&tag("tw")));
    // Two audited suppressions were recorded.
    assert_eq!(flow.policy().audit_log().len(), 2);
}

/// Custom-tag lifecycle through the middleware: allocate, auto-grant to
/// the hosting service, restrict a previously-allowed flow, and verify
/// ownership is enforced at the policy layer.
#[test]
fn custom_tag_lifecycle() {
    let mut flow = figure3_flow(EnforcementMode::Block);
    // Admin: the wiki may receive itool data.
    flow.policy_mut()
        .grant_privilege_unchecked(&"wiki".into(), &tag("ti"))
        .unwrap();
    let text = paragraph(31);
    flow.observe_paragraph(&"itool".into(), "plan", 0, &text)
        .unwrap();
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph("wiki", "t", 0, &text))
            .unwrap()
            .action,
        UploadAction::Allow
    );

    let owner = UserId::new("carol");
    let key = SegmentKey::paragraph(DocKey::new("itool", "plan"), 0);
    flow.protect_with_custom_tag(&key, tag("plan-x"), &owner)
        .unwrap();
    // The wiki lacks plan-x -> now blocked.
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph("wiki", "t2", 0, &text))
            .unwrap()
            .action,
        UploadAction::Block
    );
    // The owner grants the wiki the privilege -> allowed again.
    flow.policy_mut()
        .grant_custom_privilege(&"wiki".into(), &tag("plan-x"), &owner)
        .unwrap();
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph("wiki", "t3", 0, &text))
            .unwrap()
            .action,
        UploadAction::Allow
    );
    // A non-owner cannot revoke it.
    assert!(flow
        .policy_mut()
        .revoke_custom_privilege(&"wiki".into(), &tag("plan-x"), &UserId::new("mallory"))
        .is_err());
    // The owner can.
    assert!(flow
        .policy_mut()
        .revoke_custom_privilege(&"wiki".into(), &tag("plan-x"), &owner)
        .unwrap());
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph("wiki", "t4", 0, &text))
            .unwrap()
            .action,
        UploadAction::Block
    );
}

/// Warnings accumulate per destination and are queryable.
#[test]
fn warning_trail_is_queryable_by_destination() {
    let mut flow = figure3_flow(EnforcementMode::Advisory);
    let text = paragraph(41);
    flow.observe_paragraph(&"itool".into(), "doc", 0, &text)
        .unwrap();
    flow.check_one(&CheckRequest::paragraph("wiki", "w", 0, &text))
        .unwrap();
    flow.check_one(&CheckRequest::paragraph("gdocs", "g", 0, &text))
        .unwrap();
    flow.check_one(&CheckRequest::paragraph("gdocs", "g", 1, &text))
        .unwrap();
    assert_eq!(flow.warnings().len(), 3);
    assert_eq!(flow.warnings_for(&"gdocs".into()).len(), 2);
    assert_eq!(flow.warnings_for(&"wiki".into()).len(), 1);
    assert_eq!(flow.warnings_for(&"itool".into()).len(), 0);
    flow.clear_warnings();
    assert!(flow.warnings().is_empty());
}

/// Admin relabelling through the middleware policy handle changes
/// decisions for subsequently observed text.
#[test]
fn admin_relabelling_applies_to_new_observations() {
    let mut flow = figure3_flow(EnforcementMode::Block);
    let text = paragraph(51);
    flow.observe_paragraph(&"itool".into(), "old", 0, &text)
        .unwrap();
    // Admin retires the ti classification for newly created itool text.
    flow.policy_mut()
        .set_service_confidentiality(&"itool".into(), TagSet::new())
        .unwrap();
    let fresh = paragraph(52);
    flow.observe_paragraph(&"itool".into(), "new", 0, &fresh)
        .unwrap();
    // Old text keeps its label; new text is public.
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph("gdocs", "t", 0, &text))
            .unwrap()
            .action,
        UploadAction::Block
    );
    assert_eq!(
        flow.check_one(&CheckRequest::paragraph("gdocs", "t", 1, &fresh))
            .unwrap()
            .action,
        UploadAction::Allow
    );
}
