//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of every external dependency under
//! `third_party/`. This harness keeps criterion's API shape (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros) over a simple wall-clock
//! measurement loop: warm up for `warm_up_time`, then run timed batches
//! until `measurement_time` elapses, collecting `sample_size` samples, and
//! report median/mean/min/max ns-per-iteration (plus throughput when set)
//! on stdout. There is no statistical regression analysis, HTML report, or
//! CLI filtering — numbers are indicative, not criterion-grade.

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// The benchmark driver: holds measurement configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// No-op for CLI compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, None, self, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// No-op for `criterion_main!` compatibility.
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversions accepted where an id is expected.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&id, self.throughput, self.criterion, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.0);
        run_benchmark(&id, self.throughput, self.criterion, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, throughput: Option<Throughput>, config: &Criterion, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: also calibrates iterations-per-sample.
    let mut iters: u64 = 1;
    let warm_up_start = Instant::now();
    let per_iter;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if warm_up_start.elapsed() >= config.warm_up_time {
            per_iter = bencher.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }

    // Choose iterations per sample so all samples fit the measurement time.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns[0];
    let max = *samples_ns.last().unwrap();

    print!(
        "bench {id:<50} median {:>12} mean {:>12} min {:>12} max {:>12}",
        format_ns(median),
        format_ns(mean),
        format_ns(min),
        format_ns(max)
    );
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_per_s = bytes as f64 / (median * 1e-9) / (1024.0 * 1024.0);
            println!("  ({mib_per_s:.1} MiB/s)");
        }
        Some(Throughput::Elements(elements)) => {
            let elems_per_s = elements as f64 / (median * 1e-9);
            println!("  ({elems_per_s:.0} elem/s)");
        }
        None => println!(),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut counter = 0u64;
        c.bench_function("shim-smoke", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            })
        });
        assert!(counter > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim-group");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, &i| {
            b.iter(|| i + 1)
        });
        group.finish();
    }
}
