//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of every external dependency under
//! `third_party/`. This crate provides:
//!
//! - [`channel`]: `unbounded`/`bounded` MPSC channels over
//!   `std::sync::mpsc` (`bounded` maps to `sync_channel`, preserving the
//!   blocking-send semantics the workspace relies on);
//! - [`thread`]: `scope`/`Scope::spawn` over `std::thread::scope`, with
//!   crossbeam's closure-takes-scope signature.

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

pub mod channel {
    //! Multi-producer channels with the `crossbeam-channel` API subset the
    //! workspace uses.

    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is bounded and currently at capacity.
        Full(T),
        /// The receiver has disconnected.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the value that failed to send.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full channel.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// Whether the failure was a disconnected receiver.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T: Send> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No value arrived before the timeout elapsed.
        Timeout,
        /// All senders have disconnected and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(SenderKind<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends `value` without blocking: fails with
        /// [`TrySendError::Full`] when a bounded channel is at capacity
        /// (unbounded channels are never full).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(s) => {
                    s.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderKind::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks until a value arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over received values, blocking between them, until all
        /// senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel of capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }
}

pub mod thread {
    //! Scoped threads with the `crossbeam-utils` API subset the workspace
    //! uses, over `std::thread::scope`.

    use std::any::Any;

    /// A scope for spawning borrowing threads. The closure passed to
    /// [`Scope::spawn`] receives the scope again, matching crossbeam's
    /// signature (`s.spawn(|_| ...)`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(self.inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Creates a scope in which threads may borrow from the environment.
    /// All spawned threads are joined before `scope` returns. Unlike
    /// crossbeam, an unjoined panicking child re-raises the panic here
    /// instead of surfacing as `Err` — callers in this workspace join every
    /// handle, where panics surface through `join()` as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_roundtrip_and_iteration() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_reply_channel() {
        let (tx, rx) = super::channel::bounded(1);
        tx.send(42u8).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn try_send_reports_full_then_recovers() {
        use super::channel::TrySendError;
        let (tx, rx) = super::channel::bounded(1);
        tx.try_send(1u8).unwrap();
        let err = tx.try_send(2u8).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3u8).unwrap();
        drop(rx);
        assert!(matches!(
            tx.try_send(4u8),
            Err(TrySendError::Disconnected(4))
        ));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        use super::channel::RecvTimeoutError;
        let (tx, rx) = super::channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(1)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = super::channel::unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let result = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 7);
    }
}
