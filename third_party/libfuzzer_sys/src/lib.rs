//! Offline stand-in for the `libfuzzer-sys` crate.
//!
//! The build environment has no network access and no nightly toolchain,
//! so the workspace vendors a minimal, API-compatible subset of
//! `libfuzzer-sys` that lets the `fuzz/` targets build and run as plain
//! stable binaries. `fuzz_target!(|data: &[u8]| { ... })` expands to a
//! `main` that drives the body with:
//!
//! 1. every file found in the corpus directories passed as positional
//!    arguments (and any positional *file* argument, for single-input
//!    reproduction — the same calling convention as real libFuzzer), then
//! 2. `-runs=N` mutation rounds (default 4096): a seed is picked at
//!    random and mutated by a deterministic xorshift RNG — byte flips,
//!    bit flips, truncation, duplication, insertion, deletion and
//!    two-seed splicing — so the loop explores inputs near the corpus as
//!    well as free-form garbage.
//!
//! A panic in the body escapes the harness and fails the process, which
//! is exactly the crash signal real libFuzzer reports; there is no
//! coverage feedback and no corpus minimisation. Dash-prefixed arguments
//! other than `-runs=`, `-seed=` and `-max_len=` are accepted and
//! ignored so that a real `cargo fuzz run` invocation (which passes
//! `-artifact_prefix=` and friends) still works against these binaries.

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fs;
use std::path::PathBuf;

/// Declares the fuzz entry point. Mirrors the upstream macro's closure
/// form over `&[u8]`; the typed-`Arbitrary` form is intentionally not
/// supported (no `arbitrary` crate in the tree).
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:expr) => {
        fn main() {
            $crate::driver(|$data: &[u8]| {
                $body
            });
        }
    };
    (|$data:ident| $body:expr) => {
        $crate::fuzz_target!(|$data: &[u8]| $body);
    };
}

/// Splitmix-style step used to seed and advance the mutation RNG.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn rand_below(state: &mut u64, bound: usize) -> usize {
    if bound == 0 {
        0
    } else {
        (xorshift(state) % bound as u64) as usize
    }
}

/// One mutation round: start from `base` and apply 1–4 random edits.
fn mutate(state: &mut u64, base: &[u8], max_len: usize) -> Vec<u8> {
    let mut out = base.to_vec();
    let edits = 1 + rand_below(state, 4);
    for _ in 0..edits {
        match rand_below(state, 7) {
            // Flip one whole byte.
            0 if !out.is_empty() => {
                let at = rand_below(state, out.len());
                out[at] = xorshift(state) as u8;
            }
            // Flip one bit.
            1 if !out.is_empty() => {
                let at = rand_below(state, out.len());
                out[at] ^= 1 << rand_below(state, 8);
            }
            // Truncate.
            2 if !out.is_empty() => {
                out.truncate(rand_below(state, out.len()));
            }
            // Insert a short random run.
            3 => {
                let at = rand_below(state, out.len() + 1);
                let n = 1 + rand_below(state, 8);
                for k in 0..n {
                    out.insert(at + k, xorshift(state) as u8);
                }
            }
            // Delete a short range.
            4 if !out.is_empty() => {
                let at = rand_below(state, out.len());
                let n = (1 + rand_below(state, 8)).min(out.len() - at);
                out.drain(at..at + n);
            }
            // Duplicate a range to somewhere else.
            5 if !out.is_empty() => {
                let at = rand_below(state, out.len());
                let n = (1 + rand_below(state, 16)).min(out.len() - at);
                let chunk: Vec<u8> = out[at..at + n].to_vec();
                let dest = rand_below(state, out.len() + 1);
                for (k, b) in chunk.into_iter().enumerate() {
                    out.insert(dest + k, b);
                }
            }
            // Overwrite with random bytes (also covers the empty case).
            _ => {
                let n = 1 + rand_below(state, 16);
                let at = rand_below(state, out.len() + 1);
                for k in 0..n {
                    if at + k < out.len() {
                        out[at + k] = xorshift(state) as u8;
                    } else {
                        out.push(xorshift(state) as u8);
                    }
                }
            }
        }
    }
    out.truncate(max_len);
    out
}

/// Crosses two seeds at random cut points.
fn splice(state: &mut u64, a: &[u8], b: &[u8], max_len: usize) -> Vec<u8> {
    let cut_a = rand_below(state, a.len() + 1);
    let cut_b = rand_below(state, b.len() + 1);
    let mut out = Vec::with_capacity(cut_a + b.len() - cut_b);
    out.extend_from_slice(&a[..cut_a]);
    out.extend_from_slice(&b[cut_b..]);
    out.truncate(max_len);
    out
}

/// The `main` body behind [`fuzz_target!`]: corpus replay + mutation loop.
pub fn driver(run_one: impl Fn(&[u8])) {
    let mut runs: u64 = 4096;
    let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut max_len: usize = 1 << 16;
    let mut corpus_dirs: Vec<PathBuf> = Vec::new();
    let mut repro_files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("-runs=") {
            runs = v.parse().expect("-runs=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("-seed=") {
            seed = v.parse().expect("-seed=N takes an integer");
        } else if let Some(v) = arg.strip_prefix("-max_len=") {
            max_len = v.parse().expect("-max_len=N takes an integer");
        } else if arg.starts_with('-') {
            // Ignore the rest of libFuzzer's flag surface.
        } else {
            let path = PathBuf::from(&arg);
            if path.is_dir() {
                corpus_dirs.push(path);
            } else if path.is_file() {
                repro_files.push(path);
            } else {
                eprintln!("warning: ignoring missing corpus path {arg}");
            }
        }
    }

    let mut seeds: Vec<Vec<u8>> = Vec::new();
    for dir in &corpus_dirs {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        entries.sort();
        for path in entries {
            seeds.push(fs::read(&path).expect("readable corpus file"));
        }
    }
    for path in &repro_files {
        seeds.push(fs::read(path).expect("readable repro file"));
    }

    // Replay phase: every seed and repro input runs verbatim first, so a
    // crashing input saved from an earlier run reproduces immediately.
    for input in &seeds {
        run_one(input);
    }
    if !repro_files.is_empty() {
        eprintln!("replayed {} file(s); exiting (repro mode)", seeds.len());
        return;
    }

    let mut state = seed | 1;
    for round in 0..runs {
        let input = if seeds.is_empty() {
            mutate(&mut state, &[], max_len)
        } else if seeds.len() >= 2 && rand_below(&mut state, 4) == 0 {
            let a = rand_below(&mut state, seeds.len());
            let b = rand_below(&mut state, seeds.len());
            let crossed = splice(&mut state, &seeds[a], &seeds[b], max_len);
            mutate(&mut state, &crossed, max_len)
        } else {
            let at = rand_below(&mut state, seeds.len());
            mutate(&mut state, &seeds[at], max_len)
        };
        run_one(&input);
        if (round + 1) % 1024 == 0 {
            eprintln!("#{}\truns", round + 1);
        }
    }
    eprintln!(
        "Done: {} seed replays + {runs} mutation runs, no crash",
        seeds.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_respects_max_len() {
        let mut state = 7;
        for _ in 0..200 {
            let out = mutate(&mut state, &[0u8; 64], 32);
            assert!(out.len() <= 32);
        }
    }

    #[test]
    fn splice_is_bounded_by_inputs() {
        let mut state = 9;
        let a = vec![1u8; 10];
        let b = vec![2u8; 10];
        for _ in 0..100 {
            let out = splice(&mut state, &a, &b, 64);
            assert!(out.len() <= 20);
        }
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        for _ in 0..10 {
            assert_eq!(xorshift(&mut a), xorshift(&mut b));
        }
    }
}
