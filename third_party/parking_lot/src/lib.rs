//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a minimal, API-compatible subset of every external
//! dependency under `third_party/`. This crate exposes `Mutex` and `RwLock`
//! with the `parking_lot` surface the workspace uses (no lock poisoning,
//! `lock()`/`read()`/`write()` returning guards directly, `try_*` returning
//! `Option`), implemented on top of `std::sync`. Poisoned std locks are
//! transparently recovered, matching parking_lot's poison-free semantics.

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt;
use std::sync::TryLockError;

/// A mutual exclusion primitive (poison-free `lock()` API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock (poison-free `read()`/`write()` API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        assert!(l.try_write().is_none());
        drop((a, b));
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
