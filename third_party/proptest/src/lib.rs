//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of every external dependency under
//! `third_party/`. This crate keeps proptest's surface — the `proptest!`
//! macro, `prop_assert*`/`prop_assume`/`prop_oneof`, `any::<T>()`, range
//! and regex-literal strategies, `proptest::collection::vec`, `Just`,
//! `prop_map` — over a deliberately simple engine:
//!
//! - deterministic: each test derives its RNG seed from the test name, so
//!   runs are reproducible without `.proptest-regressions` files (those
//!   checked-in files are kept as documentation of past failures; the
//!   string generator here biases toward the same classes of tricky input
//!   — markup characters, control bytes, combining marks, astral planes,
//!   case-expanding letters — that produced them);
//! - no shrinking: on failure the full generated input set is printed;
//! - `PROPTEST_CASES` overrides the per-test case count (default 64).

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;

pub use strategy::{any, AnyOf, Arbitrary, Just, Strategy};

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the message explains the failure.
    Fail(String),
    /// `prop_assume!` rejected the input; try another case.
    Reject,
}

impl TestCaseError {
    /// Builds the failure variant from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound)
    }

    /// Uniform draw from `[lo, hi]`.
    pub fn between(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..=hi)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: generates inputs, runs the body, panics with a
/// reproduction report on the first failing case. Called by the expansion
/// of [`proptest!`]; not part of proptest's public API.
pub fn run_property<F>(test_name: &str, mut run_one: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let total = cases();
    let mut executed = 0u64;
    let mut seed_index = 0u64;
    // Allow ~10x rejects before giving up, as real proptest does.
    let max_attempts = total.saturating_mul(10).max(total + 16);
    while executed < total {
        if seed_index >= max_attempts {
            panic!(
                "proptest `{test_name}`: too many inputs rejected by prop_assume! \
                 ({executed}/{total} cases ran in {seed_index} attempts)"
            );
        }
        let mut rng = TestRng::for_case(test_name, seed_index);
        seed_index += 1;
        let (inputs, outcome) = run_one(&mut rng);
        match outcome {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at case {} (seed index {}):\n  \
                     inputs: {inputs}\n  cause: {msg}",
                    executed,
                    seed_index - 1
                );
            }
        }
    }
}

/// Catches panics from a test body, mapping them to `TestCaseError::Fail`
/// so the failing input is reported. Used by the [`proptest!`] expansion.
pub fn catch_body<F: FnOnce() -> Result<(), TestCaseError> + std::panic::UnwindSafe>(
    body: F,
) -> Result<(), TestCaseError> {
    match std::panic::catch_unwind(body) {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "test body panicked".to_string()
            };
            Err(TestCaseError::Fail(format!("panic: {msg}")))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Size bounds accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.between(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface tests use (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---- macros ----------------------------------------------------------

/// Defines property tests. Each function in the block runs [`cases`]
/// times with inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(concat!(module_path!(), "::", stringify!($name)), |__rng| {
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::Strategy::generate(&($strategy), __rng);
                    if !__inputs.is_empty() { __inputs.push_str(", "); }
                    __inputs.push_str(&format!(
                        "{} = {:?}", stringify!($arg), &__value
                    ));
                    let $arg = __value;
                )+
                let __outcome = $crate::catch_body(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    }
                ));
                (__inputs, __outcome)
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), __l, __r
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), __l
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}
