//! Strategies: composable value generators.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike real proptest there is no shrink tree: `generate` produces a
/// plain value. `prop_map` keeps its place-of-use API.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Tuples of strategies are themselves strategies producing tuples.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $index:tt),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$index.generate(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
}

/// Uniform choice between boxed strategies of a common value type.
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Builds from a non-empty list of options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.options.len());
        self.options[index].generate(rng)
    }
}

// ---- numeric ranges --------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Occasionally emit the exact endpoints: properties over [0, 1]
        // thresholds care about them.
        match rng.below(16) {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

// ---- any::<T>() ------------------------------------------------------

/// Types with a default "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward boundary values, which find edge-case bugs
                // that uniform sampling over 2^64 never hits.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            _ => f64::from_bits(rng.next_u64() % (0x7FF0u64 << 48)),
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::strategy::interesting_char(rng, /* exclude_newline = */ false)
    }
}

/// Strategy produced by [`any`].
pub struct AnyOf<T>(PhantomData<T>);

/// The default strategy for a type: `any::<u32>()` etc.
pub fn any<T: Arbitrary>() -> AnyOf<T> {
    AnyOf(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- regex-literal string strategies ---------------------------------

/// Characters `.` may produce. Weighted toward the inputs that break text
/// pipelines: markup metacharacters, control bytes, combining marks,
/// case-expanding letters (İ → i + U+0307), ligatures, astral-plane
/// characters.
fn interesting_char(rng: &mut TestRng, exclude_newline: bool) -> char {
    const MARKUP: &[char] = &['<', '>', '&', '"', '\'', '=', '/', '!', '-'];
    const CONTROL: &[char] = &['\t', '\r', '\u{0}', '\u{b}', '\u{c}', '\u{7f}', '\u{1b}'];
    const UNICODE: &[char] = &[
        '¡',
        'é',
        'ß',
        'İ',
        'ı',
        'Ω',
        'д',
        '中',
        'ẞ',
        'ǅ',
        'ﬁ',
        '\u{0301}',
        '\u{0307}',
        '\u{00AD}',
        '\u{200D}',
        '\u{FEFF}',
        '𝕏',
        '\u{82140}',
        '🦀',
    ];
    loop {
        let c = match rng.below(100) {
            0..=39 => char::from(rng.between(0x20, 0x7e) as u8),
            40..=49 => MARKUP[rng.below(MARKUP.len())],
            50..=57 => CONTROL[rng.below(CONTROL.len())],
            58..=79 => UNICODE[rng.below(UNICODE.len())],
            80..=89 => {
                // Arbitrary BMP scalar.
                match char::from_u32(rng.below(0xFFFF) as u32) {
                    Some(c) => c,
                    None => continue,
                }
            }
            _ => {
                // Arbitrary astral scalar.
                match char::from_u32(0x10000 + rng.below(0x100000 - 0x800) as u32) {
                    Some(c) => c,
                    None => continue,
                }
            }
        };
        if exclude_newline && c == '\n' {
            continue;
        }
        return c;
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char except newline.
    AnyChar,
    /// A literal character.
    Literal(char),
    /// A character class `[...]`, expanded to its member set.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parses the regex subset the workspace's tests use: literals, `.`,
/// positive character classes with ranges, and quantifiers `{n}`, `{m,n}`,
/// `?`, `*`, `+` (the latter two capped at 8 repetitions).
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                            let start = prev.take().unwrap();
                            let end = chars.next().unwrap();
                            assert!(
                                start <= end,
                                "invalid class range {start}-{end} in {pattern:?}"
                            );
                            for code in start as u32..=end as u32 {
                                if let Some(ch) = char::from_u32(code) {
                                    members.push(ch);
                                }
                            }
                        }
                        Some('\\') => {
                            let escaped = chars.next().expect("escape at end of character class");
                            if let Some(p) = prev.take() {
                                members.push(p);
                            }
                            prev = Some(escaped);
                        }
                        Some(other) => {
                            if let Some(p) = prev.take() {
                                members.push(p);
                            }
                            prev = Some(other);
                        }
                    }
                }
                if let Some(p) = prev {
                    members.push(p);
                }
                assert!(!members.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(members)
            }
            '\\' => Atom::Literal(chars.next().expect("escape at end of pattern")),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: usize = lo.trim().parse().expect("quantifier lower bound");
                        let hi: usize = hi.trim().parse().expect("quantifier upper bound");
                        assert!(lo <= hi, "inverted quantifier in {pattern:?}");
                        (lo, hi)
                    }
                    None => {
                        let n: usize = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse_pattern(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.between(piece.min, piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::AnyChar => out.push(interesting_char(rng, true)),
                Atom::Literal(c) => out.push(*c),
                Atom::Class(members) => out.push(members[rng.below(members.len())]),
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 1)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn class_pattern_stays_in_class() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-z0-9-]{1,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn punctuation_class_parses() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[A-Z,.]{0,20}".generate(&mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == ',' || c == '.'));
        }
    }

    #[test]
    fn dot_pattern_has_no_newline_and_hits_unicode() {
        let mut rng = rng();
        let mut saw_non_ascii = false;
        let mut saw_markup = false;
        for _ in 0..300 {
            let s = ".{0,40}".generate(&mut rng);
            assert!(!s.contains('\n'));
            saw_non_ascii |= s.chars().any(|c| !c.is_ascii());
            saw_markup |= s.contains('<');
        }
        assert!(saw_non_ascii, "dot should produce non-ASCII characters");
        assert!(saw_markup, "dot should produce markup characters");
    }

    #[test]
    fn concatenated_pattern_shapes() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,8}".generate(&mut rng);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.len() <= 9);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = rng();
        let strategy = OneOf::new(vec![
            boxed(Just("a".to_string())),
            boxed(Just("b".to_string())),
            boxed("[0-9]{1}".to_string()),
        ]);
        let mut seen_a = false;
        let mut seen_b = false;
        let mut seen_digit = false;
        for _ in 0..200 {
            match strategy.generate(&mut rng).as_str() {
                "a" => seen_a = true,
                "b" => seen_b = true,
                s => seen_digit |= s.chars().all(|c| c.is_ascii_digit()),
            }
        }
        assert!(seen_a && seen_b && seen_digit);
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = rng();
        let strategy = (1usize..5).prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = rng();
        let strategy = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
