//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of every external dependency under
//! `third_party/`. This crate provides [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`rngs::StdRng`], a deterministic xoshiro256** generator. Determinism
//! for a given seed is all the workspace needs (seeded corpora, keystream
//! generation in `browserflow-store::encryption`); no cryptographic
//! strength is claimed — the store's own docs already note the sealing
//! primitive is a stand-in, not a security claim.

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: raw word and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator by expanding a `u64` through SplitMix64, as
    /// rand 0.8 does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that `Rng::gen` can produce.
pub trait SampleStandard {
    /// Samples one value from the "standard" distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_sample_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly. The blanket [`SampleRange`]
/// impls below are written over this trait (one impl per range shape, as
/// in real rand) so integer-literal inference works at call sites like
/// `rng.gen_range(6..=12).min(len)`.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift mapping of a 64-bit word onto [0, span); the bias is
    // at most span/2^64, irrelevant for deterministic test corpora.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256**). The real rand 0.8 `StdRng`
    /// is ChaCha12; this stand-in only promises determinism per seed,
    /// which is what the workspace relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0xD6E8_FEB8_6659_FD93,
                ];
            }
            let mut rng = Self { s };
            // Scramble so low-entropy seeds decorrelate quickly.
            for _ in 0..8 {
                rng.step();
            }
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2..=4);
            assert!((2..=4).contains(&w));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn fill_bytes_deterministic_and_unaligned() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    fn from_seed_uses_all_bytes() {
        let mut s1 = [0u8; 32];
        let mut s2 = [0u8; 32];
        s2[31] = 1;
        let mut a = StdRng::from_seed(s1);
        let mut b = StdRng::from_seed(s2);
        assert_ne!(a.next_u64(), b.next_u64());
        s1[0] = 1;
        let mut c = StdRng::from_seed(s1);
        let _ = c.next_u64();
    }
}
