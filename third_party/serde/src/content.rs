//! The self-describing data model all (de)serialization routes through.

use crate::{de, ser, Deserializer, Serialize, Serializer};
use std::fmt;

/// A JSON-shaped value tree: the intermediate representation between Rust
/// values and text formats. Map entries preserve insertion order so output
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Absence of a value (`null`, `None`, unit).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered map with string keys.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short human-readable description of the variant, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced when converting between Rust values and [`Content`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentError(pub String);

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serializer that materialises a [`Content`] tree.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Deserializer that reads from a [`Content`] tree.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}

/// Serializes any value to a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// Deserializes any owned value from a [`Content`] tree.
pub fn from_content<T: de::DeserializeOwned>(content: Content) -> Result<T, ContentError> {
    T::deserialize(ContentDeserializer(content))
}

/// Removes and returns the first entry named `key` from a map's entries.
/// Used by derived `Deserialize` impls.
pub fn take_entry(entries: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
    let index = entries.iter().position(|(k, _)| k == key)?;
    Some(entries.remove(index).1)
}

/// Renders a map key for [`Content::Map`]: strings pass through, integers
/// are stringified (as JSON object keys are).
pub fn key_to_string(content: Content) -> Result<String, ContentError> {
    match content {
        Content::Str(s) => Ok(s),
        Content::U64(n) => Ok(n.to_string()),
        Content::I64(n) => Ok(n.to_string()),
        other => Err(ContentError(format!(
            "map key must serialize to a string, got {}",
            other.kind()
        ))),
    }
}
