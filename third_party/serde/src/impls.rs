//! `Serialize`/`Deserialize` implementations for std types.

use crate::content::{key_to_string, to_content, Content, ContentDeserializer};
use crate::{de, de::Error as _, Deserialize, Deserializer, Serialize, Serializer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::ops::Range;

fn err<'de, D: Deserializer<'de>, T>(expected: &str, got: &Content) -> Result<T, D::Error> {
    Err(D::Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

// ---- scalars ---------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => err::<D, _>("bool", &other),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let value = match content {
                    Content::U64(n) => n,
                    Content::I64(n) if n >= 0 => n as u64,
                    // Stringified integers appear as JSON map keys.
                    Content::Str(ref s) => match s.parse::<u64>() {
                        Ok(n) => n,
                        Err(_) => return err::<D, _>("unsigned integer", &content),
                    },
                    other => return err::<D, _>("unsigned integer", &other),
                };
                <$t>::try_from(value)
                    .map_err(|_| D::Error::custom(format!(
                        "integer {value} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    serializer.serialize_u64(v as u64)
                } else {
                    serializer.serialize_i64(v)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let value: i64 = match content {
                    Content::I64(n) => n,
                    Content::U64(n) => match i64::try_from(n) {
                        Ok(v) => v,
                        Err(_) => return err::<D, _>("signed integer", &content),
                    },
                    Content::Str(ref s) => match s.parse::<i64>() {
                        Ok(n) => n,
                        Err(_) => return err::<D, _>("signed integer", &content),
                    },
                    other => return err::<D, _>("signed integer", &other),
                };
                <$t>::try_from(value)
                    .map_err(|_| D::Error::custom(format!(
                        "integer {value} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            // JSON renders 1.0 as "1"; accept integral content for floats.
            Content::U64(n) => Ok(n as f64),
            Content::I64(n) => Ok(n as f64),
            other => err::<D, _>("float", &other),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.deserialize_content()?;
        if let Content::Str(ref s) = content {
            let mut chars = s.chars();
            if let (Some(c), None) = (chars.next(), chars.next()) {
                return Ok(c);
            }
        }
        err::<D, _>("single-character string", &content)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => err::<D, _>("string", &other),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => err::<D, _>("null", &other),
        }
    }
}

// ---- references and boxes -------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ---- option ----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => T::deserialize(ContentDeserializer(other))
                .map(Some)
                .map_err(|e| D::Error::custom(e)),
        }
    }
}

// ---- sequences -------------------------------------------------------

fn serialize_seq<S: Serializer, T: Serialize>(
    serializer: S,
    items: impl Iterator<Item = T>,
) -> Result<S::Ok, S::Error> {
    let mut seq = Vec::new();
    for item in items {
        seq.push(to_content(&item).map_err(crate::ser::Error::custom)?);
    }
    serializer.serialize_content(Content::Seq(seq))
}

fn content_seq<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Vec<Content>, D::Error> {
    match deserializer.deserialize_content()? {
        Content::Seq(items) => Ok(items),
        other => err::<D, _>("sequence", &other),
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(serializer, self.iter())
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        content_seq(deserializer)?
            .into_iter()
            .map(|c| T::deserialize(ContentDeserializer(c)).map_err(|e| D::Error::custom(e)))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(serializer, self.iter())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(serializer, self.iter())
    }
}

impl<'de, T: de::DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        content_seq(deserializer)?
            .into_iter()
            .map(|c| T::deserialize(ContentDeserializer(c)).map_err(|e| D::Error::custom(e)))
            .collect()
    }
}

impl<T: Serialize, St: BuildHasher> Serialize for HashSet<T, St> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(serializer, self.iter())
    }
}

impl<'de, T, St> Deserialize<'de> for HashSet<T, St>
where
    T: de::DeserializeOwned + Eq + Hash,
    St: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        content_seq(deserializer)?
            .into_iter()
            .map(|c| T::deserialize(ContentDeserializer(c)).map_err(|e| D::Error::custom(e)))
            .collect()
    }
}

// ---- tuples (serialized as fixed-length sequences) -------------------

macro_rules! impl_serde_tuple {
    ($len:literal => $(($idx:tt $t:ident)),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![
                    $(to_content(&self.$idx).map_err(crate::ser::Error::custom)?,)+
                ];
                serializer.serialize_content(Content::Seq(seq))
            }
        }

        impl<'de, $($t: de::DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let seq = content_seq(deserializer)?;
                if seq.len() != $len {
                    return Err(D::Error::custom(format!(
                        "expected {}-tuple, got sequence of {}", $len, seq.len()
                    )));
                }
                let mut items = seq.into_iter();
                Ok(($(
                    $t::deserialize(ContentDeserializer(items.next().unwrap()))
                        .map_err(|e| D::Error::custom(e))?,
                )+))
            }
        }
    };
}

impl_serde_tuple!(1 => (0 T0));
impl_serde_tuple!(2 => (0 T0), (1 T1));
impl_serde_tuple!(3 => (0 T0), (1 T1), (2 T2));
impl_serde_tuple!(4 => (0 T0), (1 T1), (2 T2), (3 T3));

// ---- maps ------------------------------------------------------------

fn serialize_map<S, K, V>(
    serializer: S,
    entries: impl Iterator<Item = (K, V)>,
) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize,
    V: Serialize,
{
    let mut map = Vec::new();
    for (k, v) in entries {
        let key = to_content(&k)
            .and_then(key_to_string)
            .map_err(crate::ser::Error::custom)?;
        map.push((key, to_content(&v).map_err(crate::ser::Error::custom)?));
    }
    serializer.serialize_content(Content::Map(map))
}

fn content_map<'de, D: Deserializer<'de>>(
    deserializer: D,
) -> Result<Vec<(String, Content)>, D::Error> {
    match deserializer.deserialize_content()? {
        Content::Map(entries) => Ok(entries),
        other => err::<D, _>("map", &other),
    }
}

fn map_entries<'de, D, K, V>(deserializer: D) -> Result<Vec<(K, V)>, D::Error>
where
    D: Deserializer<'de>,
    K: de::DeserializeOwned,
    V: de::DeserializeOwned,
{
    content_map(deserializer)?
        .into_iter()
        .map(|(k, v)| {
            let key = K::deserialize(ContentDeserializer(Content::Str(k)))
                .map_err(|e| D::Error::custom(e))?;
            let value = V::deserialize(ContentDeserializer(v)).map_err(|e| D::Error::custom(e))?;
            Ok((key, value))
        })
        .collect()
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map(serializer, self.iter())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: de::DeserializeOwned + Ord,
    V: de::DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(map_entries::<D, K, V>(deserializer)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, St: BuildHasher> Serialize for HashMap<K, V, St> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort keys for deterministic output, as serde_json users expect
        // when diffing persisted state.
        let mut map = Vec::new();
        for (k, v) in self.iter() {
            let key = to_content(k)
                .and_then(key_to_string)
                .map_err(crate::ser::Error::custom)?;
            map.push((key, to_content(v).map_err(crate::ser::Error::custom)?));
        }
        map.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_content(Content::Map(map))
    }
}

impl<'de, K, V, St> Deserialize<'de> for HashMap<K, V, St>
where
    K: de::DeserializeOwned + Eq + Hash,
    V: de::DeserializeOwned,
    St: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(map_entries::<D, K, V>(deserializer)?.into_iter().collect())
    }
}

// ---- ranges ----------------------------------------------------------

impl<T: Serialize> Serialize for Range<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let map = vec![
            (
                "start".to_owned(),
                to_content(&self.start).map_err(crate::ser::Error::custom)?,
            ),
            (
                "end".to_owned(),
                to_content(&self.end).map_err(crate::ser::Error::custom)?,
            ),
        ];
        serializer.serialize_content(Content::Map(map))
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Range<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries = content_map(deserializer)?;
        let start = crate::content::take_entry(&mut entries, "start")
            .ok_or_else(|| D::Error::custom("missing field `start` in range"))?;
        let end = crate::content::take_entry(&mut entries, "end")
            .ok_or_else(|| D::Error::custom("missing field `end` in range"))?;
        Ok(Range {
            start: T::deserialize(ContentDeserializer(start)).map_err(|e| D::Error::custom(e))?,
            end: T::deserialize(ContentDeserializer(end)).map_err(|e| D::Error::custom(e))?,
        })
    }
}

// ---- content itself --------------------------------------------------

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone())
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_content()
    }
}
