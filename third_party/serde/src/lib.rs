//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of every external dependency under
//! `third_party/`. Real serde is visitor-based; this stand-in routes all
//! (de)serialization through a single self-describing data model,
//! [`content::Content`], which is exactly sufficient for the JSON-shaped
//! state persistence this workspace does:
//!
//! - [`Serialize`] / [`Deserialize`] traits with the standard signatures,
//!   so the workspace's manual impls (e.g. `Tag`) compile unchanged;
//! - [`Serializer`] with `serialize_str` etc. as provided methods over one
//!   required method, `serialize_content`;
//! - [`Deserializer`] with one required method, `deserialize_content`;
//! - `ser::Error` / `de::Error` traits with `custom`;
//! - derive macros re-exported from `serde_derive` (the `derive` feature
//!   the workspace requests is a no-op gate: derives are always available).

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

pub mod content;

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    //! Serialization-side error trait.

    /// Trait every serializer error type implements.
    pub trait Error: Sized + std::fmt::Display + std::fmt::Debug {
        /// Builds an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    //! Deserialization-side error trait and owned-deserialize marker.

    /// Trait every deserializer error type implements.
    pub trait Error: Sized + std::fmt::Display + std::fmt::Debug {
        /// Builds an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Marker for types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data structure deserializable from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format that can serialize values.
///
/// Unlike real serde's many required methods, the stand-in funnels
/// everything through [`Serializer::serialize_content`]; the familiar
/// scalar entry points are provided methods on top of it.
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serializes an already-built [`content::Content`] tree.
    fn serialize_content(self, content: content::Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(content::Content::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(content::Content::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(content::Content::U64(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(content::Content::I64(v))
    }

    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(content::Content::F64(v))
    }

    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(content::Content::Null)
    }

    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(content::Content::Null)
    }

    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        match content::to_content(value) {
            Ok(c) => self.serialize_content(c),
            Err(e) => Err(ser::Error::custom(e)),
        }
    }
}

/// A data format that can deserialize values.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Reads the input into a self-describing [`content::Content`] tree.
    fn deserialize_content(self) -> Result<content::Content, Self::Error>;
}

mod impls;
