//! Offline stand-in for `serde_derive`.
//!
//! The registry crates `syn`/`quote` are unavailable (no network), so the
//! derive parses the item's `TokenStream` by hand and emits impl code as a
//! string. It supports exactly the shapes this workspace derives:
//!
//! - named structs, with `#[serde(default)]` fields and
//!   `#[serde(transparent)]` containers;
//! - tuple structs (newtype delegates to the inner type, longer tuples
//!   serialize as sequences);
//! - enums with unit, newtype and struct variants, externally tagged
//!   (`"Variant"` / `{"Variant": payload}`) as in real serde's default.
//!
//! Generics are not supported and produce a compile error.

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- parsed representation ------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

// ---- parsing ---------------------------------------------------------

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes; returns true if any of them is a
/// `#[serde(...)]` list containing the ident `flag`.
fn eat_attrs(iter: &mut TokenIter, flag: &str) -> bool {
    let mut found = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                let Some(TokenTree::Group(group)) = iter.next() else {
                    panic!("expected [...] after #");
                };
                let mut inner = group.stream().into_iter();
                let is_serde = matches!(
                    inner.next(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                );
                if is_serde {
                    if let Some(TokenTree::Group(list)) = inner.next() {
                        for tok in list.stream() {
                            if let TokenTree::Ident(id) = tok {
                                if id.to_string() == flag {
                                    found = true;
                                }
                            }
                        }
                    }
                }
            }
            _ => return found,
        }
    }
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn eat_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn expect_ident(iter: &mut TokenIter, what: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, got {other:?}"),
    }
}

/// Skips the tokens of one type, stopping after the field-separating comma
/// (consumed) or at end of stream. Tracks `<`/`>` nesting so commas inside
/// generic arguments don't terminate the field.
fn skip_type(iter: &mut TokenIter) {
    let mut angle_depth = 0i32;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while iter.peek().is_some() {
        let default = eat_attrs(&mut iter, "default");
        eat_visibility(&mut iter);
        let name = expect_ident(&mut iter, "field name");
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    while iter.peek().is_some() {
        let _ = eat_attrs(&mut iter, "default");
        eat_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while iter.peek().is_some() {
        let _ = eat_attrs(&mut iter, "default");
        let name = expect_ident(&mut iter, "variant name");
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let transparent = eat_attrs(&mut iter, "transparent");
    eat_visibility(&mut iter);
    let keyword = expect_ident(&mut iter, "`struct` or `enum`");
    let name = expect_ident(&mut iter, "type name");
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stand-in does not support generic types ({name})");
        }
    }
    let kind = match (keyword.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("unsupported item shape: {kw} {name} followed by {other:?}"),
    };
    Input {
        name,
        transparent,
        kind,
    }
}

// ---- code generation -------------------------------------------------

const CONTENT: &str = "::serde::content::Content";
const TO_CONTENT: &str = "::serde::content::to_content";
const FROM_CONTENT: &str = "::serde::content::from_content";
const SER_CUSTOM: &str = "::serde::ser::Error::custom";
const DE_CUSTOM: &str = "::serde::de::Error::custom";

fn push_named_to_map(out: &mut String, fields: &[Field], accessor: &str) {
    out.push_str(&format!(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, {CONTENT})> = \
         ::std::vec::Vec::new();\n"
    ));
    for field in fields {
        let name = &field.name;
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{name}\"), \
             {TO_CONTENT}({accessor}{name}).map_err({SER_CUSTOM})?));\n"
        ));
    }
}

fn push_named_from_map(out: &mut String, type_name: &str, fields: &[Field], map_var: &str) {
    out.push_str(&format!("::std::result::Result::Ok({type_name} {{\n"));
    for field in fields {
        let name = &field.name;
        let missing = if field.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err({DE_CUSTOM}(\
                 \"missing field `{name}` in {type_name}\"))"
            )
        };
        out.push_str(&format!(
            "{name}: match ::serde::content::take_entry(&mut {map_var}, \"{name}\") {{\n\
             ::std::option::Option::Some(__v) => \
             {FROM_CONTENT}(__v).map_err({DE_CUSTOM})?,\n\
             ::std::option::Option::None => {missing},\n}},\n"
        ));
    }
    out.push_str("})\n");
}

fn variant_ctor(type_name: &str, variant: &str) -> String {
    format!("{type_name}::{variant}")
}

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            if input.transparent {
                assert!(
                    fields.len() == 1,
                    "#[serde(transparent)] requires exactly one field on {name}"
                );
                let field = &fields[0].name;
                body.push_str(&format!(
                    "__serializer.serialize_content(\
                     {TO_CONTENT}(&self.{field}).map_err({SER_CUSTOM})?)"
                ));
            } else {
                push_named_to_map(&mut body, fields, "&self.");
                body.push_str(&format!(
                    "__serializer.serialize_content({CONTENT}::Map(__fields))"
                ));
            }
        }
        Kind::Struct(Fields::Tuple(1)) => {
            // Newtype structs delegate to the inner value, transparent or not.
            body.push_str(&format!(
                "__serializer.serialize_content(\
                 {TO_CONTENT}(&self.0).map_err({SER_CUSTOM})?)"
            ));
        }
        Kind::Struct(Fields::Tuple(n)) => {
            body.push_str(&format!(
                "let mut __seq: ::std::vec::Vec<{CONTENT}> = ::std::vec::Vec::new();\n"
            ));
            for i in 0..*n {
                body.push_str(&format!(
                    "__seq.push({TO_CONTENT}(&self.{i}).map_err({SER_CUSTOM})?);\n"
                ));
            }
            body.push_str(&format!(
                "__serializer.serialize_content({CONTENT}::Seq(__seq))"
            ));
        }
        Kind::Struct(Fields::Unit) => {
            body.push_str(&format!(
                "__serializer.serialize_content({CONTENT}::Str(\
                 ::std::string::String::from(\"{name}\")))"
            ));
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for variant in variants {
                let vname = &variant.name;
                let ctor = variant_ctor(name, vname);
                match &variant.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{ctor} => __serializer.serialize_content({CONTENT}::Str(\
                         ::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{ctor}(__f0) => {{\n\
                         let __v = {TO_CONTENT}(__f0).map_err({SER_CUSTOM})?;\n\
                         __serializer.serialize_content({CONTENT}::Map(vec![(\
                         ::std::string::String::from(\"{vname}\"), __v)]))\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!("{ctor}({}) => {{\n", binders.join(", ")));
                        body.push_str(&format!(
                            "let mut __seq: ::std::vec::Vec<{CONTENT}> = \
                             ::std::vec::Vec::new();\n"
                        ));
                        for b in &binders {
                            body.push_str(&format!(
                                "__seq.push({TO_CONTENT}({b}).map_err({SER_CUSTOM})?);\n"
                            ));
                        }
                        body.push_str(&format!(
                            "__serializer.serialize_content({CONTENT}::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             {CONTENT}::Seq(__seq))]))\n}}\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!("{ctor} {{ {} }} => {{\n", binders.join(", ")));
                        push_named_to_map(&mut body, fields, "");
                        body.push_str(&format!(
                            "__serializer.serialize_content({CONTENT}::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             {CONTENT}::Map(__fields))]))\n}}\n"
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    body.push_str("let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n");
    match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            if input.transparent {
                assert!(
                    fields.len() == 1,
                    "#[serde(transparent)] requires exactly one field on {name}"
                );
                let field = &fields[0].name;
                body.push_str(&format!(
                    "::std::result::Result::Ok({name} {{ {field}: \
                     {FROM_CONTENT}(__content).map_err({DE_CUSTOM})? }})"
                ));
            } else {
                body.push_str(&format!(
                    "let mut __map = match __content {{\n\
                     {CONTENT}::Map(__m) => __m,\n\
                     __other => return ::std::result::Result::Err({DE_CUSTOM}(\
                     format!(\"expected map for struct {name}, got {{}}\", __other.kind()))),\n\
                     }};\n"
                ));
                push_named_from_map(&mut body, name, fields, "__map");
            }
        }
        Kind::Struct(Fields::Tuple(1)) => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(\
                 {FROM_CONTENT}(__content).map_err({DE_CUSTOM})?))"
            ));
        }
        Kind::Struct(Fields::Tuple(n)) => {
            body.push_str(&format!(
                "let __seq = match __content {{\n\
                 {CONTENT}::Seq(__s) => __s,\n\
                 __other => return ::std::result::Result::Err({DE_CUSTOM}(\
                 format!(\"expected sequence for struct {name}, got {{}}\", __other.kind()))),\n\
                 }};\n\
                 if __seq.len() != {n} {{\n\
                 return ::std::result::Result::Err({DE_CUSTOM}(\
                 format!(\"expected {n} elements for {name}, got {{}}\", __seq.len())));\n\
                 }}\n\
                 let mut __items = __seq.into_iter();\n"
            ));
            let elems: Vec<String> = (0..*n)
                .map(|_| format!("{FROM_CONTENT}(__items.next().unwrap()).map_err({DE_CUSTOM})?"))
                .collect();
            body.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            ));
        }
        Kind::Struct(Fields::Unit) => {
            body.push_str(&format!(
                "let _ = __content;\n::std::result::Result::Ok({name})"
            ));
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                let ctor = variant_ctor(name, vname);
                match &variant.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({ctor}),\n"
                    )),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({ctor}(\
                         {FROM_CONTENT}(__v).map_err({DE_CUSTOM})?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __seq = match __v {{\n\
                             {CONTENT}::Seq(__s) if __s.len() == {n} => __s,\n\
                             __other => return ::std::result::Result::Err({DE_CUSTOM}(\
                             format!(\"expected {n}-element sequence for variant {vname}, \
                             got {{}}\", __other.kind()))),\n\
                             }};\n\
                             let mut __items = __seq.into_iter();\n"
                        ));
                        let elems: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "{FROM_CONTENT}(__items.next().unwrap())\
                                     .map_err({DE_CUSTOM})?"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "::std::result::Result::Ok({ctor}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __vm = match __v {{\n\
                             {CONTENT}::Map(__m) => __m,\n\
                             __other => return ::std::result::Result::Err({DE_CUSTOM}(\
                             format!(\"expected map for variant {vname}, got {{}}\", \
                             __other.kind()))),\n\
                             }};\n"
                        ));
                        push_named_from_map(&mut payload_arms, &ctor, fields, "__vm");
                        payload_arms.push_str("}\n");
                    }
                }
            }
            body.push_str(&format!(
                "match __content {{\n\
                 {CONTENT}::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err({DE_CUSTOM}(\
                 format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }},\n\
                 {CONTENT}::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = __m.remove(0);\n\
                 match __k.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err({DE_CUSTOM}(\
                 format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }}\n}}\n\
                 __other => ::std::result::Result::Err({DE_CUSTOM}(\
                 format!(\"expected variant of {name}, got {{}}\", __other.kind()))),\n\
                 }}"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ---- entry points ----------------------------------------------------

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
