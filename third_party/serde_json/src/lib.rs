//! Offline stand-in for `serde_json`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of every external dependency under
//! `third_party/`. This crate provides `to_string`/`to_string_pretty`/
//! `to_vec`/`from_str`/`from_slice` over the vendored serde's
//! [`serde::content::Content`] data model, with a hand-rolled JSON emitter
//! and parser (full string escaping including `\uXXXX` surrogate pairs).

// Vendored stand-in: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use serde::content::{from_content, to_content, Content};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

/// Error serializing or deserializing JSON.
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg)
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg)
    }
}

// ---- serialization ---------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) -> Result<(), Error> {
    if !v.is_finite() {
        return Err(Error::new("JSON cannot represent NaN or infinity"));
    }
    // `{:?}` prints the shortest representation that round-trips, and
    // always includes a decimal point or exponent for floats.
    out.push_str(&format!("{v:?}"));
    Ok(())
}

fn write_compact(out: &mut String, content: &Content) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(v) => write_f64(out, *v)?,
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_compact(out, value)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(out: &mut String, content: &Content, indent: usize) -> Result<(), Error> {
    const STEP: &str = "  ";
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, value, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other)?,
    }
    Ok(())
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content(value).map_err(Error::new)?;
    let mut out = String::new();
    write_compact(&mut out, &content)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content(value).map_err(Error::new)?;
    let mut out = String::new();
    write_pretty(&mut out, &content, 0)?;
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let value = u16::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first as u32 - 0xD800) << 10) + (second as u32 - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                first as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Content::F64(v))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let v: i64 = stripped
                .parse::<i64>()
                .map(|v| -v)
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Content::I64(v))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Content::U64(v))
        }
    }
}

fn parse(input: &str) -> Result<Content, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    from_content(parse(input)?).map_err(Error::new)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let tricky = "line\nbreak \"quoted\" back\\slash \t tab \u{b} control 中 𠅀 emoji";
        let json = to_string(&tricky.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), tricky);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
        // Surrogate pair for U+1D11E (musical G clef).
        assert_eq!(from_str::<String>(r#""𝄞""#).unwrap(), "𝄞");
        assert!(from_str::<String>(r#""\ud834""#).is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1,\"b\":2}");
        assert_eq!(from_str::<BTreeMap<String, u64>>(&json).unwrap(), m);
    }

    #[test]
    fn tuples_and_options() {
        let pairs: Vec<(String, u64)> = vec![("x".into(), 1), ("y".into(), 2)];
        let json = to_string(&pairs).unwrap();
        assert_eq!(json, "[[\"x\",1],[\"y\",2]]");
        assert_eq!(from_str::<Vec<(String, u64)>>(&json).unwrap(), pairs);

        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u32)).unwrap(), "3");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_slice::<u64>(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn float_display_roundtrips() {
        for v in [0.1f64, 1.0, 1e300, -2.5, 0.3333333333333333] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "json = {json}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }
}
